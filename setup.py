"""Legacy entry point so ``pip install -e . --no-use-pep517`` works on

environments whose setuptools lacks ``bdist_wheel`` (offline images).
Package metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
