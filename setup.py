"""Legacy entry point so ``pip install -e . --no-use-pep517`` works on

environments whose setuptools lacks ``bdist_wheel`` (offline images).
Package metadata — including the ``repro-sweep`` console script — lives in
pyproject.toml; this shim only restates the package layout (restating
``[project]`` fields like entry points here would clash with the static
metadata under modern setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
