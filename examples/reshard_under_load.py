#!/usr/bin/env python
"""Live resharding under client traffic: split, migrate, re-stabilize.

Runs the ``reshard`` scenario family: clients keep writing and reading
through the :class:`~repro.kvstore.pipeline.Pipeline` while a declarative
reshard plan fires against the running store — a shard split, then a
virtual-node migration.  Each topology change drains in-flight
operations on the old owner, mutates the consistent-hash ring, and
transfers the moved keys through the ordinary register protocol, so the
handoffs are part of the checked history.

The verdict is the paper's stabilization property re-established after
every topology change: each key's post-τ history linearizes straight
across every handoff, and every migration epoch re-stabilizes (has a
τ).  ``strict=True`` makes a violation raise instead of report.

Run:  python examples/reshard_under_load.py
"""

from repro.api import run_scenario


def main() -> None:
    result = run_scenario(
        "reshard", seed=3, shard_count=2, num_keys=6, rounds=3,
        client_count=2, vnodes=4, strict=True,
        reshard_plan={"events": [
            {"time": 6.0, "kind": "reshard_split", "args": {"shard": 0}},
            {"time": 12.0, "kind": "migrate_vnodes",
             "args": {"source": 1, "dest": 2, "count": 1}},
        ]})

    store = result.store
    print(f"store after the plan: {store.shard_count} shards "
          f"(started with 2)\n")

    print("rebalances (drain -> ring mutation -> state transfer):")
    for report in result.rebalances:
        moved = ", ".join(sorted(report.moved_keys)) or "(no keys moved)"
        print(f"  t={report.time:8.2f}  {report.kind:15s} "
              f"transferred {len(report.transferred)}: {moved}")

    print("\nmigration epochs (each must re-stabilize):")
    for epoch in result.epoch_taus:
        print(f"  {epoch['label']:20s} start {epoch['start']:8.2f}  "
              f"tau {epoch['tau']:.2f}")

    print("\nper-key post-tau linearizability across every handoff:")
    for key, verdict in sorted(result.per_key_linearizable.items()):
        owner = store.shard_for(key)
        print(f"  {key}: shard {owner}  linearizable={verdict}")

    summary = result.summarize()
    print(f"\ncompleted={summary.completed}  ops={summary.ops}  "
          f"digest={summary.history_digest}")
    assert result.linearizable and summary.completed


if __name__ == "__main__":
    main()
