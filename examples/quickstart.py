#!/usr/bin/env python
"""Quickstart: a Byzantine-tolerant, self-stabilizing shared register.

Stands up the paper's client/server system (n = 9 servers, of which t = 1
may be Byzantine), writes and reads through the practically stabilizing
SWSR atomic register (Figure 3), then shows that a Byzantine server and a
burst of transient memory corruption do not affect correctness.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, build_swsr_atomic
from repro.faults.byzantine import strategy_factory
from repro.faults.transient import TransientFaultInjector


def main() -> None:
    # --- 1. build the simulated cluster --------------------------------
    cluster = Cluster(ClusterConfig(n=9, t=1, seed=2024))
    writer, reader = build_swsr_atomic(cluster, initial="(initial)")
    print(f"cluster up: n={cluster.params.n} servers, tolerating "
          f"t={cluster.params.t} Byzantine (n >= 8t + 1)")

    # --- 2. ordinary operation -----------------------------------------
    handle = writer.write("hello world")
    cluster.run_ops([handle])
    handle = reader.read()
    cluster.run_ops([handle])
    print(f"[t={cluster.now:6.2f}] read() -> {handle.result!r}")

    # --- 3. one server turns Byzantine ----------------------------------
    cluster.make_byzantine(["s1"],
                           strategy_factory("random-garbage", cluster))
    print("server s1 is now Byzantine (answers with random garbage)")
    handle = writer.write("still consistent")
    cluster.run_ops([handle])
    handle = reader.read()
    cluster.run_ops([handle])
    print(f"[t={cluster.now:6.2f}] read() -> {handle.result!r}")

    # --- 4. transient failures corrupt every local variable -------------
    injector = TransientFaultInjector.for_cluster(cluster)
    touched = injector.corrupt_all(cluster.servers + [writer, reader])
    print(f"transient burst: {touched} variables overwritten with garbage")

    # the paper's assumption (b): one write after the last transient fault
    handle = writer.write("healed")
    cluster.run_ops([handle])
    handle = reader.read()
    cluster.run_ops([handle])
    print(f"[t={cluster.now:6.2f}] read() -> {handle.result!r} "
          "(stabilized after the first post-fault write)")

    print(f"\ntotal simulated messages: {cluster.network.messages_sent}")


if __name__ == "__main__":
    main()
