"""Record any run to one trace format, then prove it reproduces.

Tour of ``repro.capture``:

1. record a sharded-KV scenario to a JSON-lines trace and replay it in
   both modes (re-simulate the whole run; re-check the recorded ops
   through fresh online checkers — no simulator);
2. show the format is wall-clock-free: re-recording the same spec
   yields byte-identical files;
3. record live service traffic (request/response frames in execution
   order) and re-drive it through a fresh ``KVService``;
4. run a soak with live metrics snapshots and the fire-once
   ``alert_on_violation`` hook.

Run:  PYTHONPATH=src python examples/capture_and_replay.py
"""

import filecmp
import json
import os
import tempfile

from repro.api import (ScenarioSpec, record_scenario, replay_capture,
                       run_loopback_load, verify_capture)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-capture-")

    # 1. record a scenario, replay it both ways -------------------------
    trace = os.path.join(workdir, "kv.jsonl")
    result = record_scenario("kv", trace, shard_count=2, num_keys=2,
                             rounds=1, seed=3, corruption_times=[2.0])
    info = verify_capture(trace)
    print(f"recorded kv scenario: {info['events']} events "
          f"{info['kinds']}  digest {info['history_digest']}")
    assert info["history_digest"] == result.summarize().history_digest

    resim = replay_capture(trace, mode="resimulate")
    recheck = replay_capture(trace, mode="recheck")
    print(f"  re-simulate: ok={resim.ok}  re-check: ok={recheck.ok}")

    # the parallel runner must land on the same bytes
    workers = replay_capture(trace, mode="resimulate", workers=2)
    assert workers.history_digest == resim.history_digest
    print(f"  2-worker re-simulate: ok={workers.ok} (same digest)")

    # 2. no wall-clock anywhere: re-recording is byte-identical ---------
    again = os.path.join(workdir, "kv-again.jsonl")
    record_scenario("kv", again, shard_count=2, num_keys=2,
                    rounds=1, seed=3, corruption_times=[2.0])
    assert filecmp.cmp(trace, again, shallow=False)
    print("  re-recorded trace is byte-identical")

    # 3. live service traffic records and re-drives ---------------------
    svc_trace = os.path.join(workdir, "service.jsonl")
    live = run_loopback_load(shards=2, clients=2, rounds=1, seed=9,
                             capture=svc_trace)
    replayed = replay_capture(svc_trace)
    print(f"service: {verify_capture(svc_trace)['events']} events, "
          f"replay ok={replayed.ok}")
    assert replayed.history_digest == live.history_digest
    assert replayed.summary["response_digest"] == live.response_digest

    # 4. soak with live metrics + the fire-once alert hook --------------
    metrics = os.path.join(workdir, "metrics.jsonl")
    spec = ScenarioSpec("soak",
                        dict(seed=3, num_writes=120, num_reads=120,
                             write_window=8, read_window=8,
                             max_records=8),
                        metrics_every=30.0, metrics_out=metrics)
    soak = spec.run()
    emitter = soak.extra["metrics"]
    snaps = [json.loads(line) for line in open(metrics)]
    print(f"soak metrics: {len(snaps)} snapshots, "
          f"alerts fired: {emitter.alerts}")
    final = snaps[-1]
    print(f"  final: t={final['t']:.0f} ops={final['ops']} "
          f"violations={final['violations']} window={final['window']}")
    assert emitter.alerts == 0 and final["final"]

    print(f"\ntraces under {workdir} — try: "
          f"repro-capture check {trace}")


if __name__ == "__main__":
    main()
