#!/usr/bin/env python
"""Figure 1, live: the new/old inversion — and how the atomic register

eliminates it.

Replays the paper's Figure-1 scenario against the real Figure-2 algorithm
with an adversarial (but legal) schedule: a write stalled half-way through
the server set plus two flip-flopping Byzantine servers.  The first read
returns the *new* value, the second — issued strictly later — returns the
*old* one.  Both answers are legal for a **regular** register; the
**atomic** register of Figure 3 absorbs the identical attack.

Run:  python examples/inversion_demo.py
"""

from repro.checkers.regularity import is_regular
from repro.experiments.figure1 import run_figure1


def show(kind: str) -> None:
    result = run_figure1(kind)
    print(f"--- {kind} register ({'Figure 2' if kind == 'regular' else 'Figure 3'}) ---")
    print("schedule: write(v0) | write(v1) stalls mid-propagation | "
          "read1 | read2")
    print(f"  read1 -> {result.first_read!r}")
    print(f"  read2 -> {result.second_read!r}")
    if result.inverted:
        inversion = result.inversions[0]
        print(f"  NEW/OLD INVERSION: read1 saw write #"
              f"{inversion.first_write_index}, the later read2 saw write #"
              f"{inversion.second_write_index}")
        print(f"  still regular? {is_regular(result.history, initial='v_init')} "
              "(regularity allows it — that is Figure 1's point)")
    else:
        print("  no inversion: the reader's (pwsn, pv) bookkeeping kept the "
              "newer value")
    print()


def main() -> None:
    print(__doc__)
    show("regular")
    show("atomic")


if __name__ == "__main__":
    main()
