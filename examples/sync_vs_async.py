#!/usr/bin/env python
"""The resilience gap: t < n/8 asynchronous vs t < n/3 synchronous.

For each fault budget t, runs the *smallest legal cluster* in both timing
models (Theorems 1 and 2) with t actively Byzantine servers — fanned out
in parallel through the sweep runner (``repro.runner``) — and shows what
goes wrong when the asynchronous bound is violated.

Run:  python examples/sync_vs_async.py [--workers N]
"""

import argparse

from repro.analysis.tables import Table
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario


def _specs():
    """Six single-cell specs: both timing models at each fault budget."""
    specs = []
    for t in (1, 2, 3):
        specs.append(SweepSpec(
            name=f"sync-t{t}", scenario="swsr",
            base={"kind": "regular", "n": 3 * t + 1, "t": t, "seed": t,
                  "synchronous": True, "num_writes": 3, "num_reads": 3,
                  "byzantine_count": t, "byzantine_strategy": "silent"}))
        specs.append(SweepSpec(
            name=f"async-t{t}", scenario="swsr",
            base={"kind": "regular", "n": 8 * t + 1, "t": t, "seed": t,
                  "num_writes": 3, "num_reads": 3, "byzantine_count": t,
                  "byzantine_strategy": "random-garbage"}))
    return specs


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()
    print(__doc__)
    sweep = run_sweep(_specs(), workers=args.workers)
    table = Table("smallest cluster per fault budget (measured)",
                  ["t", "model", "n", "terminates", "regular after stab"])
    for cell in sorted(sweep.cells,
                       key=lambda c: (c.params["t"],
                                      not c.params.get("synchronous",
                                                       False))):
        model = ("synchronous" if cell.params.get("synchronous")
                 else "asynchronous")
        table.row(cell.params["t"], model, cell.params["n"],
                  cell.completed, cell.verdicts.get("stable", False))
    print(table.render())
    print(f"({len(sweep.cells)} cells swept with {args.workers} workers "
          f"in {sweep.wall_seconds:.2f}s)")

    print("\nBeyond the asynchronous bound (t = 3 of n = 9, adversarial "
          "servers):")
    broken = run_swsr_scenario(kind="regular", n=9, t=3, seed=1,
                               enforce_resilience=False, num_writes=1,
                               num_reads=1, byzantine_count=3,
                               byzantine_strategy="equivocate",
                               max_events=120_000)
    if broken.completed:
        print("  ...survived this schedule (no guarantee it always will)")
    else:
        print("  reads starve: a 2t+1 = 7 quorum can never form out of "
              "n-t = 6 acknowledgements — liveness is lost, as the "
              "t < n/8 requirement predicts.")


if __name__ == "__main__":
    main()
