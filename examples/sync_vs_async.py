#!/usr/bin/env python
"""The resilience gap: t < n/8 asynchronous vs t < n/3 synchronous.

For each fault budget t, runs the *smallest legal cluster* in both timing
models (Theorems 1 and 2) with t actively Byzantine servers, and shows
what goes wrong when the asynchronous bound is violated.

Run:  python examples/sync_vs_async.py
"""

from repro.analysis.tables import Table
from repro.workloads.scenarios import run_swsr_scenario


def main() -> None:
    print(__doc__)
    table = Table("smallest cluster per fault budget (measured)",
                  ["t", "model", "n", "terminates", "regular after stab"])
    for t in (1, 2, 3):
        sync_n = 3 * t + 1
        result = run_swsr_scenario(kind="regular", n=sync_n, t=t, seed=t,
                                   synchronous=True, num_writes=3,
                                   num_reads=3, byzantine_count=t,
                                   byzantine_strategy="silent")
        table.row(t, "synchronous", sync_n, result.completed,
                  result.completed and result.report.stable)
        async_n = 8 * t + 1
        result = run_swsr_scenario(kind="regular", n=async_n, t=t, seed=t,
                                   num_writes=3, num_reads=3,
                                   byzantine_count=t,
                                   byzantine_strategy="random-garbage")
        table.row(t, "asynchronous", async_n, result.completed,
                  result.completed and result.report.stable)
    print(table.render())

    print("\nBeyond the asynchronous bound (t = 3 of n = 9, adversarial "
          "servers):")
    broken = run_swsr_scenario(kind="regular", n=9, t=3, seed=1,
                               enforce_resilience=False, num_writes=1,
                               num_reads=1, byzantine_count=3,
                               byzantine_strategy="equivocate",
                               max_events=120_000)
    if broken.completed:
        print("  ...survived this schedule (no guarantee it always will)")
    else:
        print("  reads starve: a 2t+1 = 7 quorum can never form out of "
              "n-t = 6 acknowledgements — liveness is lost, as the "
              "t < n/8 requirement predicts.")


if __name__ == "__main__":
    main()
