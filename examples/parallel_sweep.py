#!/usr/bin/env python
"""Parallel experiment sweeps: the ``repro.runner`` quick tour.

Builds a declarative :class:`~repro.runner.SweepSpec` crossing register
kind × Byzantine strategy × corruption schedule, fans it out over worker
processes, and shows the three guarantees the runner makes:

1. the cell list is a pure function of the spec (deterministic seeds);
2. the aggregated JSON is byte-identical for any ``--workers`` value;
3. one pathological cell cannot take down the sweep (errors and
   ``completed=False`` budget exhaustion are recorded per cell).

The same sweep from the shell::

    python examples/parallel_sweep.py --spec-out /tmp/sweep.json
    python -m repro.runner --spec /tmp/sweep.json --workers 4 --table

Run:  python examples/parallel_sweep.py [--workers N]
"""

import argparse

from repro.runner import SweepSpec, run_sweep


def build_spec() -> SweepSpec:
    return SweepSpec(
        name="tour", scenario="swsr",
        base={"n": 9, "t": 1, "num_writes": 4, "num_reads": 4,
              "byzantine_count": 1},
        grid={
            "kind": ["regular", "atomic"],
            "byzantine_strategy": ["silent", "stale", "flip-flop"],
            # two corruption *schedules*: none, and two bursts of
            # different severity (per-burst fractions).
            "corruption_times": [[], [2.0, 5.0]],
        },
        seeds=[0, 1],
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--spec-out", metavar="PATH",
                        help="write the spec JSON for use with "
                             "python -m repro.runner")
    args = parser.parse_args()
    print(__doc__)

    spec = build_spec()
    if args.spec_out:
        with open(args.spec_out, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json() + "\n")
        print(f"spec written to {args.spec_out}")

    serial = run_sweep(spec, workers=1)
    fanned = run_sweep(spec, workers=args.workers)
    print(fanned.render_tables())
    print()
    print(f"workers=1:              {serial.wall_seconds:6.2f}s")
    print(f"workers={args.workers}: "
          f"{fanned.wall_seconds:6.2f}s for {len(fanned.cells)} cells")
    identical = serial.to_json() == fanned.to_json()
    print(f"aggregated JSON byte-identical across worker counts: "
          f"{identical}")
    assert identical


if __name__ == "__main__":
    main()
