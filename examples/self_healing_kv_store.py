#!/usr/bin/env python
"""A self-healing, Byzantine fault-tolerant key-value store.

The downstream-facing face of the library: a KV store whose every key is a
practically stabilizing MWMR atomic register (Figure 4).  The demo drives
two clients through puts/gets while the deployment suffers, in order:

1. a Byzantine server spraying garbage,
2. *mobile* Byzantine failures (the compromised server moves, footnote 1),
3. a transient-failure burst corrupting server memory.

Run:  python examples/self_healing_kv_store.py
"""

from repro.faults.byzantine import MobileByzantineController, strategy_factory
from repro.faults.transient import TransientFaultInjector
from repro.kvstore.store import build_kv_store


def main() -> None:
    store = build_kv_store(n=9, t=1, seed=99, client_count=2)
    cluster = store.cluster
    print(f"KV store up: {cluster.params.n} servers, t={cluster.params.t}, "
          "2 clients (c1, c2)\n")

    # --- phase 1: normal operation -------------------------------------
    store.put_sync("c1", "user:alice", {"role": "admin"})
    store.put_sync("c2", "user:bob", {"role": "guest"})
    print(f"[t={cluster.now:7.2f}] c2 reads user:alice ->",
          store.get_sync("c2", "user:alice"))

    # --- phase 2: a Byzantine server ------------------------------------
    cluster.make_byzantine(["s4"],
                           strategy_factory("random-garbage", cluster))
    store.put_sync("c1", "user:alice", {"role": "owner"})
    print(f"[t={cluster.now:7.2f}] s4 Byzantine; c2 reads user:alice ->",
          store.get_sync("c2", "user:alice"))

    # --- phase 3: the compromise moves (mobile Byzantine) ---------------
    injector = TransientFaultInjector.for_cluster(cluster)
    MobileByzantineController(
        cluster, injector, strategy_factory("random-garbage", cluster),
        rotation=[["s7"], ["s2"]],
        times=[cluster.now + 5.0, cluster.now + 10.0])
    cluster.run(until=cluster.now + 12.0)
    print(f"[t={cluster.now:7.2f}] Byzantine set rotated s4->s7->s2 "
          f"(currently {cluster.byzantine_ids})")
    store.put_sync("c2", "user:bob", {"role": "member"})
    print(f"[t={cluster.now:7.2f}] c1 reads user:bob   ->",
          store.get_sync("c1", "user:bob"))

    # --- phase 4: transient memory corruption ---------------------------
    touched = injector.corrupt_all(cluster.servers, fraction=0.3)
    print(f"[t={cluster.now:7.2f}] transient burst corrupted {touched} "
          "server variables")
    store.put_sync("c1", "user:alice", {"role": "recovered"})
    print(f"[t={cluster.now:7.2f}] c2 reads user:alice ->",
          store.get_sync("c2", "user:alice"))

    print(f"\nkeys: {store.keys}")
    print(f"total simulated messages: {cluster.network.messages_sent}")


if __name__ == "__main__":
    main()
