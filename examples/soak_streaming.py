"""Long-horizon soak run on the streaming observation pipeline.

Runs a workload ~100x the smoke-cell size with periodic transient bursts,
retaining no history: counters, the history digest and the stabilization
report all stream off the run.  Then replays a smaller, history-retaining
run through the offline checkers to show the verdicts agree.

Run:  PYTHONPATH=src python examples/soak_streaming.py
"""

import time

from repro.checkers.stabilization import stabilization_report
from repro.workloads.scenarios import INITIAL, run_soak_scenario


def main() -> None:
    started = time.perf_counter()
    result = run_soak_scenario(kind="atomic", seed=7,
                               num_writes=1000, num_reads=1000,
                               fault_bursts=3, fault_period=5.0)
    elapsed = time.perf_counter() - started
    summary = result.summarize()
    tracker = result.extra["tracker"]
    print(f"soak: {summary.ops} ops in {elapsed:.2f}s wall "
          f"({result.cluster.scheduler.events_processed} events)")
    print(f"  history retained: {result.history is not None}")
    print(f"  stable={summary.stable}  tau_stab={summary.tau_stab}  "
          f"dirty={summary.dirty_reads}/{summary.total_reads}")
    print(f"  checker windows exact: {tracker.exact}")
    print(f"  digest: {summary.history_digest}")

    # cross-check on a history-retaining run: online == offline verdicts
    small = run_soak_scenario(kind="atomic", seed=7, num_writes=100,
                              num_reads=100, fault_bursts=3,
                              fault_period=5.0, keep_history=True)
    offline = stabilization_report(small.history, mode="atomic",
                                   initial=INITIAL,
                                   tau_no_tr=small.tau_no_tr)
    online = small.report
    print("\ncross-check (100+100 ops, history retained):")
    print(f"  offline: tau_stab={offline.tau_stab} "
          f"dirty={offline.dirty_reads} stable={offline.stable}")
    print(f"  online:  tau_stab={online.tau_stab} "
          f"dirty={online.dirty_reads} stable={online.stable}")
    assert (offline.tau_stab, offline.dirty_reads, offline.stable) == \
        (online.tau_stab, online.dirty_reads, online.stable)
    print("  verdicts agree.")


if __name__ == "__main__":
    main()
