#!/usr/bin/env python
"""Watching a system stabilize: the τ timeline, measured.

Runs the regular register through the paper's full failure lifecycle —
transient corruption bursts (the last one is τ_no_tr), then the first
write (ending at τ_1w), then reads — and *measures* τ_stab with the
consistency checkers: the earliest instant from which every later read is
regular.

Run:  python examples/stabilization_timeline.py
"""

from repro.workloads.scenarios import run_swsr_scenario


def main() -> None:
    print(__doc__)
    result = run_swsr_scenario(
        kind="regular", n=9, t=1, seed=4,
        num_writes=5, num_reads=5,
        corruption_times=(2.0, 4.0, 6.0),   # transient bursts; last = tau_no_tr
        corruption_fraction=1.0,
        link_garbage=2,
        byzantine_count=1,
        byzantine_strategy="stale")

    report = result.report
    print("execution history (chronological):")
    print(result.history.format())
    print()
    print("τ timeline:")
    print(f"  τ_no_tr (last transient failure)  = {report.tau_no_tr:7.3f}")
    print(f"  τ_1w    (first write completes)   = {report.tau_1w:7.3f}")
    print(f"  τ_stab  (measured stabilization)  = {report.tau_stab:7.3f}")
    print(f"  stabilization time                = "
          f"{report.stabilization_time:7.3f}")
    print(f"  dirty reads before τ_stab         = "
          f"{report.dirty_reads}/{report.total_reads}")
    print()
    if report.stable:
        print("Lemma 3 verified on this execution: every read invoked after "
              "τ_stab returned the last or a concurrent write's value.")
    else:
        print("execution did not stabilize (should not happen within the "
              "resilience bound!)")


if __name__ == "__main__":
    main()
