#!/usr/bin/env python
"""Watching a system stabilize: the τ timeline, measured.

Runs the regular register through the paper's full failure lifecycle —
transient corruption bursts (the last one is τ_no_tr), then the first
write (ending at τ_1w), then reads — and *measures* τ_stab with the
consistency checkers: the earliest instant from which every later read is
regular.

The closing section sweeps corruption severity × seeds in parallel via
``repro.runner`` and reports how the measured stabilization time responds
(it barely does — healing completes with the first post-fault write).

Run:  python examples/stabilization_timeline.py [--workers N]
"""

import argparse

from repro.analysis.summary import summarize
from repro.analysis.tables import Table
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario


def severity_sweep(workers: int) -> None:
    """τ_stab − τ_no_tr vs corruption severity, across seeds, in parallel."""
    spec = SweepSpec(
        name="timeline-severity", scenario="swsr",
        base={"kind": "regular", "n": 9, "t": 1, "num_writes": 5,
              "num_reads": 5, "corruption_times": [2.0, 4.0, 6.0],
              "link_garbage": 1, "byzantine_count": 1,
              "byzantine_strategy": "stale"},
        grid={"corruption_fraction": [0.25, 0.5, 1.0]},
        seeds=[0, 1, 2, 3])
    sweep = run_sweep(spec, workers=workers)
    table = Table("stabilization time vs corruption severity "
                  "(4 derived seeds per fraction)",
                  ["corrupted fraction", "mean tau_stab - tau_no_tr",
                   "max", "all stable"])
    for fraction in (0.25, 0.5, 1.0):
        cells = [cell for cell in sweep.cells
                 if cell.params["corruption_fraction"] == fraction]
        stats = summarize([cell.timings["stabilization_time"]
                           for cell in cells
                           if "stabilization_time" in cell.timings])
        table.row(fraction, stats.mean if stats else None,
                  stats.maximum if stats else None,
                  all(cell.ok for cell in cells))
    print(table.render())
    print(f"({len(sweep.cells)} cells swept with {workers} workers in "
          f"{sweep.wall_seconds:.2f}s)")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()
    print(__doc__)
    result = run_swsr_scenario(
        kind="regular", n=9, t=1, seed=4,
        num_writes=5, num_reads=5,
        corruption_times=(2.0, 4.0, 6.0),   # transient bursts; last = tau_no_tr
        corruption_fraction=1.0,
        link_garbage=2,
        byzantine_count=1,
        byzantine_strategy="stale")

    report = result.report
    print("execution history (chronological):")
    print(result.history.format())
    print()
    print("τ timeline:")
    print(f"  τ_no_tr (last transient failure)  = {report.tau_no_tr:7.3f}")
    print(f"  τ_1w    (first write completes)   = {report.tau_1w:7.3f}")
    print(f"  τ_stab  (measured stabilization)  = {report.tau_stab:7.3f}")
    print(f"  stabilization time                = "
          f"{report.stabilization_time:7.3f}")
    print(f"  dirty reads before τ_stab         = "
          f"{report.dirty_reads}/{report.total_reads}")
    print()
    if report.stable:
        print("Lemma 3 verified on this execution: every read invoked after "
              "τ_stab returned the last or a concurrent write's value.")
    else:
        print("execution did not stabilize (should not happen within the "
              "resilience bound!)")
    print()
    severity_sweep(args.workers)


if __name__ == "__main__":
    main()
