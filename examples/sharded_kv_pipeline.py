#!/usr/bin/env python
"""Sharded, pipelined KV store: scale-out and blast-radius isolation.

Builds a 4-shard :class:`~repro.kvstore.sharded.ShardedKVStore` (each
shard its own 9-server Byzantine-tolerant cluster), pushes a batch of
operations through the client-side :class:`~repro.kvstore.pipeline
.Pipeline`, then wrecks *one* shard — a transient burst plus a Byzantine
server, installed through a declarative ``FaultTimeline`` — and shows
that (a) the other shards never notice and (b) the wrecked shard
self-stabilizes once writes resume.

Run:  python examples/sharded_kv_pipeline.py
"""

from repro.faults.schedule import FaultTimeline
from repro.kvstore import Pipeline, build_sharded_kv_store


def main() -> None:
    store = build_sharded_kv_store(shard_count=4, n=9, t=1, seed=2026,
                                   client_count=2)
    print(f"sharded KV store up: {store.shard_count} shards x "
          f"{store.group[0].params.n} servers, clients {store.client_pids}\n")

    # --- phase 1: pipelined writes spread across all shards -------------
    pipe = Pipeline(store)
    users = [f"user:{name}" for name in
             ("alice", "bob", "carol", "dave", "erin", "frank")]
    for index, user in enumerate(users):
        pipe.put(store.client_pids[index % 2], user, {"quota": 10 + index})
    pipe.flush()
    placement = {user: store.shard_for(user) for user in users}
    print("placement (consistent hashing):")
    for user, shard in sorted(placement.items(), key=lambda kv: kv[1]):
        print(f"  shard {shard}  {user}")

    # --- phase 2: one shard has a very bad day ---------------------------
    victim = placement["user:alice"]
    anchor = store.group[victim].now
    timeline = (FaultTimeline()
                .burst(anchor + 1.0, fraction=0.2, targets="servers")
                .byzantine(anchor + 2.0, [store.group[victim].server_ids[-1]],
                           "random-garbage"))
    store.install_timeline(victim, timeline)
    store.group[victim].run(until=anchor + 3.0)
    print(f"\nshard {victim}: transient burst + Byzantine "
          f"{store.group[victim].byzantine_ids} installed")
    healthy = [s for s in range(store.shard_count) if s != victim]
    print(f"other shards untouched (byzantine sets: "
          f"{[store.group[s].byzantine_ids for s in healthy]})")

    # --- phase 3: the workload keeps flowing -----------------------------
    for index, user in enumerate(users):
        pipe.put(store.client_pids[index % 2], user, {"quota": 99})
    pipe.flush()
    reads = [pipe.get(store.client_pids[(index + 1) % 2], user)
             for index, user in enumerate(users)]
    pipe.flush()
    print("\nreads after the faults (writes repaired the victim shard):")
    for user, read in zip(users, reads):
        print(f"  shard {placement[user]}  {user} -> {read.result}")

    print(f"\ntotal simulated messages across shards: "
          f"{store.messages_sent}")
    print(f"per-shard clocks: "
          f"{[round(cluster.now, 1) for cluster in store.group]}")


if __name__ == "__main__":
    main()
