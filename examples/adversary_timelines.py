#!/usr/bin/env python
"""Sweeping over adversaries: declarative FaultTimeline shapes as a grid.

The fault layer is data, not code: a :class:`~repro.faults.FaultTimeline`
serializes to JSON, so a sweep can grid over *what goes wrong* exactly
like it grids over cluster size.  This example runs three adversary
families against the same register stack:

1. partition-during-write (a server group drops off mid-workload, heals);
2. mobile Byzantine rotation (the Byzantine set hops across servers);
3. a hand-built combined timeline (burst + crash/recovery + partition)
   passed straight into ``run_swsr_scenario(fault_timeline=...)``.

Run:  python examples/adversary_timelines.py [--workers N]
"""

import argparse

from repro.analysis.tables import Table
from repro.faults import FaultTimeline
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario


def adversary_specs():
    partition = SweepSpec(
        name="adv-partition", scenario="partition",
        base={"n": 9, "t": 1, "num_writes": 6, "num_reads": 6},
        grid={"kind": ["regular", "atomic"],
              "partition_duration": [10.0, 40.0]},
        seeds=[0, 1],
    )
    mobile = SweepSpec(
        name="adv-mobile", scenario="mobile-byz",
        base={"n": 9, "t": 1, "num_writes": 8, "num_reads": 8},
        grid={"kind": ["regular", "atomic"],
              "rotation_strategy": ["random-garbage", "stale"]},
        seeds=[0, 1],
    )
    return [partition, mobile]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()
    print(__doc__)

    sweep = run_sweep(adversary_specs(), workers=args.workers)
    table = Table("adversary grid (every cell must stabilize)",
                  ["cell", "kind", "stable", "dropped", "τ_stab"])
    for cell in sweep.cells:
        spec_name, _, index = cell.cell_id.split("/")
        table.row(f"{spec_name}/{index}",
                  cell.params.get("kind"),
                  cell.verdicts.get("stable"),
                  cell.counters.get("messages_dropped", "-"),
                  round(cell.timings.get("tau_stab", 0.0), 1))
    print(table.render())
    print(f"{len(sweep.cells)} cells, all ok: {sweep.all_ok} "
          f"[{args.workers} workers, {sweep.wall_seconds:.2f}s]\n")

    print("A combined hand-built timeline through run_swsr_scenario")
    print("(the workload starts after the timeline's tau_no_tr — use the")
    print("partition scenario family for faults *during* operations):")
    timeline = (FaultTimeline()
                .burst(2.0, fraction=0.8)
                .link_garbage(2.0, per_link=1)
                .crash_recovery(4.0, 9.0, ["s5"])
                .partition(10.0, 15.0, ["s9"]))
    result = run_swsr_scenario(seed=7, num_writes=6, num_reads=6,
                               fault_timeline=timeline.to_dict())
    print(f"  events: {len(timeline)}  tau_no_tr: {result.tau_no_tr}")
    print(f"  completed: {result.completed}  report: {result.report}")


if __name__ == "__main__":
    main()
