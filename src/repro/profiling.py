"""``repro-profile`` — cProfile any scenario, JSON top-N output.

The sim-core rewrite (calendar-queue scheduler, fused sends, compact
messages) was guided by exactly this measurement; the entry point keeps
that loop closed for future PRs: point it at any scenario family, get
the hot functions back as machine-readable JSON, compare kernels with
``--kernel heap``.

::

    repro-profile --family swsr --param n=25 --param seed=7
    repro-profile --family kv --param seed=3 --top 30 --sort cumulative
    repro-profile --family swsr --kernel heap --out profile.json

Output document::

    {
      "spec": {"family": "swsr", "params": {...}},
      "kernel": "calendar",
      "elapsed_sec": 0.041,
      "events_processed": 2443,
      "events_per_sec": 59585,
      "top": [
        {"function": "...", "file": "...", "line": 358,
         "ncalls": 2443, "tottime": 0.008, "cumtime": 0.04},
        ...
      ]
    }

``events_processed``/``events_per_sec`` are reported when the family's
result exposes its cluster's scheduler (every built-in family does);
they are measured on a separate unprofiled run so the rate is not
distorted by tracing overhead.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from typing import Any, Dict, List, Optional

#: valid ``--sort`` values (the pstats sort keys that make sense here).
SORT_KEYS = ("tottime", "cumulative", "ncalls")


def _events_processed(result: Any) -> Optional[int]:
    cluster = getattr(result, "cluster", None)
    scheduler = getattr(cluster, "scheduler", None)
    events = getattr(scheduler, "events_processed", None)
    if events is not None:
        return events
    # sharded results (kv/reshard) run one cluster per shard: sum them
    store = getattr(result, "store", None)
    group = getattr(store, "group", None)
    if group is not None:
        return sum(shard.scheduler.events_processed for shard in group)
    return getattr(result, "events_processed", None)


def profile_spec(spec: Any, top: int = 20,
                 sort: str = "tottime") -> Dict[str, Any]:
    """Profile one :class:`~repro.workloads.spec.ScenarioSpec` run.

    Runs the spec twice: once unprofiled for an honest events/sec
    figure, once under :mod:`cProfile` for the top-``N`` table.
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    started = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - started
    events = _events_processed(result)

    profiler = cProfile.Profile()
    profiler.enable()
    spec.run()
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    entries: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top]:           # (file, line, name)
        cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
        path, line, name = func
        entries.append({
            "function": name,
            "file": path,
            "line": line,
            "ncalls": ncalls,
            "primitive_calls": cc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })

    from .sim.scheduler import DEFAULT_KERNEL
    document: Dict[str, Any] = {
        "spec": {"family": spec.family, "params": dict(spec.params)},
        "kernel": DEFAULT_KERNEL,
        "sort": sort,
        "elapsed_sec": round(elapsed, 6),
        "events_processed": events,
        "events_per_sec": (round(events / elapsed)
                           if events and elapsed > 0 else None),
        "top": entries,
    }
    return document


def _parse_param(text: str) -> tuple:
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--param expects key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw                       # bare strings need no quotes
    return key, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="cProfile one scenario run; print top-N hot "
                    "functions as JSON")
    parser.add_argument("--family", required=True,
                        help="scenario family (see repro.api.scenario_families)")
    parser.add_argument("--param", action="append", type=_parse_param,
                        metavar="KEY=VALUE",
                        help="family parameter (repeatable; values parse "
                             "as JSON, bare strings allowed)")
    parser.add_argument("--top", type=int, default=20,
                        help="number of entries to report (default 20)")
    parser.add_argument("--sort", choices=SORT_KEYS, default="tottime",
                        help="pstats sort key (default tottime)")
    parser.add_argument("--kernel", choices=("calendar", "heap"),
                        default=None,
                        help="run on a specific scheduler kernel "
                             "(default: the session default)")
    parser.add_argument("--out", default=None,
                        help="write the JSON document here instead of stdout")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .workloads.spec import ScenarioSpec
    try:
        spec = ScenarioSpec(args.family, dict(args.param or ()))
    except (TypeError, ValueError) as exc:
        print(f"repro-profile: {exc}", file=sys.stderr)
        return 2
    if args.kernel is not None:
        from .sim import scheduler as _scheduler
        _scheduler.DEFAULT_KERNEL = args.kernel
    document = profile_spec(spec, top=args.top, sort=args.sort)
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
