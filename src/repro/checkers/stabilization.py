"""Measuring τ_stab: when does an execution become (and stay) correct?

The paper's guarantees are *eventual*: there exists a finite τ_stab > τ_1w
after which every read is regular (Lemma 3) / atomic (Lemma 13).  Given a
deterministic execution and its history, we compute the earliest suffix
from which the chosen consistency condition holds — that suffix's start is
the measured stabilization instant, and ``τ_stab − τ_no_tr`` the measured
stabilization time (the quantity experiment P2 sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from .atomicity import check_atomic_swsr, find_new_old_inversions
from .history import History, Operation
from .regularity import NO_INITIAL, check_regularity


@dataclass
class StabilizationReport:
    """The τ-timeline of one execution."""

    mode: str                      # "regular" | "atomic"
    tau_no_tr: float               # last transient failure (from the fault plan)
    tau_1w: Optional[float]        # end of the first write after tau_no_tr
    tau_stab: Optional[float]      # measured stabilization instant
    total_reads: int
    dirty_reads: int               # reads before tau_stab that violate
    stable: bool                   # condition holds from tau_stab onwards

    @property
    def stabilization_time(self) -> Optional[float]:
        if self.tau_stab is None:
            return None
        return max(0.0, self.tau_stab - self.tau_no_tr)

    def __repr__(self) -> str:
        return (f"StabilizationReport(mode={self.mode}, "
                f"tau_no_tr={self.tau_no_tr:.3f}, tau_1w={self.tau_1w}, "
                f"tau_stab={self.tau_stab}, dirty={self.dirty_reads}/"
                f"{self.total_reads}, stable={self.stable})")


def _violating_read_ids(history: History, mode: str, register: Optional[str],
                        initial: Any) -> set:
    """Op ids of reads violating the condition when checked from time 0."""
    bad = set()
    if mode == "regular":
        for violation in check_regularity(history, 0.0, register, initial):
            bad.add(violation.read.op_id)
    elif mode == "atomic":
        violations, inversions = check_atomic_swsr(history, 0.0, register,
                                                   initial)
        for violation in violations:
            bad.add(violation.read.op_id)
        for inversion in inversions:
            # the *later* read exposes the inversion
            bad.add(inversion.second.op_id)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return bad


def find_tau_stab(history: History, mode: str = "regular",
                  register: Optional[str] = None,
                  initial: Any = NO_INITIAL,
                  tau_no_tr: float = 0.0) -> Optional[float]:
    """Earliest instant from which all later-invoked reads satisfy ``mode``.

    Scans read invocation times as candidate cut-offs.  Returns ``None``
    when even the last read violates (the execution never stabilized —
    e.g. a resilience-bound violation).
    """
    reads = [read for read in history.reads(register)]
    if not reads:
        return tau_no_tr
    candidates = [tau_no_tr] + [read.invoke for read in reads]
    for cut in candidates:
        if mode == "regular":
            ok = not check_regularity(history, cut, register, initial)
        else:
            violations, inversions = check_atomic_swsr(history, cut, register,
                                                       initial)
            ok = not violations and not inversions
        if ok:
            return max(cut, tau_no_tr)
    return None


def stabilization_report(history: History, mode: str = "regular",
                         register: Optional[str] = None,
                         initial: Any = NO_INITIAL,
                         tau_no_tr: float = 0.0) -> StabilizationReport:
    """Full τ-timeline of an execution (see :class:`StabilizationReport`)."""
    writes_after = [write for write in history.writes(register)
                    if write.invoke >= tau_no_tr]
    tau_1w = writes_after[0].response if writes_after else None
    tau_stab = find_tau_stab(history, mode, register, initial, tau_no_tr)
    dirty = _violating_read_ids(history, mode, register, initial)
    reads = history.reads(register)
    return StabilizationReport(
        mode=mode,
        tau_no_tr=tau_no_tr,
        tau_1w=tau_1w,
        tau_stab=tau_stab,
        total_reads=len(reads),
        dirty_reads=len(dirty),
        stable=tau_stab is not None,
    )
