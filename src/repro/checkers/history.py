"""Operation histories: the input of the consistency checkers.

A history is the list of completed operations with their real-time
invocation/response intervals — exactly the object over which the paper's
regularity/atomicity definitions (Section 2.2) are stated.  Histories are
built from the :class:`~repro.sim.process.OperationHandle` objects the
register facades return (their ``meta`` carries kind/value/register).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class Operation:
    """One completed register operation."""

    kind: str                  # "write" | "read"
    process: str
    value: Any                 # written value, or value returned by the read
    invoke: float
    response: float
    register: str = "reg"
    op_id: int = 0

    def precedes(self, other: "Operation") -> bool:
        """Real-time precedence: this op responded before ``other`` started."""
        return self.response < other.invoke

    def overlaps(self, other: "Operation") -> bool:
        """Concurrent in the paper's sense (the intervals intersect)."""
        return not (self.precedes(other) or other.precedes(self))

    def __repr__(self) -> str:
        return (f"{self.kind}({self.value!r}) @{self.process} "
                f"[{self.invoke:.3f}, {self.response:.3f}]")


def operation_from_handle(handle) -> Optional[Operation]:
    """The :class:`Operation` a completed handle describes, or ``None``.

    Unfinished handles and handles whose ``meta`` carries no register
    operation kind (helper operations) produce ``None`` — one source of
    truth shared by :meth:`History.add_handle` and the streaming
    observation pipeline (:mod:`repro.checkers.stream`).
    """
    if not handle.done:
        return None
    meta = handle.meta
    kind = meta.get("kind")
    if kind not in ("write", "read"):
        return None
    value = meta.get("value") if kind == "write" else handle.result
    return Operation(
        kind=kind, process=handle.process_id, value=value,
        invoke=handle.invoke_time, response=handle.response_time,
        register=meta.get("register", "reg"))


class History:
    """An append-only collection of completed operations."""

    def __init__(self, ops: Optional[Iterable[Operation]] = None):
        self.ops: List[Operation] = []
        if ops:
            for op in ops:
                self.append(op)

    def append(self, op: Operation) -> Operation:
        op.op_id = len(self.ops)
        self.ops.append(op)
        return op

    def add(self, kind: str, process: str, value: Any, invoke: float,
            response: float, register: str = "reg") -> Operation:
        """Convenience constructor for hand-built histories (checker tests)."""
        return self.append(Operation(kind, process, value, invoke, response,
                                     register))

    def add_handle(self, handle) -> Optional[Operation]:
        """Record a completed operation handle (skips unfinished ones)."""
        op = operation_from_handle(handle)
        if op is None:
            return None
        return self.append(op)

    @classmethod
    def from_handles(cls, handles: Iterable) -> "History":
        history = cls()
        for handle in handles:
            history.add_handle(handle)
        return history

    # -- queries -----------------------------------------------------------
    def writes(self, register: Optional[str] = None) -> List[Operation]:
        """Writes ordered by invocation time."""
        selected = [op for op in self.ops if op.kind == "write"
                    and (register is None or op.register == register)]
        return sorted(selected, key=lambda op: op.invoke)

    def reads(self, register: Optional[str] = None) -> List[Operation]:
        """Reads ordered by invocation time."""
        selected = [op for op in self.ops if op.kind == "read"
                    and (register is None or op.register == register)]
        return sorted(selected, key=lambda op: op.invoke)

    def registers(self) -> List[str]:
        return sorted({op.register for op in self.ops})

    def writers(self, register: Optional[str] = None) -> List[str]:
        return sorted({op.process for op in self.writes(register)})

    def value_to_write(self, register: Optional[str] = None
                       ) -> Dict[Any, Operation]:
        """Map each written value to its write; raises on duplicates.

        Unique written values are what make register histories efficiently
        checkable; the workload generators guarantee them.
        """
        mapping: Dict[Any, Operation] = {}
        for write in self.writes(register):
            if write.value in mapping:
                raise ValueError(
                    f"written value {write.value!r} is not unique")
            mapping[write.value] = write
        return mapping

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def format(self) -> str:
        """Chronological, human-readable rendering."""
        ordered = sorted(self.ops, key=lambda op: (op.invoke, op.response))
        return "\n".join(repr(op) for op in ordered)
