"""Consistency checkers over operation histories."""

from .atomicity import (LinearizabilityResult, NewOldInversion,
                        check_atomic_swsr, check_linearizable,
                        find_new_old_inversions, is_atomic_swsr)
from .history import History, Operation
from .regularity import (NO_INITIAL, RegularityViolation, allowed_values,
                         check_regularity, is_regular)
from .stabilization import (StabilizationReport, find_tau_stab,
                            stabilization_report)

__all__ = [
    "History", "LinearizabilityResult", "NO_INITIAL", "NewOldInversion",
    "Operation", "RegularityViolation", "StabilizationReport",
    "allowed_values", "check_atomic_swsr", "check_linearizable",
    "check_regularity", "find_new_old_inversions", "find_tau_stab",
    "is_atomic_swsr", "is_regular", "stabilization_report",
]
