"""Consistency checkers over operation histories — batch and streaming."""

from .atomicity import (LinearizabilityResult, NewOldInversion,
                        check_atomic_swsr, check_linearizable,
                        find_new_old_inversions, is_atomic_swsr)
from .history import History, Operation, operation_from_handle
from .online import (OnlineChecker, OnlineInversionDetector,
                     OnlineRegularityChecker, OnlineTauTracker,
                     StreamingLinearizer)
from .regularity import (NO_INITIAL, RegularityViolation, allowed_values,
                         check_regularity, is_regular)
from .stabilization import (StabilizationReport, find_tau_stab,
                            stabilization_report)
from .stream import ObservationStream, history_digest, operation_fingerprint

__all__ = [
    "History", "LinearizabilityResult", "NO_INITIAL", "NewOldInversion",
    "ObservationStream", "OnlineChecker", "OnlineInversionDetector",
    "OnlineRegularityChecker", "OnlineTauTracker", "Operation",
    "RegularityViolation", "StabilizationReport", "StreamingLinearizer",
    "allowed_values", "check_atomic_swsr", "check_linearizable",
    "check_regularity", "find_new_old_inversions", "find_tau_stab",
    "history_digest", "is_atomic_swsr", "is_regular",
    "operation_fingerprint", "operation_from_handle",
    "stabilization_report",
]
