"""Atomicity checkers: new/old inversion detection and linearizability.

Two tools:

* :func:`find_new_old_inversions` — the phenomenon of Figure 1: two reads,
  sequentially ordered, returning values in the opposite of their writing
  order.  Defined for single-writer histories (where the write order is the
  writer's sequence).  A *stabilizing atomic* register must eventually show
  none (Section 2.2), and a *practically* stabilizing one shows none while
  fewer than system-life-span writes separate reads (Lemma 13).

* :func:`check_linearizable` — an exact Wing&Gong-style search deciding
  whether a (small) read/write register history has a linearization.  Used
  for the MWMR construction (Theorem 4), where writes of different
  processes are not totally ordered by real time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from .history import History, Operation
from .regularity import NO_INITIAL


@dataclass
class NewOldInversion:
    """Reads ``first`` then ``second`` returned write ``k2 < k1``."""

    first: Operation
    second: Operation
    first_write_index: int
    second_write_index: int

    def __repr__(self) -> str:
        return (f"NewOldInversion({self.first!r} -> w#{self.first_write_index}"
                f", then {self.second!r} -> w#{self.second_write_index})")


def find_new_old_inversions(history: History, after: float = 0.0,
                            register: Optional[str] = None,
                            initial: Any = NO_INITIAL
                            ) -> List[NewOldInversion]:
    """All new/old inversions among reads invoked at or after ``after``.

    Reads returning values that were never written (arbitrary pre-
    stabilization output) are skipped here — they are flagged by the
    regularity checker instead.  Exception: when ``initial`` is given it
    participates as virtual write ``#-1``, so the pattern "read w0, then
    read the initial value back" *is* an inversion (it has no
    linearization; found by the brute-force oracle of
    ``tests/test_checkers_properties.py``).  A real write may rewrite
    the initial value, making reads of that value ambiguous between
    virtual write #-1 and the rewrite.  Such reads are attributed
    *feasibly* (the virtual write is ruled out once any real write
    completely precedes the read) and then *conservatively* (an
    inversion is reported only if every remaining attribution is one):
    sound on rewrite histories — never a false positive — though pairwise
    attribution may miss inversions that only a globally consistent
    assignment would expose.  Workloads with unique written values (what
    the scenario generators guarantee) are always attributed exactly.
    """
    writers = history.writers(register)
    if len(writers) > 1:
        raise ValueError(
            f"inversion detector needs a single writer, got {writers}")
    writes = history.writes(register)
    # value -> all write indices it may denote (>1 entry only for an
    # initial value that a real write later rewrites).
    write_index: Dict[Any, List[int]] = \
        {} if initial is NO_INITIAL else {initial: [-1]}
    for index, write in enumerate(writes):
        slots = write_index.setdefault(write.value, [])
        if any(slot >= 0 for slot in slots):
            raise ValueError(f"written value {write.value!r} is not unique")
        slots.append(index)

    def feasible(read: Operation) -> List[int]:
        slots = write_index[read.value]
        if -1 not in slots:
            return slots
        # the virtual initial is ruled out once any write completely
        # precedes the read; a real rewrite is ruled out when it is
        # invoked only after the read responded.
        if any(write.precedes(read) for write in writes):
            slots = [slot for slot in slots if slot >= 0]
        return [slot for slot in slots
                if slot < 0 or not read.precedes(writes[slot])]

    reads = [read for read in history.reads(register)
             if read.invoke >= after and read.value in write_index]
    attributions = {read.op_id: feasible(read) for read in reads}
    reads = [read for read in reads if attributions[read.op_id]]
    inversions = []
    for i, first in enumerate(reads):
        for second in reads[i + 1:]:
            if not first.precedes(second):
                continue
            k1 = min(attributions[first.op_id])
            k2 = max(attributions[second.op_id])
            if k2 < k1:
                inversions.append(NewOldInversion(first, second, k1, k2))
    return inversions


def check_atomic_swsr(history: History, after: float = 0.0,
                      register: Optional[str] = None,
                      initial: Any = NO_INITIAL) -> Tuple[List, List]:
    """Eventual atomicity (Section 2.2): regular values + no inversions.

    Returns ``(regularity_violations, inversions)`` for reads invoked at or
    after ``after``.
    """
    from .regularity import check_regularity
    violations = check_regularity(history, after, register, initial)
    inversions = find_new_old_inversions(history, after, register, initial)
    return violations, inversions


def is_atomic_swsr(history: History, after: float = 0.0,
                   register: Optional[str] = None,
                   initial: Any = NO_INITIAL) -> bool:
    violations, inversions = check_atomic_swsr(history, after, register,
                                               initial)
    return not violations and not inversions


# ----------------------------------------------------------------------
# exact linearizability (for MWMR histories)
# ----------------------------------------------------------------------
class LinearizabilityResult:
    """Outcome of the exact search, with a witness order when one exists."""

    def __init__(self, ok: bool, order: Optional[List[Operation]] = None,
                 explored: int = 0):
        self.ok = ok
        self.order = order
        self.explored = explored

    def __bool__(self) -> bool:
        return self.ok


def check_linearizable(history: History, initial: Any = None,
                       register: Optional[str] = None,
                       max_states: int = 2_000_000) -> LinearizabilityResult:
    """Decide whether the register history linearizes.

    Exact DFS over completion orders with memoization on
    ``(remaining-ops, current-value)``.  Operations may be linearized next
    only if no other remaining operation *responded* before they were
    invoked.  Raises ``RuntimeError`` if ``max_states`` is exceeded
    (histories in this repo are small enough in practice).
    """
    ops = [op for op in history.ops
           if register is None or op.register == register]
    ops.sort(key=lambda op: (op.invoke, op.response))
    n = len(ops)
    if n == 0:
        return LinearizabilityResult(True, [])

    seen: Set[Tuple[FrozenSet[int], Any]] = set()
    explored = 0

    def candidates(remaining: FrozenSet[int]) -> List[int]:
        earliest_response = min(ops[i].response for i in remaining)
        return [i for i in remaining if ops[i].invoke <= earliest_response]

    def dfs(remaining: FrozenSet[int], value: Any,
            prefix: List[int]) -> Optional[List[int]]:
        nonlocal explored
        if not remaining:
            return prefix
        key = (remaining, value)
        if key in seen:
            return None
        seen.add(key)
        explored += 1
        if explored > max_states:
            raise RuntimeError("linearizability search exceeded max_states")
        for i in candidates(remaining):
            op = ops[i]
            if op.kind == "read":
                if op.value != value:
                    continue
                result = dfs(remaining - {i}, value, prefix + [i])
            else:
                result = dfs(remaining - {i}, op.value, prefix + [i])
            if result is not None:
                return result
        return None

    witness = dfs(frozenset(range(n)), initial, [])
    if witness is None:
        return LinearizabilityResult(False, None, explored)
    return LinearizabilityResult(True, [ops[i] for i in witness], explored)
