"""Incremental online checkers: verdicts while the execution streams by.

The offline checkers (:mod:`repro.checkers.regularity`,
:mod:`repro.checkers.atomicity`, :mod:`repro.checkers.stabilization`) are
pure functions of a fully materialized :class:`~repro.checkers.history
.History` — simple to reason about, but they bound run length by RAM and
only reveal τ_stab after a terminal rescan.  This module re-states each
check as an *online* object consuming completed operations in completion
(response-time) order, the order an :class:`~repro.checkers.stream
.ObservationStream` delivers them:

* :class:`OnlineRegularityChecker` — the allowed-value-set check of
  :func:`~repro.checkers.regularity.check_regularity`, judged per read as
  soon as no future write can overlap it;
* :class:`OnlineInversionDetector` — windowed new/old-inversion detection
  equivalent to :func:`~repro.checkers.atomicity.find_new_old_inversions`,
  with bounded write-window eviction once reads can no longer overlap
  evicted writes;
* :class:`OnlineTauTracker` — first-violation-free-suffix tracking: τ_stab
  is known the moment the run ends, with no rescan, reproducing
  :func:`~repro.checkers.stabilization.find_tau_stab` /
  :func:`~repro.checkers.stabilization.stabilization_report` exactly;
* :class:`StreamingLinearizer` — per-register linearizability via
  concurrency-segment decomposition, equivalent to
  :func:`~repro.checkers.atomicity.check_linearizable` on each register's
  (optionally post-τ) history.

Equivalence contract
--------------------
With unbounded windows (the defaults) every checker is *exactly*
equivalent to its offline counterpart — property-tested against the
offline implementations and their brute-force oracles in
``tests/test_checkers_online.py``.  Bounded windows (the soak
configuration) trade completeness for O(window) memory: verdicts are
still sound (never a false violation), and any situation where the
window was too small to preserve exactness flips :attr:`exact` to
``False`` instead of silently guessing.

Why completion order suffices
-----------------------------
A read ``r`` can be judged once a write invoked strictly after
``r.response`` has completed: the writer is sequential, so every write
that could precede or overlap ``r`` (the only writes the regularity set
and the inversion attribution consult) has already completed.  Pending
reads are therefore buffered only while writes can still overlap them —
memory proportional to the concurrency of the execution, not its length.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right, insort
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from .atomicity import NewOldInversion
from .history import Operation
from .regularity import NO_INITIAL, RegularityViolation
from .stabilization import StabilizationReport

_NEG_INF = float("-inf")


class OnlineChecker:
    """Base protocol: feed completed operations, then :meth:`finish`."""

    def observe(self, op: Operation) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Flush pending judgements (end of stream).  Idempotent."""


# ----------------------------------------------------------------------
# shared single-writer streaming machinery
# ----------------------------------------------------------------------
class _SingleWriterStream(OnlineChecker):
    """Write log + pending-read buffer shared by the SWSR checkers.

    Subclasses implement :meth:`_finalize` (called once per read, in
    response order, when every write that could precede or overlap the
    read is known).  ``write_window`` bounds the retained write log:
    writes are evicted oldest-first once no *pending* read can still
    overlap them; the last evicted write's value stays available so the
    last-preceding-write computation survives eviction exactly.
    """

    def __init__(self, register: Optional[str] = None,
                 initial: Any = NO_INITIAL,
                 write_window: Optional[int] = None,
                 track_slots: bool = False,
                 listener: Optional[Callable[..., None]] = None):
        self.register = register
        self.initial = initial
        self.write_window = write_window
        self.listener = listener
        #: True while every judgement matched what the offline checker
        #: would compute; bounded windows flip it instead of guessing.
        self.exact = True
        self.total_reads = 0
        self.total_writes = 0
        self._track_slots = track_slots
        self._writes: List[Operation] = []        # retained window
        self._write_base = 0                      # global index of _writes[0]
        self._responses: List[float] = []         # parallel to _writes
        self._invokes: List[float] = []
        self._slots: Dict[Any, List[int]] = {}
        if track_slots and initial is not NO_INITIAL:
            self._slots[initial] = [-1]
        self._pending: Deque[Operation] = deque()
        self._writer: Optional[str] = None
        self._first_write_response: Optional[float] = None
        self._evicted_last: Optional[Operation] = None
        self._evicted_max_response = _NEG_INF
        self._finished = False

    # -- ingestion ---------------------------------------------------------
    def observe(self, op: Operation) -> None:
        if self.register is not None and op.register != self.register:
            return
        if op.kind == "write":
            self._observe_write(op)
        elif op.kind == "read":
            self.total_reads += 1
            self._pending.append(op)

    def _observe_write(self, op: Operation) -> None:
        if self._writer is None:
            self._writer = op.process
        elif op.process != self._writer:
            raise ValueError(
                "online SWSR checkers need a single writer, got "
                f"{sorted({self._writer, op.process})}")
        # completion order + a sequential writer ⇒ invoke order; anything
        # else would silently break the finalization horizon.
        if self._writes and op.invoke < self._writes[-1].invoke:
            raise ValueError("online checkers require writes in invocation "
                             "order (sequential writer, completion-order "
                             "feed)")
        # every pending read that responded before this write was invoked
        # can no longer gain an overlapping write: judge it now.
        self._drain(op.invoke)
        if self._track_slots:
            slots = self._slots.setdefault(op.value, [])
            if any(slot >= 0 for slot in slots):
                raise ValueError(
                    f"written value {op.value!r} is not unique")
            slots.append(self._write_base + len(self._writes))
        self._writes.append(op)
        self._responses.append(op.response)
        self._invokes.append(op.invoke)
        self.total_writes += 1
        if self._first_write_response is None:
            self._first_write_response = op.response
        self._evict()

    def _drain(self, horizon: float) -> None:
        while self._pending and self._pending[0].response < horizon:
            self._finalize(self._pending.popleft())

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        while self._pending:
            self._finalize(self._pending.popleft())

    # -- eviction ----------------------------------------------------------
    @property
    def window_occupancy(self) -> int:
        """Operations currently held in the sliding windows."""
        return len(self._writes) + len(self._pending)

    def _evict(self) -> None:
        if self.write_window is None:
            return
        while len(self._writes) > max(1, self.write_window):
            oldest = self._writes[0]
            if self._pending and \
                    oldest.response >= min(op.invoke for op in self._pending):
                return                      # a pending read still overlaps
            if self._track_slots:
                # an evicted rewrite of the initial value can no longer be
                # attributed exactly; keep the virtual slot, drop exactness.
                slots = self._slots.get(oldest.value)
                if slots is not None and -1 in slots:
                    self._slots[oldest.value] = [-1]
                    self.exact = False
                else:
                    self._slots.pop(oldest.value, None)
            self._evicted_last = oldest
            self._evicted_max_response = oldest.response
            del self._writes[0]
            del self._responses[0]
            del self._invokes[0]
            self._write_base += 1

    # -- write queries (exact on the retained window) ----------------------
    def _any_write_precedes(self, read: Operation) -> bool:
        return (self._first_write_response is not None
                and self._first_write_response < read.invoke)

    def _last_preceding(self, read: Operation) -> Optional[Operation]:
        """The last write that responded before ``read`` was invoked."""
        index = bisect_left(self._responses, read.invoke)
        if index > 0:
            return self._writes[index - 1]
        if self._evicted_last is None:
            return None
        if self._evicted_max_response < read.invoke:
            return self._evicted_last       # exact: evictions are ordered
        self.exact = False                  # true predecessor was evicted
        return self._evicted_last
    # the read-before-window case above is the one bounded-memory
    # compromise: it only triggers for a read whose invocation predates
    # every retained write, i.e. an operation that stayed in flight across
    # more than ``write_window`` writes.

    def _concurrent(self, read: Operation) -> List[Operation]:
        """Retained writes overlapping ``read``'s interval."""
        if self._evicted_max_response >= read.invoke:
            self.exact = False              # an evicted write may overlap
        hi = bisect_right(self._invokes, read.response)
        lo = bisect_left(self._responses, read.invoke)
        return self._writes[lo:hi]

    def _finalize(self, read: Operation) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# regularity
# ----------------------------------------------------------------------
class OnlineRegularityChecker(_SingleWriterStream):
    """Streaming :func:`~repro.checkers.regularity.check_regularity`.

    A read is judged the moment no future write can overlap it, against
    exactly the offline allowed-value set: values of concurrent writes,
    plus the last preceding write's value (or ``initial`` when no write
    precedes).  Violations are recorded as the same
    :class:`~repro.checkers.regularity.RegularityViolation` records the
    offline checker produces.
    """

    def __init__(self, register: Optional[str] = None,
                 initial: Any = NO_INITIAL,
                 write_window: Optional[int] = None,
                 max_records: Optional[int] = None,
                 listener: Optional[Callable[..., None]] = None):
        super().__init__(register, initial, write_window,
                         track_slots=False, listener=listener)
        self.max_records = max_records
        self.violations: List[RegularityViolation] = []
        self.violation_count = 0

    def _finalize(self, read: Operation) -> None:
        concurrent = self._concurrent(read)
        allowed: Set[Any] = {write.value for write in concurrent}
        if self._any_write_precedes(read):
            last = self._last_preceding(read)
            if last is not None:
                allowed.add(last.value)
        elif self.initial is not NO_INITIAL:
            allowed.add(self.initial)
        if not allowed:
            return                          # unconstrained read
        if read.value in allowed:
            return
        self.violation_count += 1
        if self.max_records is None or len(self.violations) < self.max_records:
            self.violations.append(
                RegularityViolation(read, read.value, allowed))
        else:
            # the violation is counted but not recorded, so
            # violations_after() can no longer enumerate it — flag it.
            self.exact = False
        if self.listener is not None:
            self.listener("regularity", read)

    def violations_after(self, after: float) -> List[RegularityViolation]:
        """Recorded violations among reads invoked at or after ``after``."""
        return [violation for violation in self.violations
                if violation.read.invoke >= after]


# ----------------------------------------------------------------------
# new/old inversions
# ----------------------------------------------------------------------
class OnlineInversionDetector(_SingleWriterStream):
    """Streaming :func:`~repro.checkers.atomicity.find_new_old_inversions`.

    Each finalized read is attributed to the feasible write indices of
    its value (including the virtual initial write ``#-1`` and the
    rewrite-ambiguity rules of the offline checker), then compared
    against the window of previously finalized reads: a pair
    ``(first, second)`` with ``first`` preceding ``second`` and
    ``max(attr(second)) < min(attr(first))`` is a new/old inversion —
    the same pair set, attribution and conservatism as offline.

    ``read_window`` bounds the retained finalized reads; evicted reads
    degrade to an aggregate (their maximal minimum-attribution), which
    still detects that *an* inversion exists but can no longer name the
    exact pair — :attr:`exact` flips when that aggregate fires.
    """

    def __init__(self, register: Optional[str] = None,
                 initial: Any = NO_INITIAL,
                 write_window: Optional[int] = None,
                 read_window: Optional[int] = None,
                 max_records: Optional[int] = None,
                 listener: Optional[Callable[..., None]] = None):
        super().__init__(register, initial, write_window,
                         track_slots=True, listener=listener)
        self.read_window = read_window
        self.max_records = max_records
        self.inversions: List[NewOldInversion] = []
        self.inversion_count = 0
        #: attributed reads, eligible as pair members:
        #: (invoke, response, lo, hi, op)
        self._reads: Deque = deque()
        #: finalized reads whose value no completed write has produced yet;
        #: the offline checker attributes them to the (unique) future write
        #: of that value, so they join ``_reads`` retroactively when it
        #: completes (never matched ⇒ offline skips them too).
        self._watch: Dict[Any, List[Operation]] = {}
        self._ev_reads_max_lo: Optional[int] = None
        self._ev_reads_max_response = _NEG_INF
        self._ev_reads_max_invoke = _NEG_INF

    @property
    def window_occupancy(self) -> int:
        return (len(self._writes) + len(self._pending)
                + len(self._reads))

    # -- attribution (mirrors atomicity.find_new_old_inversions) -----------
    def _feasible(self, read: Operation) -> Optional[List[int]]:
        """Feasible write indices for ``read`` — ``None`` means the value
        is (so far) unwritten and the read must be watched; ``[]`` means
        known-but-infeasible (the offline checker skips such reads)."""
        slots = self._slots.get(read.value)
        if slots is None:
            if self._write_base:
                # the value may denote an evicted write we can no longer
                # attribute; offline would know.  Sound to skip, not exact.
                self.exact = False
            return None
        if -1 not in slots:
            # offline parity: the feasibility filters apply only to the
            # initial-rewrite ambiguity — a unique real write is taken as
            # the attribution even when the read precedes it.
            return list(slots)
        if self._any_write_precedes(read):
            slots = [slot for slot in slots if slot >= 0]
        feasible = []
        for slot in slots:
            if slot < 0:
                feasible.append(slot)
                continue
            local = slot - self._write_base
            if local < 0:
                self.exact = False          # evicted rewrite, kept virtual
                continue
            if not read.precedes(self._writes[local]):
                feasible.append(slot)
        return feasible

    def _observe_write(self, op: Operation) -> None:
        super()._observe_write(op)
        watchers = self._watch.pop(op.value, None)
        if watchers:
            index = self._write_base + len(self._writes) - 1
            for read in watchers:
                self._admit(read, index, index)

    def _finalize(self, read: Operation) -> None:
        slots = self._feasible(read)
        if slots is None:
            self._watch.setdefault(read.value, []).append(read)
            if self.read_window is not None:
                watching = sum(len(reads) for reads in self._watch.values())
                if watching > self.read_window:
                    self.exact = False      # sound: unmatched ⇒ skipped
                    self._watch.pop(next(iter(self._watch)))
            return
        if not slots:
            return                          # infeasible ⇒ offline skips too
        self._admit(read, min(slots), max(slots))

    def _admit(self, read: Operation, lo: int, hi: int) -> None:
        """Pair an attributed read against the retained reads (both roles:
        as the later ``second`` and — for late-attributed reads — as the
        earlier ``first``) and add it to the window."""
        for f_invoke, f_response, f_lo, f_hi, f_op in self._reads:
            if f_response < read.invoke and hi < f_lo:
                self._record(f_op, read, f_lo, hi, f_invoke)
            elif read.response < f_invoke and f_hi < lo:
                self._record(read, f_op, lo, f_hi, read.invoke)
        if (self._ev_reads_max_lo is not None
                and self._ev_reads_max_lo > hi):
            if read.invoke > self._ev_reads_max_response:
                # some evicted read certainly inverts with this one, but
                # the exact pair is gone — count it conservatively.
                self.exact = False
                self._record(None, read, self._ev_reads_max_lo, hi,
                             self._ev_reads_max_invoke)
            else:
                self.exact = False
        self._reads.append((read.invoke, read.response, lo, hi, read))
        if self.read_window is not None:
            while len(self._reads) > self.read_window:
                e_invoke, e_response, e_lo, _e_hi, _e_op = \
                    self._reads.popleft()
                if self._ev_reads_max_lo is None \
                        or e_lo > self._ev_reads_max_lo:
                    self._ev_reads_max_lo = e_lo
                self._ev_reads_max_response = max(self._ev_reads_max_response,
                                                  e_response)
                self._ev_reads_max_invoke = max(self._ev_reads_max_invoke,
                                                e_invoke)

    def _record(self, first: Optional[Operation], second: Operation,
                k1: int, k2: int, first_invoke: float) -> None:
        self.inversion_count += 1
        if first is not None and (self.max_records is None
                                  or len(self.inversions) < self.max_records):
            self.inversions.append(NewOldInversion(first, second, k1, k2))
        else:
            # the pair is counted but not recorded, so pairs_after() can
            # no longer enumerate it — flag instead of silently guessing.
            self.exact = False
        if self.listener is not None:
            self.listener("inversion", second, first_invoke)

    def pairs_after(self, after: float) -> int:
        """Inversion pairs whose reads were both invoked at/after ``after``
        (``first`` precedes ``second``, so filtering ``first`` suffices)."""
        return sum(1 for inversion in self.inversions
                   if inversion.first.invoke >= after)


# ----------------------------------------------------------------------
# τ_stab tracking
# ----------------------------------------------------------------------
class OnlineTauTracker(OnlineChecker):
    """First-violation-free-suffix tracking: τ_stab with no rescan.

    Wraps an :class:`OnlineRegularityChecker` and an
    :class:`OnlineInversionDetector` (always both, so inversion counts
    are available even in ``regular`` mode) and maintains, online:

    * ``B`` — the latest invocation instant that still exposes a
      violation (regularity reads; in ``atomic`` mode also the *first*
      read of every inversion pair, matching the offline cut filter);
    * the sorted set of read invocations strictly later than ``B`` —
      τ_stab candidates, evicted as ``B`` grows.

    :meth:`report` then reproduces
    :func:`~repro.checkers.stabilization.stabilization_report` for any
    ``tau_no_tr`` in O(log writes): ``tau_no_tr`` itself when ``B``
    precedes it, else the earliest candidate — exactly the offline scan's
    answer, available the moment the stream ends.
    """

    def __init__(self, mode: str = "regular",
                 register: Optional[str] = None,
                 initial: Any = NO_INITIAL,
                 write_window: Optional[int] = None,
                 read_window: Optional[int] = None,
                 max_records: Optional[int] = None,
                 candidate_cap: Optional[int] = None,
                 tau_hint: Optional[float] = None):
        if mode not in ("regular", "atomic"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.register = register
        self.initial = initial
        #: τ_stab needs no write log at all; only ``tau_1w`` does.  A
        #: ``tau_hint`` (the one cut-off a soak run will ever report at,
        #: known before its workload starts) collapses the per-write
        #: (invoke, response) arrays to O(1) state; ``None`` retains them
        #: all so ``report()`` stays exact for arbitrary cut-offs.
        self.tau_hint = tau_hint
        self._first_w: Optional[tuple] = None
        self._hint_1w: Optional[float] = None
        self.regularity = OnlineRegularityChecker(
            register, initial, write_window=write_window,
            max_records=max_records, listener=self._on_violation)
        self.inversions = OnlineInversionDetector(
            register, initial, write_window=write_window,
            read_window=read_window, max_records=max_records,
            listener=self._on_violation)
        self.candidate_cap = candidate_cap
        self.total_reads = 0
        self._w_invokes = array("d")
        self._w_responses = array("d")
        self._b_reg = _NEG_INF
        self._b_inv = _NEG_INF
        self._candidates: List[float] = []
        self._cand_dropped = False
        self._dirty_reg: Set[int] = set()
        self._dirty_second: Set[int] = set()
        self._epochs: List[Tuple[float, str]] = []
        self._finished = False

    # -- ingestion ---------------------------------------------------------
    def observe(self, op: Operation) -> None:
        if self.register is not None and op.register != self.register:
            return
        if op.kind == "write":
            if self.tau_hint is None:
                self._w_invokes.append(op.invoke)
                self._w_responses.append(op.response)
            else:
                if self._first_w is None:
                    self._first_w = (op.invoke, op.response)
                if self._hint_1w is None and op.invoke >= self.tau_hint:
                    self._hint_1w = op.response
        elif op.kind == "read":
            self.total_reads += 1
            self._note_candidate(op.invoke)
        self.regularity.observe(op)
        self.inversions.observe(op)

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.regularity.finish()
        self.inversions.finish()

    @property
    def exact(self) -> bool:
        return (self.regularity.exact and self.inversions.exact
                and not (self._cand_dropped and not self._candidates))

    @property
    def violation_count(self) -> int:
        """Violation events so far (regularity reads + inversion pairs)."""
        return (self.regularity.violation_count
                + self.inversions.inversion_count)

    @property
    def window_occupancy(self) -> int:
        """Live window footprint across both wrapped checkers."""
        return (self.regularity.window_occupancy
                + self.inversions.window_occupancy
                + len(self._candidates))

    # -- violation bookkeeping ---------------------------------------------
    def _barrier(self) -> float:
        if self.mode == "regular":
            return self._b_reg
        return max(self._b_reg, self._b_inv)

    def _on_violation(self, kind: str, read: Operation,
                      first_invoke: Optional[float] = None) -> None:
        # dedup by op_id, which ObservationStream/History assign uniquely
        # per run — object ids would be recycled once capped records stop
        # keeping violating reads alive.
        if kind == "regularity":
            self._dirty_reg.add(read.op_id)
            self._b_reg = max(self._b_reg, read.invoke)
        else:
            self._dirty_second.add(read.op_id)
            self._b_inv = max(self._b_inv, first_invoke)
        barrier = self._barrier()
        cut = bisect_right(self._candidates, barrier)
        if cut:
            del self._candidates[:cut]

    def _note_candidate(self, invoke: float) -> None:
        if invoke <= self._barrier():
            return
        insort(self._candidates, invoke)
        if self.candidate_cap is not None \
                and len(self._candidates) > self.candidate_cap:
            self._candidates.pop()
            self._cand_dropped = True

    # -- results -----------------------------------------------------------
    @property
    def dirty_reads(self) -> int:
        """Distinct reads violating from time 0 (the offline dirty set)."""
        if self.mode == "regular":
            return len(self._dirty_reg)
        return len(self._dirty_reg | self._dirty_second)

    def tau_stab(self, tau_no_tr: float = 0.0) -> Optional[float]:
        """The offline :func:`find_tau_stab` answer, without a rescan."""
        barrier = self._barrier()
        if barrier < tau_no_tr:
            return tau_no_tr
        index = bisect_right(self._candidates, barrier)
        if index < len(self._candidates):
            return self._candidates[index]
        return None

    # -- migration epochs ---------------------------------------------------
    def begin_epoch(self, time: float, label: str = "") -> None:
        """Record a migration-epoch boundary at ``time``.

        Epochs are the τ cut-offs of *planned* disruptions — the live
        resharding scenario marks one per completed rebalance handoff —
        and reuse the tracker's barrier/candidate state, so they cost
        O(1) here and O(log reads) each at :meth:`epoch_taus` time.
        """
        self._epochs.append((float(time), str(label)))

    def epoch_taus(self) -> List[Dict[str, Any]]:
        """Per-epoch τ_stab: the same first-violation-free-suffix answer
        :meth:`tau_stab` gives, with each epoch's start as the cut-off.

        ``tau == start`` means the epoch was clean (every read from its
        first instant on is consistent); a later ``tau`` is the instant
        the system re-stabilized after the epoch's disruption; ``None``
        means violations persisted to the end of the stream.
        """
        return [{"label": label, "start": start,
                 "tau": self.tau_stab(start)}
                for start, label in self._epochs]

    def tau_1w(self, tau_no_tr: float = 0.0) -> Optional[float]:
        """Response instant of the first write invoked at/after τ_no_tr."""
        if self.tau_hint is not None:
            if self._first_w is not None and tau_no_tr <= self._first_w[0]:
                return self._first_w[1]
            # exact for the hinted cut-off (the only one a hinted run
            # reports at); intermediate cuts were pruned away.
            return self._hint_1w
        index = bisect_left(self._w_invokes, tau_no_tr)
        if index < len(self._w_responses):
            return self._w_responses[index]
        return None

    def report(self, tau_no_tr: float = 0.0) -> StabilizationReport:
        """The full τ-timeline (equals offline ``stabilization_report``)."""
        self.finish()
        tau_stab = self.tau_stab(tau_no_tr)
        return StabilizationReport(
            mode=self.mode,
            tau_no_tr=tau_no_tr,
            tau_1w=self.tau_1w(tau_no_tr),
            tau_stab=tau_stab,
            total_reads=self.total_reads,
            dirty_reads=self.dirty_reads,
            stable=tau_stab is not None,
        )


# ----------------------------------------------------------------------
# streaming linearizability (per-register, MWMR-capable)
# ----------------------------------------------------------------------
class _RegisterLane:
    """Per-register state of the streaming linearizer."""

    __slots__ = ("sealed", "cutoff", "buffer", "open", "open_mr", "closed",
                 "possible", "ok", "collapsed_mr", "exact", "ops_seen")

    def __init__(self, initial: Any):
        self.sealed = False
        self.cutoff: Optional[float] = None
        self.buffer: List[Operation] = []
        self.open: List[Operation] = []
        self.open_mr = _NEG_INF
        self.closed: List = []              # [(segment ops, max response)]
        self.possible: Set[Any] = {initial}
        self.ok = True
        self.collapsed_mr = _NEG_INF
        self.exact = True
        self.ops_seen = 0


class StreamingLinearizer(OnlineChecker):
    """Per-register linearizability by concurrency-segment decomposition.

    Any linearization must order two operations ``a``, ``b`` with
    ``a.response < b.invoke`` as ``a`` before ``b`` — so at every instant
    where *all* previously invoked operations have responded, the history
    cuts into segments that linearize independently, communicating only
    the register value across the cut.  The checker keeps one open
    segment per register (merging back closed segments if a late-finishing
    operation straddles a tentative cut), and collapses each settled
    segment with the same bounded DFS as offline
    :func:`~repro.checkers.atomicity.check_linearizable`, carrying the
    *set* of feasible register values across cuts.  A register fails the
    moment that set empties — equivalent to the offline verdict on the
    register's full (post-cutoff) history.

    * :meth:`seal` fixes a register's post-τ cutoff: buffered and future
      operations invoked before it are discarded, matching the per-key
      post-τ suffix the KV scenario judges.
    * :meth:`settle` collapses closed segments at a known quiesce point
      (e.g. after a pipeline flush), bounding memory by the largest
      concurrency segment instead of the run length; a later operation
      reaching into collapsed territory flips :attr:`exact` (sound, no
      longer provably complete).
    """

    def __init__(self, initial: Any = None, max_states: int = 2_000_000):
        self.initial = initial
        self.max_states = max_states
        self.explored = 0
        self._lanes: Dict[str, _RegisterLane] = {}
        self._finished = False

    def _lane(self, register: str) -> _RegisterLane:
        lane = self._lanes.get(register)
        if lane is None:
            lane = self._lanes[register] = _RegisterLane(self.initial)
        return lane

    # -- ingestion ---------------------------------------------------------
    def observe(self, op: Operation) -> None:
        lane = self._lane(op.register)
        if not lane.sealed:
            lane.buffer.append(op)
            return
        if lane.cutoff is not None and op.invoke < lane.cutoff:
            return
        self._feed(lane, op)

    def seal(self, register: str, cutoff: Optional[float] = None) -> None:
        """Fix ``register``'s cutoff; replay its buffered operations."""
        lane = self._lane(register)
        if lane.sealed:
            raise ValueError(f"register {register!r} already sealed")
        lane.sealed = True
        lane.cutoff = cutoff
        buffered, lane.buffer = lane.buffer, []
        for op in buffered:
            if cutoff is None or op.invoke >= cutoff:
                self._feed(lane, op)

    def _feed(self, lane: _RegisterLane, op: Operation) -> None:
        lane.ops_seen += 1
        if op.invoke <= lane.collapsed_mr:
            lane.exact = False              # straddles a settled cut
        # merge back any tentatively closed segment this op straddles
        while lane.closed and lane.closed[-1][1] >= op.invoke:
            segment, max_response = lane.closed.pop()
            lane.open = segment + lane.open
            lane.open_mr = max(lane.open_mr, max_response)
        if lane.open and op.invoke > lane.open_mr:
            lane.closed.append((lane.open, lane.open_mr))
            lane.open = [op]
            lane.open_mr = op.response
        else:
            lane.open.append(op)
            lane.open_mr = max(lane.open_mr, op.response)

    # -- collapsing --------------------------------------------------------
    def settle(self, register: Optional[str] = None) -> None:
        """Collapse closed segments (call only at quiesce points)."""
        lanes = ([self._lanes[register]] if register is not None
                 else list(self._lanes.values()))
        for lane in lanes:
            closed, lane.closed = lane.closed, []
            for segment, max_response in closed:
                self._collapse(lane, segment, max_response)

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        for register in list(self._lanes):
            lane = self._lanes[register]
            if not lane.sealed:
                self.seal(register)
            self.settle(register)
            if lane.open:
                segment, lane.open = lane.open, []
                self._collapse(lane, segment, lane.open_mr)

    def _collapse(self, lane: _RegisterLane, segment: List[Operation],
                  max_response: float) -> None:
        lane.collapsed_mr = max(lane.collapsed_mr, max_response)
        if not lane.ok:
            return
        finals: Set[Any] = set()
        for value in lane.possible:
            finals |= self._segment_finals(segment, value)
        lane.possible = finals
        if not finals:
            lane.ok = False

    def _segment_finals(self, segment: List[Operation],
                        entry: Any) -> Set[Any]:
        """All register values a linearization of ``segment`` can end on."""
        ops = sorted(segment, key=lambda op: (op.invoke, op.response))
        if not ops:
            return {entry}
        finals: Set[Any] = set()
        seen: Set = set()

        def dfs(remaining, value):
            self.explored += 1
            if self.explored > self.max_states:
                raise RuntimeError(
                    "linearizability search exceeded max_states")
            if not remaining:
                finals.add(value)
                return
            key = (remaining, value)
            if key in seen:
                return
            seen.add(key)
            earliest = min(ops[i].response for i in remaining)
            for i in remaining:
                op = ops[i]
                if op.invoke > earliest:
                    continue
                if op.kind == "read":
                    if op.value == value:
                        dfs(remaining - {i}, value)
                else:
                    dfs(remaining - {i}, op.value)

        dfs(frozenset(range(len(ops))), entry)
        return finals

    # -- results -----------------------------------------------------------
    def ok(self, register: str) -> bool:
        """Verdict for one register (vacuously true when never seen)."""
        lane = self._lanes.get(register)
        return True if lane is None else lane.ok

    @property
    def exact(self) -> bool:
        return all(lane.exact for lane in self._lanes.values())

    def verdicts(self) -> Dict[str, bool]:
        """Register → linearizable, for every register observed."""
        return {register: lane.ok
                for register, lane in sorted(self._lanes.items())}

    def cutoffs(self) -> Dict[str, Optional[float]]:
        """Register → sealed cutoff, for every *sealed* register.

        This is the checker's replayable configuration: feeding the same
        operations to a fresh linearizer sealed upfront with these
        cutoffs reproduces every verdict (capture re-check mode does
        exactly that).
        """
        return {register: lane.cutoff
                for register, lane in sorted(self._lanes.items())
                if lane.sealed}

    @property
    def window_occupancy(self) -> int:
        """Operations buffered in open/unsealed segments right now."""
        return sum(len(lane.buffer) + len(lane.open)
                   + sum(len(segment) for segment, _ in lane.closed)
                   for lane in self._lanes.values())
