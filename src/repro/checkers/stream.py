"""The observation stream: completed operations as they happen.

An :class:`ObservationStream` is the funnel between the execution layer
(drivers finishing :class:`~repro.sim.process.OperationHandle` objects)
and everything that judges or summarizes a run.  It replaces the
materialize-then-scan pattern (`History.from_handles` + batch checker
passes) with a single pass over completion events:

* **counters** — operations / writes / reads maintained incrementally, so
  ``summarize()`` never re-walks a history;
* **digest** — an incremental, order-independent fingerprint of the
  operation multiset (see :func:`history_digest`), identical whether it
  is folded op-by-op as the run streams or over a finished history;
* **checker fan-out** — every observed operation is forwarded, in
  completion order, to the attached
  :class:`~repro.checkers.online.OnlineChecker` objects;
* **optional retention** — ``keep_history=True`` also appends every
  operation to a :class:`~repro.checkers.history.History` (the default
  for ordinary scenarios, where replay/confirmation paths still want the
  full history); soak runs switch it off and keep peak memory bounded by
  the checkers' windows instead of the run length.

Operations arrive in **completion order** (response time, ties broken by
the scheduler's deterministic event order) — exactly what the online
checkers require, and guaranteed by feeding the stream from
``OperationHandle.on_done`` callbacks of a deterministic simulation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional

from .history import History, Operation, operation_from_handle
from .online import OnlineChecker

_DIGEST_MOD = 1 << 128

#: Construction-time taps: every new stream offers itself to each
#: registered factory, which may return an extra checker to attach
#: (``repro.capture`` uses this to ride along with any scenario).
_STREAM_TAPS: List = []


def register_stream_tap(factory) -> None:
    """Register ``factory(stream) -> Optional[OnlineChecker]`` to be
    consulted whenever an :class:`ObservationStream` is constructed."""
    if factory not in _STREAM_TAPS:
        _STREAM_TAPS.append(factory)


def operation_fingerprint(op: Operation) -> int:
    """A 128-bit fingerprint of one operation's observable content.

    ``op_id`` is deliberately excluded: the fingerprint describes *what
    happened*, not the order observations were appended in.
    """
    payload = (f"{op.kind}|{op.process}|{op.register}|{op.value!r}"
               f"|{op.invoke!r}|{op.response!r}")
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


def _render_digest(accumulator: int, count: int) -> str:
    payload = f"{count}:{accumulator:032x}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def history_digest(history: Iterable[Operation]) -> str:
    """A short, stable fingerprint of an operation history.

    Computed as an order-independent fold (sum modulo 2**128) of per-
    operation SHA-256 fingerprints: the digest of a finished
    :class:`~repro.checkers.history.History` equals the digest an
    :class:`ObservationStream` accumulated while the same operations
    streamed by — regardless of append order.  Same-seed executions have
    identical digests; any divergence in an operation's kind, process,
    value, register or timing changes it.
    """
    accumulator = 0
    count = 0
    for op in history:
        accumulator = (accumulator + operation_fingerprint(op)) % _DIGEST_MOD
        count += 1
    return _render_digest(accumulator, count)


class ObservationStream:
    """Single-pass observation pipeline for completed operations.

    >>> from repro.checkers.history import Operation
    >>> stream = ObservationStream(keep_history=True)
    >>> _ = stream.observe(Operation("write", "w", "w0", 1.0, 2.0))
    >>> _ = stream.observe(Operation("read", "r", "w0", 3.0, 4.0))
    >>> stream.close()
    >>> (stream.ops, stream.writes, stream.reads)
    (2, 1, 1)
    >>> stream.digest() == history_digest(stream.history)
    True
    """

    def __init__(self, checkers: Iterable[OnlineChecker] = (),
                 keep_history: bool = False):
        self.checkers: List[OnlineChecker] = list(checkers)
        self.history: Optional[History] = History() if keep_history else None
        self.ops = 0
        self.writes = 0
        self.reads = 0
        self._digest_acc = 0
        self._closed = False
        for factory in _STREAM_TAPS:
            extra = factory(self)
            if extra is not None:
                self.checkers.append(extra)

    # -- ingestion ---------------------------------------------------------
    def observe(self, op: Operation) -> Operation:
        """Record one completed operation (completion order)."""
        if self._closed:
            raise ValueError("observation stream is closed")
        if self.history is not None:
            self.history.append(op)         # assigns op_id
        else:
            op.op_id = self.ops
        self.ops += 1
        if op.kind == "write":
            self.writes += 1
        elif op.kind == "read":
            self.reads += 1
        self._digest_acc = (self._digest_acc
                            + operation_fingerprint(op)) % _DIGEST_MOD
        for checker in self.checkers:
            checker.observe(op)
        return op

    def observe_handle(self, handle) -> Optional[Operation]:
        """Record a completed operation handle (ignores non-op handles)."""
        op = operation_from_handle(handle)
        if op is not None:
            return self.observe(op)
        return None

    def attach(self, checker: OnlineChecker) -> OnlineChecker:
        """Add a checker mid-stream (it sees only later operations)."""
        self.checkers.append(checker)
        return checker

    def close(self) -> None:
        """End of stream: flush every checker's pending judgements."""
        if self._closed:
            return
        self._closed = True
        for checker in self.checkers:
            checker.finish()

    # -- results -----------------------------------------------------------
    def digest(self) -> str:
        """The incremental history fingerprint (see :func:`history_digest`)."""
        return _render_digest(self._digest_acc, self.ops)
