"""Regular-register semantics checker (Section 2.2 / Lemma 3).

*Eventual regularity*: after τ_stab every read returns a value written by
(a) the last write executed before the read, or (b) a write concurrent
with the read.  The checker evaluates exactly that condition on each read
invoked after a caller-supplied cut-off time, which is how τ_stab is
*measured* (see :mod:`repro.checkers.stabilization`).

The checker targets single-writer histories (writes totally ordered by
real time); MWMR histories are checked by the linearizability machinery in
:mod:`repro.checkers.atomicity`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set

from .history import History, Operation


class _NoInitial:
    """Sentinel: reads before the first write are unconstrained."""

    def __repr__(self) -> str:
        return "NO_INITIAL"


NO_INITIAL = _NoInitial()


@dataclass
class RegularityViolation:
    """A read that returned neither the last preceding nor a concurrent value."""

    read: Operation
    returned: Any
    allowed: Set[Any]

    def __repr__(self) -> str:
        return (f"RegularityViolation({self.read!r} returned "
                f"{self.returned!r}, allowed {sorted(map(repr, self.allowed))})")


def allowed_values(history: History, read: Operation,
                   register: Optional[str] = None,
                   initial: Any = NO_INITIAL) -> Optional[Set[Any]]:
    """The set of regular return values for ``read``.

    Returns ``None`` when the read is unconstrained (no preceding or
    concurrent write and no initial value was supplied).
    """
    writes = history.writes(register if register is not None
                            else read.register)
    preceding = [w for w in writes if w.precedes(read)]
    concurrent = [w for w in writes if w.overlaps(read)]
    allowed: Set[Any] = {w.value for w in concurrent}
    if preceding:
        last = max(preceding, key=lambda w: w.invoke)
        allowed.add(last.value)
    elif initial is not NO_INITIAL:
        allowed.add(initial)
    if not allowed:
        return None
    return allowed


def check_regularity(history: History, after: float = 0.0,
                     register: Optional[str] = None,
                     initial: Any = NO_INITIAL) -> List[RegularityViolation]:
    """All regularity violations among reads *invoked* at or after ``after``.

    Requires a single-writer history (raises otherwise).
    """
    writers = history.writers(register)
    if len(writers) > 1:
        raise ValueError(
            f"regularity checker needs a single writer, got {writers}")
    violations = []
    for read in history.reads(register):
        if read.invoke < after:
            continue
        allowed = allowed_values(history, read, register, initial)
        if allowed is None:
            continue  # unconstrained (pre-first-write, no initial known)
        if read.value not in allowed:
            violations.append(RegularityViolation(read, read.value, allowed))
    return violations


def is_regular(history: History, after: float = 0.0,
               register: Optional[str] = None,
               initial: Any = NO_INITIAL) -> bool:
    """Predicate form of :func:`check_regularity`."""
    return not check_regularity(history, after, register, initial)
