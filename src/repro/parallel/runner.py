"""The parallel scenario runner: dispatch shard plans, merge outcomes.

:class:`ParallelScenarioRunner` executes a list of
:class:`~repro.parallel.plan.ShardPlan` objects — in worker processes
(``parallel=N``), inline (``parallel=1``), or round-robin stage-stepped
in-process (``parallel="interleave"``, the fallback for platforms without
fork/spawn headroom) — and the merge functions reassemble the S
:class:`~repro.parallel.executor.ShardOutcome` streams into exactly the
result object the serial scenario path would have produced:

* operation records are replayed through one parent-side
  :class:`~repro.checkers.stream.ObservationStream` (plus the family's
  online checkers) **in the serial completion order** — batch by batch,
  shard-index blocks within a batch, mirroring the pipelined drain — so
  the ``history_digest``, counters and checker verdicts are equal by
  construction, not merely equivalent;
* when a shard's event budget exhausted mid-batch, the merge reconstructs
  the serial run's stopping point from the per-stage counter snapshots:
  the serial drain visits shards in index order, so shards before the
  first failing shard are fully drained, the failing shard stops at its
  exception, and later shards are left enqueued-but-undrained.

The equality is hard-asserted by ``tests/test_parallel_sim.py`` (always)
and ``benchmarks/test_bench_parallel_sim.py`` (with the wall-clock
speedup gate under ``REPRO_PERF_GATE``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..checkers.history import History
from ..checkers.online import OnlineTauTracker, StreamingLinearizer
from ..checkers.stream import ObservationStream
from ..kvstore.sharding import HashRing
from .executor import ShardExecutor, ShardOutcome, execute_shard_plan
from .plan import ShardPlan, kv_shard_plans, soak_shard_plans

#: the ``parallel`` scenario parameter: worker count or the in-process
#: round-robin fallback.
ParallelMode = Union[int, str]


def normalize_parallel(parallel: Optional[ParallelMode]) -> ParallelMode:
    """Validate a scenario's ``parallel`` parameter; returns the mode.

    ``None``/``1`` mean inline sequential execution (the serial-order
    reference the pool is compared against), ``"interleave"`` the
    same-process round-robin, any larger int a worker-process count.
    """
    if parallel is None:
        return 1
    if parallel == "interleave":
        return "interleave"
    if isinstance(parallel, bool) or not isinstance(parallel, int):
        raise ValueError(
            f"parallel must be a positive worker count or 'interleave', "
            f"got {parallel!r}")
    if parallel < 1:
        raise ValueError(f"parallel worker count must be >= 1, "
                         f"got {parallel}")
    return parallel


class ParallelScenarioRunner:
    """Execute shard plans and collect their outcomes, in plan order."""

    def __init__(self, plans: Sequence[ShardPlan],
                 parallel: Optional[ParallelMode] = 1):
        self.plans = list(plans)
        self.parallel = normalize_parallel(parallel)

    def run(self) -> List[ShardOutcome]:
        plans = self.plans
        if self.parallel == "interleave":
            # round-robin: every shard advances one stage per sweep, so
            # S event loops interleave on one core without any pool.
            executors = [ShardExecutor(plan) for plan in plans]
            live = list(executors)
            while live:
                live = [executor for executor in live if executor.advance()]
            return [executor.outcome for executor in executors]
        workers = int(self.parallel)
        if workers <= 1 or len(plans) <= 1:
            return [execute_shard_plan(plan) for plan in plans]
        with ProcessPoolExecutor(
                max_workers=min(workers, len(plans))) as pool:
            return list(pool.map(execute_shard_plan, plans))


# ----------------------------------------------------------------------
# kv: merge S worker streams into one KVScenarioResult
# ----------------------------------------------------------------------
class _MergedStoreStats:
    """Duck-typed stand-in for ``ShardedKVStore`` in a merged result:
    aggregate counters plus ring placement, with no live clusters."""

    def __init__(self, ring: HashRing, messages_sent: int,
                 events_processed: int, now: float):
        self.ring = ring
        self.messages_sent = messages_sent
        self.events_processed = events_processed
        self.now = now

    @property
    def shard_count(self) -> int:
        return self.ring.shard_count

    def shard_for(self, key: str) -> int:
        return self.ring.shard_for(key)


def run_parallel_kv(parallel: Optional[ParallelMode], shard_count: int,
                    n: int, t: int, seed: int, client_count: int,
                    num_keys: int, rounds: int, byzantine_count: int,
                    byzantine_strategy: str, corruption_times,
                    corruption_fraction, fault_timelines, trace_backend,
                    enforce_resilience: bool, max_events: int,
                    vnodes: int = 64):
    """The kv family's shard-parallel execution path."""
    plans, keys, ring = kv_shard_plans(
        shard_count=shard_count, n=n, t=t, seed=seed,
        client_count=client_count, num_keys=num_keys, rounds=rounds,
        byzantine_count=byzantine_count,
        byzantine_strategy=byzantine_strategy,
        corruption_times=corruption_times,
        corruption_fraction=corruption_fraction,
        fault_timelines=fault_timelines, trace_backend=trace_backend,
        enforce_resilience=enforce_resilience, max_events=max_events,
        vnodes=vnodes)
    outcomes = ParallelScenarioRunner(plans, parallel).run()
    return merge_kv_outcomes(outcomes, keys, ring)


def merge_kv_outcomes(outcomes: Sequence[ShardOutcome], keys: List[str],
                      ring: HashRing):
    """Reassemble worker outcomes into the serial ``KVScenarioResult``."""
    from ..workloads.scenarios import KVScenarioResult

    outcomes = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    stages = list(outcomes[0].stages)
    shard_count = len(outcomes)

    # the serial cut: the first stage (stage order) any shard failed in,
    # and within it the lowest failing shard — the serial drain visits
    # shards in index order, so that is where the serial run stopped.
    cut_stage: Optional[str] = None
    cut_shard = shard_count
    for stage in stages:
        failed = [outcome.shard_index for outcome in outcomes
                  if outcome.status.get(stage) == "failed"]
        if failed:
            cut_stage, cut_shard = stage, min(failed)
            break

    linearizer = StreamingLinearizer()
    stream = ObservationStream(checkers=[linearizer], keep_history=True)

    def replay(stage: str) -> bool:
        """Feed one batch's records in serial completion order."""
        for outcome in outcomes:
            if stage == cut_stage and outcome.shard_index > cut_shard:
                break               # serial never drained these shards
            for op in outcome.records.get(stage, ()):
                stream.observe(op)
        return stage != cut_stage

    completed = replay("create")
    if completed:
        linearizer.settle()

    faults_ran = "faults" in stages
    if completed and faults_ran:
        tau_by_shard = [outcome.tau_local for outcome in outcomes]
        corruptions = sum(outcome.corruptions for outcome in outcomes)
    else:
        tau_by_shard = [0.0] * shard_count
        corruptions = 0
    for key in keys:
        linearizer.seal(f"kv/{key}", tau_by_shard[ring.shard_for(key)])

    if completed:
        for stage in stages:
            if stage in ("create", "faults"):
                continue
            completed = replay(stage)
            if not completed:
                break
            linearizer.settle()
    stream.close()

    def serial_counters(outcome: ShardOutcome):
        """This shard's counters at the serial run's stopping point."""
        if cut_stage is None:
            return outcome.post_counters[stages[-1]]
        if outcome.shard_index <= cut_shard:
            return outcome.post_counters[cut_stage]
        return outcome.pre_counters[cut_stage]

    counters = [serial_counters(outcome) for outcome in outcomes]
    stats = _MergedStoreStats(
        ring,
        messages_sent=sum(counter[0] for counter in counters),
        events_processed=sum(counter[1] for counter in counters),
        now=max(counter[2] for counter in counters))
    per_key = {key: bool(linearizer.ok(f"kv/{key}")) for key in keys}
    return KVScenarioResult(
        store=stats, history=stream.history, completed=completed,
        tau_no_tr=max(tau_by_shard), tau_by_shard=tau_by_shard,
        per_key_linearizable=per_key, stream=stream,
        extra={"corruptions": corruptions, "pipeline": None, "keys": keys,
               "linearizer": linearizer, "outcomes": list(outcomes)})


# ----------------------------------------------------------------------
# soak: merge S sub-soaks into one scenario-result-shaped record
# ----------------------------------------------------------------------
class _AggregateInversions:
    def __init__(self, trackers: Sequence[OnlineTauTracker]):
        self._trackers = list(trackers)

    def pairs_after(self, after: float) -> int:
        return sum(tracker.inversions.pairs_after(after)
                   for tracker in self._trackers)


class _AggregateTracker:
    """Duck-typed tracker over per-shard trackers (``exact`` and the
    inversion counter are what the runner adapter reads)."""

    def __init__(self, trackers: Sequence[OnlineTauTracker]):
        self.trackers = list(trackers)
        self.inversions = _AggregateInversions(self.trackers)

    @property
    def exact(self) -> bool:
        return all(tracker.exact for tracker in self.trackers)

    def report(self, tau_no_tr: float):
        if len(self.trackers) == 1:
            return self.trackers[0].report(tau_no_tr)
        return None


@dataclass
class MergedScenarioResult:
    """Scenario-result-shaped view over merged shard outcomes.

    Duck-types the surface consumers read off a soak
    :class:`~repro.workloads.scenarios.ScenarioResult`: ``summarize()``,
    ``inversions_after``, ``stream_report``, ``extra["tracker"]`` and the
    stream/history pair.  Aggregation rules: verdict fields are
    all-shards conjunctions, τ instants maxima, count fields sums — the
    identity mapping when ``shards == 1``, which is what the equality
    tests pin against the legacy single-cluster path.
    """

    completed: bool
    tau_no_tr: float
    stream: ObservationStream
    history: Optional[History]
    summary: Any
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def messages_sent(self) -> int:
        return self.summary.messages_sent

    def summarize(self):
        return self.summary

    def inversions_after(self, after: float) -> Optional[int]:
        tracker = self.extra.get("tracker")
        if tracker is None:
            return None
        return tracker.inversions.pairs_after(after)

    def stream_report(self, tau_no_tr: float):
        tracker = self.extra.get("tracker")
        if tracker is None:
            return None
        return tracker.report(tau_no_tr)


def run_parallel_soak(shards: int, parallel: Optional[ParallelMode],
                      seed: int, params: Dict[str, Any]
                      ) -> MergedScenarioResult:
    """The soak family's shard-parallel execution path.

    ``shards`` independent sub-soaks (hash-derived seeds for
    ``shards > 1``, the scenario seed untouched for ``shards == 1``) run
    to completion; per-shard τ-trackers are rebuilt parent-side from the
    record streams, so verdicts equal an in-process run of the same
    shard operation-for-operation.
    """
    plans = soak_shard_plans(shards, seed, params)
    outcomes = ParallelScenarioRunner(plans, parallel).run()
    return merge_soak_outcomes(outcomes, params)


def merge_soak_outcomes(outcomes: Sequence[ShardOutcome],
                        params: Dict[str, Any]) -> MergedScenarioResult:
    from ..workloads.scenarios import ScenarioSummary

    outcomes = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    mode = "atomic" if params.get("kind") == "atomic" else "regular"
    stream = ObservationStream(keep_history=params.get("keep_history",
                                                       False))
    trackers: List[OnlineTauTracker] = []
    reports: List[Any] = []
    for outcome in outcomes:
        tracker = OnlineTauTracker(
            mode=mode, initial=params["initial"],
            write_window=params["write_window"],
            read_window=params["read_window"],
            max_records=params["max_records"],
            candidate_cap=params["candidate_cap"],
            tau_hint=outcome.tau_local)
        reads = 0
        for op in outcome.records["run"]:
            stream.observe(op)
            tracker.observe(op)
            if op.kind == "read":
                reads += 1
        tracker.finish()
        trackers.append(tracker)
        reports.append(tracker.report(outcome.tau_local)
                       if outcome.completed and reads else None)
    stream.close()

    completed = all(outcome.completed for outcome in outcomes)
    tau_no_tr = max(outcome.tau_local for outcome in outcomes)
    finals = [outcome.post_counters["run"] for outcome in outcomes]
    if any(report is None for report in reports):
        stable = tau_1w = tau_stab = stabilization_time = None
        dirty_reads = total_reads = None
    else:
        stable = all(report.stable for report in reports)
        tau_1w = max(report.tau_1w for report in reports)
        tau_stab = max(report.tau_stab for report in reports)
        stabilization_time = max(report.stabilization_time
                                 for report in reports)
        dirty_reads = sum(report.dirty_reads for report in reports)
        total_reads = sum(report.total_reads for report in reports)
    summary = ScenarioSummary(
        completed=completed, tau_no_tr=tau_no_tr, ops=stream.ops,
        writes=stream.writes, reads=stream.reads,
        messages_sent=sum(counter[0] for counter in finals),
        events_processed=sum(counter[1] for counter in finals),
        sim_end=max(counter[2] for counter in finals),
        corruptions=sum(outcome.corruptions for outcome in outcomes),
        history_digest=stream.digest(), stable=stable, tau_1w=tau_1w,
        tau_stab=tau_stab, stabilization_time=stabilization_time,
        dirty_reads=dirty_reads, total_reads=total_reads)
    return MergedScenarioResult(
        completed=completed, tau_no_tr=tau_no_tr, stream=stream,
        history=stream.history, summary=summary,
        extra={"tracker": _AggregateTracker(trackers),
               "trackers": trackers, "reports": reports,
               "outcomes": list(outcomes)})
