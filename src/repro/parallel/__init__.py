"""Shard-parallel execution of a *single* simulation.

The scenario families whose work decomposes into independent shards
(``kv``: consistent-hashed server pools; ``soak``: independent
sub-soaks) can run each shard's event loop in its own worker process and
merge the observation streams afterwards — with the merged
``history_digest``, checker verdicts and ``summarize()`` output equal to
the serial run's, by construction and by hard assertion
(``tests/test_parallel_sim.py``, ``benchmarks/test_bench_parallel_sim
.py``).

Layering:

* :mod:`~repro.parallel.plan` — :class:`ShardPlan`, the picklable unit
  of work (topology, hash-derived seed, fault timeline, shard-local op
  schedule slice);
* :mod:`~repro.parallel.executor` — :class:`ShardExecutor` /
  :func:`execute_shard_plan`, one shard's sub-simulation run to
  completion in a worker, shipping back compact
  :class:`ShardOutcome` records;
* :mod:`~repro.parallel.runner` — :class:`ParallelScenarioRunner`
  (process pool / inline / ``"interleave"`` round-robin dispatch) plus
  the family-specific merges.

Entry point for users: ``run_scenario("kv", ..., parallel=4)`` or
``run_scenario("soak", ..., shards=4, parallel=4)`` — see
``docs/ARCHITECTURE.md`` ("parallel — shard-parallel execution").
"""

from .executor import ShardExecutor, ShardOutcome, execute_shard_plan
from .plan import ShardPlan, kv_shard_plans, soak_shard_plans
from .runner import (MergedScenarioResult, ParallelScenarioRunner,
                     merge_kv_outcomes, merge_soak_outcomes,
                     normalize_parallel, run_parallel_kv,
                     run_parallel_soak)

__all__ = [
    "MergedScenarioResult", "ParallelScenarioRunner", "ShardExecutor",
    "ShardOutcome", "ShardPlan", "execute_shard_plan", "kv_shard_plans",
    "merge_kv_outcomes", "merge_soak_outcomes", "normalize_parallel",
    "run_parallel_kv", "run_parallel_soak", "soak_shard_plans",
]
