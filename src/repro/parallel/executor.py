"""Shard executors: run one shard's event loop to completion.

A :class:`ShardExecutor` consumes one :class:`~repro.parallel.plan
.ShardPlan` and replays that shard's sub-simulation — the same cluster
construction, operation issue order, fault anchoring and event budgets as
the serial scenario path, restricted to one shard.  Because shards share
no scheduler, network, RNG or fault envelope, the restriction is exact:
the worker's cluster evolves byte-identically to the corresponding shard
of the serial run.

What comes back is a :class:`ShardOutcome` — compact, picklable: the
completion-ordered :class:`~repro.checkers.history.Operation` records of
every stage, per-stage counter snapshots (taken both after enqueue and
after the drain, so the merge step can reconstruct the serial run's exact
stopping point when a budget exhausts mid-batch), the shard's τ and
corruption count from the fault phase, and per-stage success flags.

``execute_shard_plan`` is the module-level worker entry point
(``ProcessPoolExecutor.map``-able under fork *and* spawn);
:meth:`ShardExecutor.advance` exposes the same execution one stage at a
time for the in-process round-robin fallback (``parallel="interleave"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..checkers.history import Operation, operation_from_handle
from ..faults.transient import TransientFaultInjector
from ..kvstore.pipeline import Pipeline
from ..kvstore.store import StabilizingKVStore
from ..registers.system import Cluster, ClusterConfig
from ..sim.errors import SimulationLimitReached
from .plan import ShardPlan, timeline_from_plan

#: (messages_sent, events_processed, now) — a shard counter snapshot.
Counters = Tuple[int, int, float]


@dataclass
class ShardOutcome:
    """Everything a worker ships back about one shard's execution."""

    shard_index: int
    family: str
    stages: Tuple[str, ...]
    #: stage -> "ok" | "failed" | "skipped" (after this shard's failure).
    status: Dict[str, str] = field(default_factory=dict)
    #: stage -> completion-ordered operation records (partial when the
    #: stage failed mid-drain — exactly the completions the serial run
    #: would have observed before the budget exhausted).
    records: Dict[str, List[Operation]] = field(default_factory=dict)
    #: stage -> counters after enqueue, before the drain: the state the
    #: serial run leaves this shard in when an *earlier* shard's drain
    #: fails the batch first.
    pre_counters: Dict[str, Counters] = field(default_factory=dict)
    #: stage -> counters after the drain (or at the budget exception).
    post_counters: Dict[str, Counters] = field(default_factory=dict)
    tau_local: float = 0.0
    corruptions: int = 0
    completed: bool = True

    def first_failed_stage(self) -> Optional[str]:
        for stage in self.stages:
            if self.status.get(stage) == "failed":
                return stage
        return None


class _Recorder:
    """An :class:`~repro.checkers.online.OnlineChecker`-shaped tap that
    collects operations in completion order (the soak worker's stream
    observer)."""

    def __init__(self):
        self.ops: List[Operation] = []

    def observe(self, op: Operation) -> None:
        self.ops.append(op)

    def finish(self) -> None:
        pass


class ShardExecutor:
    """Stage-stepped execution of one :class:`ShardPlan`.

    ``run()`` drives every stage (the worker-process entry);
    ``advance()`` runs exactly one stage and returns whether more remain
    (the interleave fallback round-robins this across shards).
    """

    def __init__(self, plan: ShardPlan):
        self.plan = plan
        self.outcome = ShardOutcome(shard_index=plan.shard_index,
                                    family=plan.family,
                                    stages=tuple(plan.stage_names()))
        self._next_stage = 0
        self._failed = False
        self._ready = False
        # lazily-built simulation state (per family)
        self._cluster: Optional[Cluster] = None
        self._store: Optional[StabilizingKVStore] = None
        self._pipe: Optional[Pipeline] = None
        self._injector: Optional[TransientFaultInjector] = None
        self._stage_records: List[Operation] = []
        self._batch_cursor = 0

    # -- shared plumbing ---------------------------------------------------
    def _counters(self) -> Counters:
        cluster = self._cluster
        return (cluster.network.messages_sent,
                cluster.scheduler.events_processed,
                cluster.scheduler.now)

    def _observe(self, handle) -> None:
        op = operation_from_handle(handle)
        if op is not None:
            self._stage_records.append(op)

    def _setup_kv(self) -> None:
        plan = self.plan
        params = plan.params
        # the exact construction ShardedKVStore performs for this shard
        # index, minus the S-1 sibling pools.
        self._cluster = Cluster(ClusterConfig(
            n=params["n"], t=params["t"], seed=plan.seed,
            trace_backend=params["trace_backend"],
            enforce_resilience=params["enforce_resilience"]))
        self._store = StabilizingKVStore(self._cluster,
                                         client_count=params["client_count"])
        from ..workloads.scenarios import _install_byzantine
        _install_byzantine(self._cluster, None, params["byzantine_count"],
                           params["byzantine_strategy"])
        self._pipe = Pipeline(self._store, on_complete=self._observe)
        self._ready = True

    # -- kv stages ---------------------------------------------------------
    def _run_kv_batch(self, stage: str) -> bool:
        plan, outcome = self.plan, self.outcome
        ops = plan.op_batches[self._batch_cursor]
        self._batch_cursor += 1
        records: List[Operation] = []
        self._stage_records = records
        outcome.records[stage] = records
        pipe = self._pipe
        try:
            for kind, client, key, value in ops:
                if kind == "put":
                    pipe.put(client, key, value)
                else:
                    pipe.get(client, key)
            # serial equivalence point: when an earlier shard's drain
            # fails this batch, the serial run leaves this shard enqueued
            # but undrained — snapshot that state before flushing.
            outcome.pre_counters[stage] = self._counters()
            pipe.flush(max_events=plan.params["max_events"])
        except SimulationLimitReached:
            pipe.issued.clear()
            outcome.post_counters[stage] = self._counters()
            return False
        outcome.post_counters[stage] = self._counters()
        return True

    def _run_kv_faults(self) -> bool:
        plan, outcome = self.plan, self.outcome
        cluster = self._cluster
        injector = TransientFaultInjector.for_cluster(cluster)
        self._injector = injector
        anchor = cluster.scheduler.now
        tau_local = anchor
        for time, fraction in zip(plan.params["corruption_times"],
                                  plan.params["corruption_fractions"]):
            injector.at(anchor + time,
                        lambda cluster=cluster, fraction=fraction,
                        injector=injector: injector.corrupt_all(
                            cluster.servers, fraction))
            tau_local = max(tau_local, anchor + time)
        timeline = timeline_from_plan(plan)
        if timeline is not None:
            installed = timeline.shifted(anchor)
            installed.install(cluster, injector)
            tau_local = max(tau_local, installed.tau_no_tr)
        outcome.pre_counters["faults"] = self._counters()
        cluster.run(until=tau_local + 1.0)
        outcome.post_counters["faults"] = self._counters()
        outcome.tau_local = tau_local
        outcome.corruptions = injector.corruptions
        return True

    # -- soak stage --------------------------------------------------------
    def _run_soak(self) -> bool:
        from ..workloads.scenarios import _soak_simulation
        recorder = _Recorder()
        outcome = self.outcome
        outcome.pre_counters["run"] = (0, 0, 0.0)
        shard = _soak_simulation(seed=self.plan.seed, engine_mode=None,
                                 extra_checkers=(recorder,),
                                 **self.plan.params)
        self._cluster = shard.cluster
        outcome.records["run"] = recorder.ops
        outcome.post_counters["run"] = self._counters()
        outcome.tau_local = shard.tau_report
        outcome.corruptions = shard.injector.corruptions
        return shard.completed

    # -- driving -----------------------------------------------------------
    def advance(self) -> bool:
        """Run the next stage; returns ``True`` while stages remain."""
        if self._next_stage >= len(self.outcome.stages):
            return False
        stage = self.outcome.stages[self._next_stage]
        self._next_stage += 1
        if self._failed:
            self.outcome.status[stage] = "skipped"
        else:
            if not self._ready and self.plan.family == "kv":
                self._setup_kv()
            if self.plan.family == "soak":
                ok = self._run_soak()
            elif stage == "faults":
                ok = self._run_kv_faults()
            else:
                ok = self._run_kv_batch(stage)
            self.outcome.status[stage] = "ok" if ok else "failed"
            if not ok:
                self._failed = True
                self.outcome.completed = False
        return self._next_stage < len(self.outcome.stages)

    def run(self) -> ShardOutcome:
        """Run every stage to completion and return the outcome."""
        while self.advance():
            pass
        return self.outcome


def execute_shard_plan(plan: ShardPlan) -> ShardOutcome:
    """Worker-process entry point: one plan in, one outcome out."""
    return ShardExecutor(plan).run()
