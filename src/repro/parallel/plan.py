"""Shard plans: the picklable unit of work of the parallel engine.

A :class:`ShardPlan` is everything one worker process needs to replay a
single shard of a scenario — topology knobs, the shard's hash-derived
seed, its (already re-anchorable) fault timeline, and the shard-local
slice of the concrete operation schedule.  Plans are built **once**, in
the parent, from the same primitives the serial path uses
(:class:`~repro.kvstore.sharding.HashRing` placement via
:func:`~repro.kvstore.sharding.partition_ops`,
:func:`~repro.kvstore.sharding.derive_shard_seed` seeds, the shared
:class:`~repro.workloads.generators.ValueStream` draw order), which is
what makes the parallel execution *serial-equivalent*: a worker's
sub-simulation is byte-identical to the corresponding shard of the serial
run, because both are the same deterministic function of the same plan.

Plans hold plain data only (strings, numbers, tuples, dicts) so they
pickle under any multiprocessing start method, including ``spawn``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..faults.schedule import FaultTimeline
from ..kvstore.sharding import HashRing, derive_shard_seed, partition_ops
from ..workloads.generators import ValueStream

#: one concrete KV operation: ``(kind, client, key, value-or-None)``.
KVOp = Tuple[str, str, str, Optional[Any]]


@dataclass(frozen=True)
class ShardPlan:
    """One shard's complete, self-contained work description.

    * ``family`` — ``"kv"`` or ``"soak"`` (the shard-structured families);
    * ``seed`` — the shard's simulation seed, already hash-derived from
      the scenario seed (``derive_shard_seed``), never the raw seed;
    * ``params`` — plain-data keyword arguments of the family's per-shard
      execution (topology, budgets, fault knobs);
    * ``op_batches`` — for ``kv``: the shard-local slice of each global
      batch (create, then put/get per round), with values pre-drawn in
      global enumeration order;
    * ``run_faults`` / ``timeline`` — for ``kv``: whether the global
      fault phase executes, and this shard's declarative timeline (dict
      form, times relative to the shard clock — the executor re-anchors
      it to the shard's post-create instant, exactly as
      ``ShardedKVStore.install_timeline(..., anchor=now)`` would).
    """

    family: str
    shard_index: int
    shard_count: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    op_batches: Tuple[Tuple[KVOp, ...], ...] = ()
    run_faults: bool = False
    timeline: Optional[Dict[str, Any]] = None

    def stage_names(self) -> List[str]:
        """The ordered stage vocabulary this plan's executor steps through.

        Stages are the cross-shard synchronization points of the serial
        run (batch barriers); the merge logic aligns worker outcomes on
        them.  Every shard of one scenario shares the same list.
        """
        if self.family == "soak":
            return ["run"]
        stages = ["create"]
        if self.run_faults:
            stages.append("faults")
        for round_index in range(int(self.params.get("rounds", 1))):
            stages.append(f"put{round_index}")
            stages.append(f"get{round_index}")
        return stages


def kv_op_batches(num_keys: int, rounds: int, clients: List[str]
                  ) -> Tuple[List[str], List[List[KVOp]]]:
    """The kv family's global batch schedule, values pre-drawn in order.

    Mirrors ``_run_kv_scenario`` exactly: a create batch (round-robin
    clients), then per round a put batch and a get batch with the same
    client rotation.  ``ValueStream`` is a pure counter, so drawing every
    value eagerly here yields the same values the serial path draws
    lazily — for every operation that actually executes.
    """
    keys = [f"k{index}" for index in range(num_keys)]
    values = ValueStream()
    batches: List[List[KVOp]] = [
        [("put", clients[index % len(clients)], key, values.next())
         for index, key in enumerate(keys)]]
    for round_index in range(rounds):
        batches.append(
            [("put", clients[(round_index + index) % len(clients)], key,
              values.next())
             for index, key in enumerate(keys)])
        batches.append(
            [("get", clients[(round_index + index + 1) % len(clients)], key,
              None)
             for index, key in enumerate(keys)])
    return keys, batches


def kv_shard_plans(shard_count: int, n: int, t: int, seed: int,
                   client_count: int, num_keys: int, rounds: int,
                   byzantine_count: int, byzantine_strategy: str,
                   corruption_times, corruption_fraction,
                   fault_timelines, trace_backend, enforce_resilience: bool,
                   max_events: int, vnodes: int = 64
                   ) -> Tuple[List[ShardPlan], List[str], HashRing]:
    """Slice one kv scenario into per-shard plans.

    Returns ``(plans, keys, ring)`` — the ring is the same placement the
    serial ``ShardedKVStore`` builds (``vnodes`` included, so ring
    density cannot drift between the serial and parallel paths), so the
    merge step can seal each key against its own shard's τ.
    """
    from ..workloads.scenarios import _as_timeline, _burst_fractions

    ring = HashRing(shard_count, vnodes=vnodes)
    clients = [f"c{index + 1}" for index in range(client_count)]
    keys, batches = kv_op_batches(num_keys, rounds, clients)
    slices = [partition_ops(batch, lambda op: ring.shard_for(op[2]))
              for batch in batches]

    times = [float(time) for time in corruption_times]
    fractions = _burst_fractions(times, corruption_fraction)
    timelines = {int(shard): _as_timeline(timeline).to_dict()
                 for shard, timeline in (fault_timelines or {}).items()}
    out_of_range = sorted(shard for shard in timelines
                          if not 0 <= shard < shard_count)
    if out_of_range:
        raise ValueError(
            f"fault_timelines reference shards {out_of_range} but the "
            f"store has {shard_count} shard(s); a silently dropped "
            "timeline would fake a fault-free verdict")
    run_faults = bool(times or timelines)

    params = {
        "n": n, "t": t, "client_count": client_count,
        "byzantine_count": byzantine_count,
        "byzantine_strategy": byzantine_strategy,
        "corruption_times": tuple(times),
        "corruption_fractions": tuple(fractions),
        "trace_backend": trace_backend,
        "enforce_resilience": enforce_resilience,
        "max_events": max_events, "rounds": rounds,
    }
    return [ShardPlan(
        family="kv", shard_index=shard, shard_count=shard_count,
        seed=derive_shard_seed(seed, shard), params=dict(params),
        op_batches=tuple(tuple(batch.get(shard, []))
                         for batch in slices),
        run_faults=run_faults,
        timeline=timelines.get(shard),
    ) for shard in range(shard_count)], keys, ring


def soak_shard_plans(shards: int, seed: int,
                     params: Dict[str, Any]) -> List[ShardPlan]:
    """Slice a soak scenario into ``shards`` independent sub-soaks.

    A single shard keeps the scenario seed untouched (``shards=1`` must
    be indistinguishable from the legacy single-cluster run); multiple
    shards derive per-shard seeds the same way the sharded KV store does.
    """
    seeds = ([seed] if shards == 1 else
             [derive_shard_seed(seed, index) for index in range(shards)])
    return [ShardPlan(family="soak", shard_index=index, shard_count=shards,
                      seed=shard_seed, params=dict(params))
            for index, shard_seed in enumerate(seeds)]


def timeline_from_plan(plan: ShardPlan) -> Optional[FaultTimeline]:
    """The plan's declarative timeline, deserialized (``None`` if absent)."""
    if plan.timeline is None:
        return None
    return FaultTimeline.from_dict(plan.timeline)
