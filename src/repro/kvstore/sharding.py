"""Key placement: a consistent-hash ring plus hash-derived shard seeds.

Both primitives follow the determinism discipline PR 1 established for
the sweep runner (``repro.runner.spec.derive_seed``): placement and seeds
are pure functions of their inputs, computed with ``hashlib`` — never
``hash()``, whose per-process randomization would scatter keys (and
executions) across runs.

* :class:`HashRing` — classic consistent hashing: every shard owns
  ``vnodes`` points on a 64-bit ring; a key lands on the first point at
  or after its own hash.  Growing the ring from ``S`` to ``S + 1`` shards
  moves only ~``1/(S+1)`` of the keys (see
  ``tests/test_kvstore_sharded.py::TestHashRing``), which is the property
  that makes resharding a production store incremental rather than a full
  reshuffle.
* :func:`derive_shard_seed` — per-shard simulation seeds, hash-derived
  from the store seed and the shard index so independent shards never
  share a random stream (two pools with the same seed would produce
  eerily correlated "independent" failures).

Since PR 8 the ring is **mutable**: vnode *slots* keep their coordinate
forever (a slot's point is hashed from the ``(origin shard, vnode)``
pair that allocated it), while slot *ownership* is reassigned by
:meth:`HashRing.add_shard` / :meth:`HashRing.split_shard` /
:meth:`HashRing.merge_shards` / :meth:`HashRing.migrate_vnodes`.  Only
keys on reassigned slots change placement, which is what makes live
resharding (``repro.kvstore.rebalance``) incremental:

>>> ring = HashRing(4)
>>> ring.shard_for("user:alice") == ring.shard_for("user:alice")
True
>>> sorted({ring.shard_for(f"k{i}") for i in range(64)})
[0, 1, 2, 3]
>>> before = {f"k{i}": ring.shard_for(f"k{i}") for i in range(64)}
>>> new = ring.split_shard(0)
>>> moved = [k for k, s in before.items() if ring.shard_for(k) != s]
>>> all(before[key] == 0 for key in moved)  # only the split shard moves
True
>>> ring.merge_shards(new, into=0)          # round-trips the point table
>>> all(ring.shard_for(k) == s for k, s in before.items())
True
>>> derive_shard_seed(0, 0) != derive_shard_seed(0, 1)
True
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import (Callable, Dict, Iterable, List, Optional, Tuple,
                    TypeVar)

_T = TypeVar("_T")

#: ring salt: namespaces the key hash so a key's ring position is not the
#: same value as any other sha256 use of the key elsewhere in the library.
_RING_SALT = "repro.kvstore.ring"


def _point(payload: str) -> int:
    """A stable 64-bit ring coordinate for ``payload``."""
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_shard_seed(store_seed: int, shard_index: int) -> int:
    """Deterministic per-shard simulation seed (PR 1's derivation recipe:
    SHA-256 over a canonical JSON payload, first four bytes)."""
    payload = json.dumps(["repro.kvstore.shard-seed", store_seed,
                          shard_index])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class HashRing:
    """Consistent hashing of string keys onto a mutable set of shards.

    Placement state is an ownership map ``(origin, vnode) → owner``: a
    slot's ring coordinate is pinned forever to the ``(origin shard,
    vnode)`` pair that allocated it, so reassigning ownership moves
    exactly the keys whose slots changed hands and nothing else.  Shard
    indices are never recycled — a merged-away shard keeps its index
    (owning zero slots) so handles, pipeline lanes and per-shard seeds
    stay stable across a rebalance.
    """

    def __init__(self, shard_count: int, vnodes: int = 64):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.vnodes = vnodes
        #: ownership map: (origin shard, vnode index) -> owning shard.
        self._owners: Dict[Tuple[int, int], int] = {}
        self._allocated = shard_count
        for shard in range(shard_count):
            for vnode in range(vnodes):
                self._owners[(shard, vnode)] = shard
        self._rebuild()

    def _rebuild(self) -> None:
        points: List[Tuple[int, int]] = []
        for (origin, vnode), owner in self._owners.items():
            points.append((_point(f"{_RING_SALT}/{origin}/{vnode}"),
                           owner))
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def _check_shard(self, shard: int, role: str) -> None:
        if not 0 <= shard < self._allocated:
            raise ValueError(f"{role} shard {shard} out of range "
                             f"(ring has shards 0..{self._allocated - 1})")

    # -- placement ---------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Shard indices allocated so far (retired shards included)."""
        return self._allocated

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``: first ring point at or after its hash
        (wrapping to the lowest point past the top of the ring)."""
        where = bisect.bisect_left(self._points,
                                   _point(f"{_RING_SALT}#{key}"))
        if where == len(self._points):
            where = 0
        return self._shards[where]

    def __len__(self) -> int:
        return self._allocated

    # -- inspection --------------------------------------------------------
    def slots_of(self, shard: int) -> List[Tuple[int, int]]:
        """The ``(origin, vnode)`` slots ``shard`` owns, sorted — the
        deterministic iteration order every mutation below uses."""
        self._check_shard(shard, "queried")
        return sorted(slot for slot, owner in self._owners.items()
                      if owner == shard)

    def vnode_count(self, shard: int) -> int:
        return len(self.slots_of(shard))

    def active_shards(self) -> List[int]:
        """Shards owning at least one slot, sorted."""
        return sorted(set(self._owners.values()))

    def points_table(self) -> Tuple[Tuple[int, int], ...]:
        """The full sorted ``(point, owner)`` table — the ring's entire
        placement state, for equality checks across mutations."""
        return tuple(zip(self._points, self._shards))

    # -- mutation ----------------------------------------------------------
    def add_shard(self, vnodes: Optional[int] = None) -> int:
        """Allocate a new shard index with its own fresh slots.

        The classic ``S → S + 1`` grow: the new shard's ``vnodes`` slots
        land between existing points, so ~``1/(S+1)`` of the keys move —
        all of them *to* the new shard.  Returns the new index.
        """
        vnodes = self.vnodes if vnodes is None else vnodes
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        shard = self._allocated
        self._allocated += 1
        for vnode in range(vnodes):
            self._owners[(shard, vnode)] = shard
        self._rebuild()
        return shard

    def split_shard(self, shard: int) -> int:
        """Split ``shard`` in two: a new shard takes every other one of
        its slots (odd positions in sorted slot order), so ~half of the
        split shard's keys — and nobody else's — move.  Returns the new
        shard's index.
        """
        slots = self.slots_of(shard)
        if len(slots) < 2:
            raise ValueError(f"shard {shard} owns {len(slots)} slot(s); "
                             "need at least 2 to split")
        new = self._allocated
        self._allocated += 1
        for index, slot in enumerate(slots):
            if index % 2 == 1:
                self._owners[slot] = new
        self._rebuild()
        return new

    def merge_shards(self, source: int, into: int) -> None:
        """Retire ``source`` by handing all its slots to ``into``.

        ``split_shard`` then ``merge_shards(new, into=old)`` restores the
        identical :meth:`points_table` — the round-trip property
        ``tests/test_kvstore_sharded.py::TestHashRing`` pins.
        """
        self._check_shard(source, "source")
        self._check_shard(into, "destination")
        if source == into:
            raise ValueError("cannot merge a shard into itself")
        slots = self.slots_of(source)
        if not slots:
            raise ValueError(f"shard {source} owns no slots (already "
                             "retired)")
        for slot in slots:
            self._owners[slot] = into
        self._rebuild()

    def migrate_vnodes(self, source: int, dest: int, count: int) -> None:
        """Move ``count`` slots from ``source`` to ``dest`` — the
        fine-grained rebalance (first ``count`` slots in sorted order,
        so the move is a pure function of the ring state)."""
        self._check_shard(source, "source")
        self._check_shard(dest, "destination")
        if source == dest:
            raise ValueError("cannot migrate vnodes onto their own shard")
        slots = self.slots_of(source)
        if not 1 <= count <= len(slots):
            raise ValueError(f"cannot migrate {count} vnode(s): shard "
                             f"{source} owns {len(slots)}")
        for slot in slots[:count]:
            self._owners[slot] = dest
        self._rebuild()


def partition_ops(items: Iterable[_T],
                  shard_of: Callable[[_T], int]) -> Dict[int, List[_T]]:
    """Group ``items`` by shard, preserving order within each shard.

    The one key→shard partitioning routine every execution path shares —
    ``ShardedKVStore.run_ops``, the pipelined drain, and the parallel
    engine's ``ShardPlan`` slicing all route through here, so the serial
    and parallel notions of "which shard owns this operation" cannot
    drift apart.
    """
    by_shard: Dict[int, List[_T]] = {}
    for item in items:
        by_shard.setdefault(shard_of(item), []).append(item)
    return by_shard


def shard_router(store) -> Callable[[str], int]:
    """Key→shard routing function for ``store``.

    A sharded store routes through its ring; a single-pool store is one
    shard, so everything maps to index 0.  (The pipeline and the parallel
    planner both use this, keeping the "single pool behaves as one shard"
    convention in exactly one place.)
    """
    if getattr(store, "group", None) is not None:
        return store.shard_for
    return lambda key: 0
