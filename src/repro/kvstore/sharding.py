"""Key placement: a consistent-hash ring plus hash-derived shard seeds.

Both primitives follow the determinism discipline PR 1 established for
the sweep runner (``repro.runner.spec.derive_seed``): placement and seeds
are pure functions of their inputs, computed with ``hashlib`` — never
``hash()``, whose per-process randomization would scatter keys (and
executions) across runs.

* :class:`HashRing` — classic consistent hashing: every shard owns
  ``vnodes`` points on a 64-bit ring; a key lands on the first point at
  or after its own hash.  Growing the ring from ``S`` to ``S + 1`` shards
  moves only ~``1/(S+1)`` of the keys (see
  ``tests/test_kvstore_sharded.py::TestHashRing``), which is the property
  that makes resharding a production store incremental rather than a full
  reshuffle.
* :func:`derive_shard_seed` — per-shard simulation seeds, hash-derived
  from the store seed and the shard index so independent shards never
  share a random stream (two pools with the same seed would produce
  eerily correlated "independent" failures).

>>> ring = HashRing(4)
>>> ring.shard_for("user:alice") == ring.shard_for("user:alice")
True
>>> sorted({ring.shard_for(f"k{i}") for i in range(64)})
[0, 1, 2, 3]
>>> derive_shard_seed(0, 0) != derive_shard_seed(0, 1)
True
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Callable, Dict, Iterable, List, Tuple, TypeVar

_T = TypeVar("_T")

#: ring salt: namespaces the key hash so a key's ring position is not the
#: same value as any other sha256 use of the key elsewhere in the library.
_RING_SALT = "repro.kvstore.ring"


def _point(payload: str) -> int:
    """A stable 64-bit ring coordinate for ``payload``."""
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_shard_seed(store_seed: int, shard_index: int) -> int:
    """Deterministic per-shard simulation seed (PR 1's derivation recipe:
    SHA-256 over a canonical JSON payload, first four bytes)."""
    payload = json.dumps(["repro.kvstore.shard-seed", store_seed,
                          shard_index])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class HashRing:
    """Consistent hashing of string keys onto ``shard_count`` shards."""

    def __init__(self, shard_count: int, vnodes: int = 64):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.shard_count = shard_count
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(shard_count):
            for vnode in range(vnodes):
                points.append((_point(f"{_RING_SALT}/{shard}/{vnode}"),
                               shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``: first ring point at or after its hash
        (wrapping to the lowest point past the top of the ring)."""
        where = bisect.bisect_left(self._points,
                                   _point(f"{_RING_SALT}#{key}"))
        if where == len(self._points):
            where = 0
        return self._shards[where]

    def __len__(self) -> int:
        return self.shard_count


def partition_ops(items: Iterable[_T],
                  shard_of: Callable[[_T], int]) -> Dict[int, List[_T]]:
    """Group ``items`` by shard, preserving order within each shard.

    The one key→shard partitioning routine every execution path shares —
    ``ShardedKVStore.run_ops``, the pipelined drain, and the parallel
    engine's ``ShardPlan`` slicing all route through here, so the serial
    and parallel notions of "which shard owns this operation" cannot
    drift apart.
    """
    by_shard: Dict[int, List[_T]] = {}
    for item in items:
        by_shard.setdefault(shard_of(item), []).append(item)
    return by_shard


def shard_router(store) -> Callable[[str], int]:
    """Key→shard routing function for ``store``.

    A sharded store routes through its ring; a single-pool store is one
    shard, so everything maps to index 0.  (The pipeline and the parallel
    planner both use this, keeping the "single pool behaves as one shard"
    convention in exactly one place.)
    """
    if getattr(store, "group", None) is not None:
        return store.shard_for
    return lambda key: 0
