"""Live resharding: ring mutations as safe, checker-visible operations.

A bare :meth:`~repro.kvstore.sharding.HashRing.split_shard` changes key
*placement* but not key *state*: a read routed to the new owner would
see the initial value and the online checkers would (correctly) flag a
linearizability violation.  :class:`Rebalancer` wraps every ring
mutation in the handoff protocol that keeps per-key linearizability
intact while clients keep issuing through the
:class:`~repro.kvstore.pipeline.Pipeline`:

1. **drain** — operations already in flight complete where they were
   routed (ops to a migrating key finish on the *old* owner);
2. **mutate** — the ring reassigns vnode slots (spawning a fresh pool
   first for ``split``/``join``), so every operation enqueued *after*
   this instant routes to the *new* owner;
3. **align** — destination clocks are advanced past every source clock,
   so the handoff is monotone in timestamps across the independent
   shard simulations;
4. **transfer** — each moved key's current value is read on the old
   owner and written on the new one, as *real* quorum operations fed to
   the observation stream: the dual-ownership window is explicit in the
   history, and the :class:`~repro.checkers.stream.StreamingLinearizer`
   verifies the ``kv/{key}`` lane straight across the handoff.

Every rebalance returns a :class:`RebalanceReport` (and appends it to
``Rebalancer.reports``) — the migration epochs the ``reshard`` scenario
family turns into per-epoch τ measurements.

>>> from repro.kvstore.sharded import build_sharded_kv_store
>>> store = build_sharded_kv_store(shard_count=2, seed=7)
>>> store.put_sync("c1", "cat", 1)
>>> rebalancer = Rebalancer(store)
>>> report = rebalancer.split(store.shard_for("cat"))
>>> report.kind, store.shard_count
('reshard_split', 3)
>>> store.get_sync("c2", "cat")     # state survived the handoff
1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Tuple, Union,
                    TYPE_CHECKING)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import TimelineEvent
    from ..sim.process import OperationHandle
    from .pipeline import Pipeline
    from .sharded import ShardedKVStore


def _noop() -> None:
    """Clock-alignment tick: advances a destination cluster's local time
    without doing anything (scheduled at the alignment horizon)."""


#: Rebalance taps: ``tap(report)`` fires after each completed ring
#: mutation (``repro.capture`` records reshard events through this).
_RESHARD_TAPS: List = []


def register_reshard_tap(tap) -> None:
    """Register a rebalance observer (idempotent)."""
    if tap not in _RESHARD_TAPS:
        _RESHARD_TAPS.append(tap)


@dataclass(frozen=True)
class RebalanceReport:
    """What one rebalance did: the migration epoch's facts, JSON-able."""

    kind: str                      #: which mutation ran
    time: float                    #: group clock when the handoff finished
    new_shard: Optional[int]       #: index spawned by split/join, else None
    sources: Tuple[int, ...]       #: shards that lost keys
    dests: Tuple[int, ...]         #: shards that gained keys
    moved_keys: Tuple[str, ...]    #: every key whose placement changed
    transferred: Tuple[str, ...]   #: moved keys that held state to copy

    def to_dict(self) -> Dict[str, Any]:
        return {"dests": list(self.dests), "kind": self.kind,
                "moved_keys": list(self.moved_keys),
                "new_shard": self.new_shard,
                "sources": list(self.sources), "time": self.time,
                "transferred": list(self.transferred)}


class Rebalancer:
    """Applies ring mutations to a live :class:`ShardedKVStore` safely.

    ``pipeline`` (optional) is drained before each mutation so in-flight
    operations land on their original owners; ``observe`` (optional) is
    called with every state-transfer operation handle after it completes
    — pass the observation stream's ``observe_handle`` so the handoff is
    checker-visible.  ``migration_client`` names the store client that
    performs transfers (default: the first logical client) — or a
    callable ``key -> pid``, for workloads whose per-register checkers
    are single-writer (the transfer write then comes from the key's own
    designated writer, keeping every ``kv/{key}`` lane SWSR).
    """

    def __init__(self, store: "ShardedKVStore",
                 pipeline: Optional["Pipeline"] = None,
                 observe: Optional[Callable[["OperationHandle"],
                                            None]] = None,
                 migration_client: Union[str, Callable[[str], str],
                                         None] = None,
                 max_events: int = 2_000_000):
        self.store = store
        self.pipeline = pipeline
        self.observe = observe
        self.migration_client = migration_client or store.client_pids[0]
        self.max_events = max_events
        self.reports: List[RebalanceReport] = []

    # -- the mutation vocabulary -------------------------------------------
    def split(self, shard: int) -> RebalanceReport:
        """Split ``shard``: spawn a fresh pool, hand it every other one
        of the shard's vnode slots, transfer the keys that moved."""
        def mutate() -> int:
            index = self.store.spawn_pool()
            ring_index = self.store.ring.split_shard(shard)
            if ring_index != index:  # pragma: no cover - construction bug
                raise RuntimeError(f"ring allocated shard {ring_index} "
                                   f"but pool index is {index}")
            return index
        return self._rebalance("reshard_split", mutate)

    def join(self, vnodes: Optional[int] = None) -> RebalanceReport:
        """Grow ``S → S + 1``: spawn a pool, give it fresh ring slots
        (~``1/(S+1)`` of the keys move to it), transfer their state."""
        def mutate() -> int:
            index = self.store.spawn_pool()
            ring_index = self.store.ring.add_shard(vnodes)
            if ring_index != index:  # pragma: no cover - construction bug
                raise RuntimeError(f"ring allocated shard {ring_index} "
                                   f"but pool index is {index}")
            return index
        return self._rebalance("join", mutate)

    def merge(self, source: int, into: int,
              kind: str = "reshard_merge") -> RebalanceReport:
        """Hand every slot (and key) of ``source`` to ``into``; the
        source pool stays up but owns nothing and sees no new traffic."""
        def mutate() -> None:
            self.store.ring.merge_shards(source, into)
            return None
        return self._rebalance(kind, mutate)

    def retire(self, shard: int, into: int) -> RebalanceReport:
        """Decommission ``shard`` (a merge, labelled as a retirement)."""
        return self.merge(shard, into, kind="retire")

    def migrate(self, source: int, dest: int,
                count: int = 1) -> RebalanceReport:
        """Move ``count`` vnode slots ``source`` → ``dest`` (fine-grained
        rebalance), transferring the keys that ride along."""
        def mutate() -> None:
            self.store.ring.migrate_vnodes(source, dest, count)
            return None
        return self._rebalance("migrate_vnodes", mutate)

    def apply_event(self, event: "TimelineEvent") -> RebalanceReport:
        """Apply one store-scoped timeline event (the ``reshard_*`` /
        ``migrate_vnodes`` kinds a cluster-scoped install rejects)."""
        kind, args = event.kind, event.args
        if kind == "reshard_split":
            return self.split(int(args["shard"]))
        if kind == "reshard_merge":
            return self.merge(int(args["source"]), int(args["into"]))
        if kind == "migrate_vnodes":
            return self.migrate(int(args["source"]), int(args["dest"]),
                                int(args.get("count", 1)))
        raise ValueError(f"not a store-scoped rebalance event: "
                         f"{kind!r}")

    # -- the handoff protocol ----------------------------------------------
    def _rebalance(self, kind: str,
                   mutate: Callable[[], Optional[int]]) -> RebalanceReport:
        store = self.store
        self._drain_pipeline()
        keys = store.keys
        before = {key: store.shard_for(key) for key in keys}
        new_shard = mutate()
        moved = [key for key in keys if store.shard_for(key) != before[key]]
        transferred = self._transfer(moved, before)
        report = RebalanceReport(
            kind=kind, time=store.now, new_shard=new_shard,
            sources=tuple(sorted({before[key] for key in moved})),
            dests=tuple(sorted({store.shard_for(key) for key in moved})),
            moved_keys=tuple(moved), transferred=tuple(transferred))
        self.reports.append(report)
        for tap in _RESHARD_TAPS:
            tap(report)
        return report

    def _drain_pipeline(self) -> None:
        # every shard, not just the eventual sources: the migration
        # client must be idle wherever the transfer will run, and in
        # sorted order the drain is deterministic.
        if self.pipeline is None:
            return
        for shard in range(self.store.shard_count):
            self.pipeline.drain_shard(shard, max_events=self.max_events)

    def _writer_for(self, key: str) -> str:
        client = self.migration_client
        return client(key) if callable(client) else client

    def _transfer(self, moved: List[str],
                  before: Dict[str, int]) -> List[str]:
        store = self.store
        # reads first, all on old owners (keys never materialized hold
        # no state — the new owner lazily creates them, same as the old
        # one would have)...
        values: List[Tuple[str, Any]] = []
        for key in moved:
            source = before[key]
            if key not in store.stores[source].keys:
                continue
            handle = store.stores[source].get(self._writer_for(key), key)
            handle.meta["shard"] = source
            store.group[source].run_ops([handle],
                                        max_events=self.max_events)
            if self.observe is not None:
                self.observe(handle)
            values.append((key, handle.result))
        # ... then every destination clock is advanced past every source
        # completion, so transfer writes cannot precede the reads they
        # copy ...
        horizon = store.now
        for dest in sorted({store.shard_for(key) for key, _ in values}):
            cluster = store.group[dest]
            if cluster.now < horizon:
                cluster.scheduler.schedule_at(horizon, _noop,
                                              label="rebalance:align")
                cluster.run(until=horizon)
        # ... then the writes land on the new owners.
        transferred: List[str] = []
        for key, value in values:
            dest = store.shard_for(key)
            handle = store.stores[dest].put(self._writer_for(key), key,
                                            value)
            handle.meta["shard"] = dest
            store.group[dest].run_ops([handle],
                                      max_events=self.max_events)
            if self.observe is not None:
                self.observe(handle)
            transferred.append(key)
        return transferred
