"""A Byzantine fault-tolerant, self-stabilizing key-value store.

The downstream-usable facade of the library: one MWMR atomic register per
key (Figure 4), hosted on a *shared* server pool — every server process
holds the per-key automatons, so adding a key costs no new processes.

Keys are created lazily on first use; creation is deterministic (driven by
the first ``put``/``get`` naming the key), so runs stay reproducible.

Clients are named ``c1..cm``:

>>> cluster = Cluster(ClusterConfig(n=9, t=1, seed=3))
>>> store = StabilizingKVStore(cluster, client_count=2)
>>> handle = store.put("c1", "cat", 1)
>>> cluster.run_ops([handle])
>>> handle = store.get("c2", "cat")
>>> cluster.run_ops([handle])
>>> handle.result
1

For the sharded, pipelined deployment shape see
:class:`~repro.kvstore.sharded.ShardedKVStore` and
:class:`~repro.kvstore.pipeline.Pipeline`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..registers.bounded_seq import WsnConfig
from ..registers.epochs import EpochLabeling
from ..registers.mwmr import DEFAULT_SEQ_BOUND, MWMRProcess, MWMRRegister
from ..registers.system import Cluster, ClusterConfig


class StabilizingKVStore:
    """Per-key MWMR registers over one shared cluster.

    ``client_count`` fixes the set of store clients (``c1..cm``); each is
    an MWMR process of every key's register (any client may read and write
    any key).
    """

    def __init__(self, cluster: Cluster, client_count: int = 2,
                 seq_bound: int = DEFAULT_SEQ_BOUND,
                 wsn_config: Optional[WsnConfig] = None,
                 client_prefix: str = "c"):
        if client_count < 1:
            raise ValueError("need at least one client")
        self.cluster = cluster
        self.seq_bound = seq_bound
        self.wsn_config = wsn_config
        self.clients: List[MWMRProcess] = []
        for index in range(client_count):
            process = MWMRProcess(f"{client_prefix}{index + 1}",
                                  cluster.scheduler, cluster.trace)
            cluster.adopt_client(process)
            self.clients.append(process)
        self._registers: Dict[str, MWMRRegister] = {}
        self._labeling = EpochLabeling(k=max(2, client_count))

    # -- register plumbing ---------------------------------------------------
    def _client(self, pid: str) -> MWMRProcess:
        for client in self.clients:
            if client.pid == pid:
                return client
        raise KeyError(f"unknown store client {pid!r}")

    def register_for(self, key: str) -> MWMRRegister:
        """The MWMR register backing ``key`` (created on first use)."""
        register = self._registers.get(key)
        if register is None:
            register = MWMRRegister(
                base_reg_id=f"kv/{key}",
                processes=self.clients,
                servers=self.cluster.servers,
                params=self.cluster.params,
                labeling=self._labeling,
                seq_bound=self.seq_bound,
                wsn_config=self.wsn_config)
            self._registers[key] = register
        return register

    @property
    def keys(self) -> List[str]:
        return sorted(self._registers)

    # -- operations -----------------------------------------------------------
    def put(self, client_pid: str, key: str, value: Any):
        """``mwmr_write(value)`` on ``key``'s register; returns a handle."""
        register = self.register_for(key)
        client = self._client(client_pid)
        # MWMR roles are per (register, process) pair: look ours up on the
        # register, since this client participates in one register per key.
        role = register.roles[self.clients.index(client)]
        handle = client.start_operation(f"put({key})",
                                        role.write_gen(value))
        handle.meta.update(kind="write", value=value, register=f"kv/{key}")
        return handle

    def get(self, client_pid: str, key: str):
        """``mwmr_read()`` on ``key``'s register; returns a handle."""
        register = self.register_for(key)
        client = self._client(client_pid)
        role = register.roles[self.clients.index(client)]
        handle = client.start_operation(f"get({key})", role.read_gen())
        handle.meta.update(kind="read", register=f"kv/{key}")
        return handle

    # -- synchronous convenience (drives the simulation) ----------------------
    def put_sync(self, client_pid: str, key: str, value: Any,
                 max_events: int = 2_000_000) -> None:
        handle = self.put(client_pid, key, value)
        self.cluster.run_ops([handle], max_events=max_events)

    def get_sync(self, client_pid: str, key: str,
                 max_events: int = 2_000_000) -> Any:
        handle = self.get(client_pid, key)
        self.cluster.run_ops([handle], max_events=max_events)
        return handle.result


def build_kv_store(n: int = 9, t: int = 1, seed: int = 0,
                   client_count: int = 2, **config_kwargs) -> StabilizingKVStore:
    """One-liner constructor: cluster + store."""
    cluster = Cluster(ClusterConfig(n=n, t=t, seed=seed, record_kinds=set(),
                                    **config_kwargs))
    return StabilizingKVStore(cluster, client_count=client_count)
