"""Sharded KV service: consistent-hashed keys over independent clusters.

``StabilizingKVStore`` (``repro.kvstore.store``) hosts every key on one
shared server pool.  :class:`ShardedKVStore` scales that out the way a
production deployment would: ``S`` independent :class:`~repro.registers
.system.Cluster` pools (one per shard, each with its own scheduler,
trace, randomness and network), a consistent-hash ring placing each key
on exactly one shard, and hash-derived per-shard seeds so the pools'
random streams are independent.

Because shards share nothing, they **fail independently**: a transient
burst, partition or Byzantine strategy installed on shard 2 is invisible
to every other shard — ``injector_for`` / ``install_timeline`` scope the
whole fault vocabulary of ``repro.faults`` to one shard.

Clients are *logical* names (``c1..cm``): each shard hosts its own
client process per name, so one logical client can have one operation in
flight on every shard simultaneously — the concurrency the client-side
:class:`~repro.kvstore.pipeline.Pipeline` exploits.

>>> store = build_sharded_kv_store(shard_count=2, seed=5)
>>> store.put_sync("c1", "cat", 1)
>>> store.get_sync("c2", "cat")
1
>>> 0 <= store.shard_for("cat") < 2
True
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from ..faults.schedule import FaultTimeline
from ..faults.transient import TransientFaultInjector
from ..registers.bounded_seq import WsnConfig
from ..registers.mwmr import DEFAULT_SEQ_BOUND
from ..registers.system import Cluster, ClusterConfig, ClusterGroup
from ..sim.process import OperationHandle
from .sharding import HashRing, derive_shard_seed, partition_ops
from .store import StabilizingKVStore


class ShardedKVStore:
    """``shard_count`` independent single-pool stores behind one facade.

    Construction knobs mirror :class:`~repro.kvstore.store
    .StabilizingKVStore` — ``n``/``t`` size *each* shard's pool, and any
    extra :class:`~repro.registers.system.ClusterConfig` keyword applies
    to every shard.  ``trace_backend`` defaults to ``"null"`` (the fast
    path): a service-layer store is throughput-bound, and recording can
    be switched back on per instance for debugging.
    """

    def __init__(self, shard_count: int = 4, n: int = 9, t: int = 1,
                 seed: int = 0, client_count: int = 2,
                 seq_bound: int = DEFAULT_SEQ_BOUND,
                 wsn_config: Optional[WsnConfig] = None,
                 trace_backend: Optional[str] = "null",
                 vnodes: int = 64, client_prefix: str = "c",
                 **config_kwargs: Any):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        self.seed = seed
        # pool recipe, kept so joined shards are built exactly like the
        # constructor-time ones (live resharding spawns pools later).
        self._pool_recipe = dict(n=n, t=t, trace_backend=trace_backend,
                                 **config_kwargs)
        self._store_recipe = dict(client_count=client_count,
                                  seq_bound=seq_bound,
                                  wsn_config=wsn_config,
                                  client_prefix=client_prefix)
        self.ring = HashRing(shard_count, vnodes=vnodes)
        self.group = ClusterGroup([
            ClusterConfig(seed=derive_shard_seed(seed, index),
                          **self._pool_recipe)
            for index in range(shard_count)])
        self.stores: List[StabilizingKVStore] = [
            StabilizingKVStore(cluster, **self._store_recipe)
            for cluster in self.group]
        self.client_pids = [f"{client_prefix}{index + 1}"
                            for index in range(client_count)]
        self._injectors: Dict[int, TransientFaultInjector] = {}

    # -- placement ---------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.stores)

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (consistent hashing)."""
        return self.ring.shard_for(key)

    def store_for(self, key: str) -> StabilizingKVStore:
        return self.stores[self.shard_for(key)]

    def cluster_for(self, key: str) -> Cluster:
        return self.group[self.shard_for(key)]

    @property
    def keys(self) -> List[str]:
        """Every key any shard has materialized, sorted."""
        seen = set()
        for store in self.stores:
            seen.update(store.keys)
        return sorted(seen)

    # -- operations --------------------------------------------------------
    def put(self, client_pid: str, key: str, value: Any) -> OperationHandle:
        """Start ``put`` on ``key``'s shard; returns the operation handle
        (``handle.meta["shard"]`` records the placement)."""
        shard = self.shard_for(key)
        handle = self.stores[shard].put(client_pid, key, value)
        handle.meta["shard"] = shard
        return handle

    def get(self, client_pid: str, key: str) -> OperationHandle:
        """Start ``get`` on ``key``'s shard; returns the operation handle."""
        shard = self.shard_for(key)
        handle = self.stores[shard].get(client_pid, key)
        handle.meta["shard"] = shard
        return handle

    def run_ops(self, handles: Sequence[OperationHandle],
                max_events: int = 2_000_000) -> None:
        """Run shards (index order) until every listed operation is done.

        ``max_events`` is a per-shard budget, as in ``Cluster.run_ops``.
        """
        by_shard = partition_ops(handles,
                                 lambda handle: handle.meta.get("shard", 0))
        for shard in sorted(by_shard):
            self.group[shard].run_ops(by_shard[shard],
                                      max_events=max_events)

    # -- synchronous convenience ------------------------------------------
    def put_sync(self, client_pid: str, key: str, value: Any,
                 max_events: int = 2_000_000) -> None:
        self.run_ops([self.put(client_pid, key, value)],
                     max_events=max_events)

    def get_sync(self, client_pid: str, key: str,
                 max_events: int = 2_000_000) -> Any:
        handle = self.get(client_pid, key)
        self.run_ops([handle], max_events=max_events)
        return handle.result

    # -- elasticity --------------------------------------------------------
    def spawn_pool(self) -> int:
        """Bring one more independent shard pool online (cluster + store)
        at the next index, built from the constructor's recipe with the
        usual hash-derived seed.  The pool owns **no ring slots yet** —
        pair with a ring mutation (:class:`~repro.kvstore.rebalance
        .Rebalancer` does both, plus the state transfer)."""
        index = len(self.stores)
        cluster = self.group.append(
            ClusterConfig(seed=derive_shard_seed(self.seed, index),
                          **self._pool_recipe))
        self.stores.append(StabilizingKVStore(cluster,
                                              **self._store_recipe))
        return index

    def join(self, vnodes: Optional[int] = None) -> int:
        """Grow ``S → S + 1``: spawn a pool *and* give it ring slots.

        Placement changes immediately (no state transfer) — use
        :meth:`~repro.kvstore.rebalance.Rebalancer.join` when existing
        keys must follow their slots to the new shard.
        """
        index = self.spawn_pool()
        ring_index = self.ring.add_shard(vnodes)
        if ring_index != index:  # pragma: no cover - construction bug
            raise RuntimeError(f"ring allocated shard {ring_index} but "
                               f"pool index is {index}")
        return index

    # -- per-shard fault envelope ------------------------------------------
    def injector_for(self, shard: int) -> TransientFaultInjector:
        """The (lazily created) transient-fault injector of one shard."""
        injector = self._injectors.get(shard)
        if injector is None:
            injector = TransientFaultInjector.for_cluster(self.group[shard])
            injector.label = f"shard{shard}"
            self._injectors[shard] = injector
        return injector

    def install_timeline(self, shard: int,
                         timeline: Union[dict, FaultTimeline], *,
                         anchor: Union[None, str, float] = None
                         ) -> FaultTimeline:
        """Install a declarative fault timeline on *one* shard.

        Other shards never see it — the isolation a sharded deployment
        exists to provide.  ``anchor`` rebases the timeline's (relative)
        event times before installation:

        * ``None`` — install as written (times are absolute);
        * ``"now"`` — shift by the shard cluster's current simulated
          time, so a relative timeline starts "from here" (the common
          case mid-workload);
        * a number — shift by that offset explicitly.

        Returns the timeline actually installed (post-shift), so callers
        can read ``tau_no_tr`` and friends in absolute time.
        """
        if not isinstance(timeline, FaultTimeline):
            timeline = FaultTimeline.from_dict(timeline)
        if anchor is not None:
            if anchor == "now":
                offset = self.group[shard].now
            elif isinstance(anchor, bool) or not isinstance(
                    anchor, (int, float)):
                raise ValueError(f"anchor must be None, 'now' or a number, "
                                 f"got {anchor!r}")
            else:
                offset = float(anchor)
            timeline = timeline.shifted(offset)
        timeline.install(self.group[shard], self.injector_for(shard))
        return timeline

    # -- aggregate counters ------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return self.group.messages_sent

    @property
    def events_processed(self) -> int:
        return self.group.events_processed

    @property
    def now(self) -> float:
        """Latest shard-local clock (shards are independent simulations)."""
        return self.group.now


def build_sharded_kv_store(shard_count: int = 4, n: int = 9, t: int = 1,
                           seed: int = 0, client_count: int = 2,
                           **kwargs: Any) -> ShardedKVStore:
    """One-liner constructor mirroring ``build_kv_store``."""
    return ShardedKVStore(shard_count=shard_count, n=n, t=t, seed=seed,
                          client_count=client_count, **kwargs)
