"""Byzantine fault-tolerant, self-stabilizing key-value store service.

Two deployment shapes behind one vocabulary:

* :class:`StabilizingKVStore` — every key on one shared server pool (the
  original facade; simplest to reason about, one operation at a time);
* :class:`ShardedKVStore` — keys consistent-hashed across independent
  pools that fail independently, with :class:`Pipeline` keeping many
  operations in flight per client.

Since PR 8 the sharded shape is *elastic*: the ring is mutable and
:class:`Rebalancer` performs live resharding (split/merge/join/retire
plus vnode migration) with deterministic state transfer while clients
keep issuing through the pipeline.

See ``docs/ARCHITECTURE.md`` ("kvstore — the service layer" and
"rebalance — live resharding") for how this layer sits on top of the
register constructions.
"""

from .pipeline import Pipeline, PipelineHandle
from .rebalance import RebalanceReport, Rebalancer
from .sharded import ShardedKVStore, build_sharded_kv_store
from .sharding import (HashRing, derive_shard_seed, partition_ops,
                       shard_router)
from .store import StabilizingKVStore, build_kv_store

__all__ = [
    "HashRing", "Pipeline", "PipelineHandle", "RebalanceReport",
    "Rebalancer", "ShardedKVStore", "StabilizingKVStore", "build_kv_store",
    "build_sharded_kv_store", "derive_shard_seed", "partition_ops",
    "shard_router",
]
