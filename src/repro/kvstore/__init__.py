"""Byzantine fault-tolerant, self-stabilizing key-value store facade."""

from .store import StabilizingKVStore, build_kv_store

__all__ = ["StabilizingKVStore", "build_kv_store"]
