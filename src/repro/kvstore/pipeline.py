"""Client-side pipelining: enqueue many operations, drain them in one run.

The serial facade pattern (``put_sync`` / ``get_sync``) drives the
simulation once **per operation** — one quorum round-trip finishes before
the next begins, so a store with ``S`` shards and ``m`` logical clients
still executes exactly one operation at a time.  :class:`Pipeline` is the
batch API a real service client would use instead:

* operations are *enqueued* (program order preserved per client);
* each ``(shard, client)`` lane keeps one operation in flight — the
  paper's processes are sequential — and chains the next one the moment
  the previous completes, with no scheduler round-trip in between;
* :meth:`Pipeline.flush` drains every shard once, so up to
  ``shards x clients`` operations are in flight simultaneously.

The payoff is simulated-time throughput: the same workload that takes
``ops x latency`` serially completes in roughly ``ops / (S x m)`` slots
pipelined (measured, with the wall-clock events/sec alongside, by
``benchmarks/test_bench_kv.py`` → ``BENCH_kv.json``).

Lanes are independent, so operations in different lanes are *concurrent*
in simulated time — a pipelined ``get`` racing a pipelined ``put`` of the
same key may legally return the older value (that is the atomicity
guarantee, not a bug).  Flush between batches when you need ordering:

>>> from repro.kvstore.sharded import build_sharded_kv_store
>>> store = build_sharded_kv_store(shard_count=2, seed=11)
>>> pipe = Pipeline(store)
>>> writes = [pipe.put("c1", f"k{i}", i) for i in range(4)]
>>> _ = pipe.flush()                    # all four puts drain together
>>> reads = [pipe.get("c2", f"k{i}") for i in range(4)]
>>> _ = pipe.flush()
>>> [read.result for read in reads]
[0, 1, 2, 3]
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sim.errors import OperationError, SimulationLimitReached
from ..sim.process import OperationHandle
from .sharding import shard_router

#: queued-but-not-yet-issued operation: (issue thunk, pipeline handle).
_Lane = Deque[Tuple[Callable[[], OperationHandle], "PipelineHandle"]]


class PipelineHandle:
    """Future-like result of a pipelined operation.

    Resolves to the underlying :class:`~repro.sim.process
    .OperationHandle` once the lane issues the operation; ``result``
    raises until the operation completed (drive the store via
    :meth:`Pipeline.flush`).
    """

    __slots__ = ("kind", "client", "key", "shard", "handle")

    def __init__(self, kind: str, client: str, key: str, shard: int):
        self.kind = kind
        self.client = client
        self.key = key
        self.shard = shard
        self.handle: Optional[OperationHandle] = None

    @property
    def done(self) -> bool:
        return self.handle is not None and self.handle.done

    @property
    def result(self) -> Any:
        if self.handle is None:
            raise OperationError(
                f"pipelined {self.kind}({self.key}) not yet issued "
                "(call Pipeline.flush)")
        return self.handle.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return (f"PipelineHandle({self.kind}({self.key!r}) "
                f"@{self.client}/shard{self.shard}, {state})")


class Pipeline:
    """Batch ``put``/``get`` front-end for a (sharded) KV store.

    Works with both :class:`~repro.kvstore.sharded.ShardedKVStore` and
    the single-pool :class:`~repro.kvstore.store.StabilizingKVStore`
    (which behaves as one shard).  While a pipeline has pending
    operations it owns its clients: starting operations on the same
    client processes through another API concurrently violates the
    paper's one-operation-per-process rule and raises ``OperationError``.
    """

    def __init__(self, store,
                 on_complete: Optional[Callable[[OperationHandle],
                                                None]] = None):
        self.store = store
        #: observer invoked with each underlying operation handle the
        #: moment it completes (shard-local completion order) — how the
        #: streaming observation pipeline taps pipelined KV runs.
        self.on_complete = on_complete
        self._shard_for = shard_router(store)
        self._lanes: Dict[Tuple[int, str], _Lane] = {}
        self._in_flight: Dict[Tuple[int, str], bool] = {}
        self._outstanding: List[int] = [0] * len(self._clusters())
        self.issued: List[PipelineHandle] = []

    def _clusters(self) -> List[Any]:
        """The store's clusters, re-read on every drain so shards joined
        after construction (live resharding) acquire drainable lanes."""
        group = getattr(self.store, "group", None)
        return list(group) if group is not None else [self.store.cluster]

    # -- enqueueing --------------------------------------------------------
    def put(self, client_pid: str, key: str, value: Any) -> PipelineHandle:
        """Queue ``put(key, value)`` by ``client_pid``; returns a future."""
        shard = self._shard_for(key)
        return self._enqueue(
            PipelineHandle("put", client_pid, key, shard),
            lambda: self.store.put(client_pid, key, value))

    def get(self, client_pid: str, key: str) -> PipelineHandle:
        """Queue ``get(key)`` by ``client_pid``; returns a future."""
        shard = self._shard_for(key)
        return self._enqueue(
            PipelineHandle("get", client_pid, key, shard),
            lambda: self.store.get(client_pid, key))

    def _enqueue(self, pending: PipelineHandle,
                 issue: Callable[[], OperationHandle]) -> PipelineHandle:
        lane_key = (pending.shard, pending.client)
        lane = self._lanes.setdefault(lane_key, deque())
        lane.append((issue, pending))
        self.issued.append(pending)
        while pending.shard >= len(self._outstanding):
            self._outstanding.append(0)
        self._outstanding[pending.shard] += 1
        if not self._in_flight.get(lane_key):
            self._issue_next(lane_key)
        return pending

    def _issue_next(self, lane_key: Tuple[int, str]) -> None:
        lane = self._lanes.get(lane_key)
        if not lane:
            self._in_flight[lane_key] = False
            return
        issue, pending = lane.popleft()
        self._in_flight[lane_key] = True
        handle = issue()
        pending.handle = handle
        handle.on_done(lambda done: self._completed(lane_key,
                                                    pending.shard, done))

    def _completed(self, lane_key: Tuple[int, str], shard: int,
                   handle: OperationHandle) -> None:
        # observe first, then chain the lane's next operation *before*
        # decrementing, so the stream sees completions in order and the
        # shard's outstanding count never transiently reads drained while
        # work remains queued.
        if self.on_complete is not None:
            self.on_complete(handle)
        self._issue_next(lane_key)
        self._outstanding[shard] -= 1

    # -- inspection --------------------------------------------------------
    @property
    def pending(self) -> int:
        """Operations enqueued or in flight, not yet completed."""
        return sum(self._outstanding)

    def pending_on(self, shard: int) -> int:
        if shard >= len(self._outstanding):
            return 0
        return self._outstanding[shard]

    # -- draining ----------------------------------------------------------
    def drain_shard(self, shard: int,
                    max_events: int = 2_000_000) -> None:
        """Run one shard until its in-flight operations complete.

        Completed handles stay in :attr:`issued` (the next ``flush``
        returns them); this only forces the shard-local drain — the
        "ops in flight to the old owner finish there" half of a live
        rebalance handoff (``repro.kvstore.rebalance``).
        """
        if self.pending_on(shard) == 0:
            return
        self._clusters()[shard].scheduler.run_until(
            lambda: self._outstanding[shard] == 0, max_events=max_events)

    def flush(self, max_events: int = 2_000_000) -> List[PipelineHandle]:
        """Run every shard (index order) until its pipeline drains.

        ``max_events`` is a per-shard budget; exhausting it raises
        :class:`~repro.sim.errors.SimulationLimitReached` (the observable
        symptom of a violated resilience assumption, same as
        ``Cluster.run_ops``).  Returns the issued handles in enqueue
        order — all completed.

        Flush is resumable: if a shard stalls, handles that *did*
        complete are detached from :attr:`issued` and annotated on the
        exception as ``exc.drained`` (enqueue order), while unfinished
        ones stay queued — so a retrying caller sees every handle exactly
        once and never a stale duplicate.
        """
        try:
            for shard, cluster in enumerate(self._clusters()):
                if self.pending_on(shard) == 0:
                    continue
                cluster.scheduler.run_until(
                    lambda shard=shard: self._outstanding[shard] == 0,
                    max_events=max_events)
        except SimulationLimitReached as exc:
            drained = [handle for handle in self.issued if handle.done]
            self.issued = [handle for handle in self.issued
                           if not handle.done]
            exc.drained = drained
            raise
        drained, self.issued = self.issued, []
        return drained
