"""The blessed public surface of ``repro`` in one flat namespace.

Everything documented in README.md and docs/ imports from here::

    from repro.api import ScenarioSpec, run_scenario, build_sharded_kv_store

``repro.api`` (re-exported as ``repro`` itself) is the compatibility
contract: names listed in ``__all__`` below are stable across PRs, while
submodule layouts underneath may shift.  The surface groups into:

* **registers** — the four constructions (+ the cluster simulator they
  run on): :class:`Cluster`, :func:`build_swsr_regular` /
  :func:`build_swsr_atomic` / :func:`build_swmr` / :func:`build_mwmr`;
* **checkers** — offline (:func:`check_linearizable`, ...) and streaming
  (:class:`ObservationStream`, :func:`history_digest`) consistency
  verdicts;
* **faults** — the declarative :class:`FaultTimeline`;
* **kvstore** — :class:`StabilizingKVStore`, :class:`ShardedKVStore`
  and the request :class:`Pipeline`, plus the shared placement helpers
  (:func:`partition_ops`, :func:`shard_router`) and live resharding
  (:class:`HashRing`, :class:`Rebalancer`, :class:`RebalanceReport`);
* **parallel** — shard-parallel execution of a single simulation
  (:class:`ParallelScenarioRunner`, :class:`ShardExecutor`,
  :class:`ShardPlan`), normally driven via ``run_scenario(...,
  parallel=N)``;
* **scenarios** — :class:`ScenarioSpec` / :func:`run_scenario` (the
  unified entry point) plus the historical per-family functions (now
  deprecation shims);
* **runner** — parameter sweeps (:func:`run_sweep`);
* **service** — the asyncio KV service layer (:class:`KVService`,
  :class:`KVClient`, :func:`run_loopback_load`);
* **capture** — universal trace record/replay and live soak metrics
  (:func:`record_scenario`, :func:`replay_capture`,
  :class:`MetricsEmitter`; see :mod:`repro.capture`).
"""

from .capture import (CaptureError, CaptureFormatError, CaptureReader,
                      CaptureSink, CorruptCaptureError, MetricsEmitter,
                      ReplayMismatchError, ReplayReport,
                      TruncatedCaptureError, capturing, load_capture,
                      record_scenario, replay_capture,
                      replay_service_capture, verify_capture)
from .checkers import (History, ObservationStream, Operation,
                       check_atomic_swsr, check_linearizable,
                       check_regularity, find_new_old_inversions,
                       find_tau_stab, history_digest, is_atomic_swsr,
                       is_regular, stabilization_report)
from .faults import FaultTimeline
from .kvstore import (HashRing, Pipeline, RebalanceReport, Rebalancer,
                      ShardedKVStore, StabilizingKVStore, build_kv_store,
                      build_sharded_kv_store, partition_ops, shard_router)
from .parallel import (ParallelScenarioRunner, ShardExecutor, ShardOutcome,
                       ShardPlan)
from .registers import (BOT, Cluster, ClusterConfig, Epoch, EpochLabeling,
                        MWMRRegister, QuorumParams, SWMRRegister, WsnConfig,
                        build_mwmr, build_swmr, build_swsr_atomic,
                        build_swsr_regular)
from .runner import (CellResult, SweepResult, SweepSpec, run_sweep,
                     smoke_specs)
from .service import (KVClient, KVService, LoadReport, ServiceError,
                      ServiceServer, ServiceUnavailableError, SyncKVClient,
                      run_loopback_load, serve_tcp)
from .workloads import (KVScenarioResult, ReshardScenarioResult,
                        ScenarioEngine, ScenarioResult, ScenarioSpec,
                        ScenarioSummary, run_kv_scenario,
                        run_mobile_byzantine_scenario, run_mwmr_scenario,
                        run_partition_scenario, run_reshard_scenario,
                        run_scenario, run_soak_scenario, run_swsr_scenario,
                        scenario_families)
from .workloads.scenarios import INITIAL

__all__ = [
    # registers + simulator
    "BOT", "Cluster", "ClusterConfig", "Epoch", "EpochLabeling",
    "MWMRRegister", "QuorumParams", "SWMRRegister", "WsnConfig",
    "build_mwmr", "build_swmr", "build_swsr_atomic", "build_swsr_regular",
    # checkers
    "History", "ObservationStream", "Operation", "check_atomic_swsr",
    "check_linearizable", "check_regularity", "find_new_old_inversions",
    "find_tau_stab", "history_digest", "is_atomic_swsr", "is_regular",
    "stabilization_report",
    # faults
    "FaultTimeline",
    # kv store + live resharding
    "HashRing", "Pipeline", "RebalanceReport", "Rebalancer",
    "ShardedKVStore", "StabilizingKVStore", "build_kv_store",
    "build_sharded_kv_store", "partition_ops", "shard_router",
    # parallel execution
    "ParallelScenarioRunner", "ShardExecutor", "ShardOutcome", "ShardPlan",
    # scenarios
    "INITIAL", "KVScenarioResult", "ReshardScenarioResult",
    "ScenarioEngine", "ScenarioResult", "ScenarioSpec", "ScenarioSummary",
    "run_kv_scenario", "run_mobile_byzantine_scenario", "run_mwmr_scenario",
    "run_partition_scenario", "run_reshard_scenario", "run_scenario",
    "run_soak_scenario", "run_swsr_scenario", "scenario_families",
    # runner
    "CellResult", "SweepResult", "SweepSpec", "run_sweep", "smoke_specs",
    # service layer
    "KVClient", "KVService", "LoadReport", "ServiceError", "ServiceServer",
    "ServiceUnavailableError", "SyncKVClient", "run_loopback_load",
    "serve_tcp",
    # capture / replay / metrics
    "CaptureError", "CaptureFormatError", "CaptureReader", "CaptureSink",
    "CorruptCaptureError", "MetricsEmitter", "ReplayMismatchError",
    "ReplayReport", "TruncatedCaptureError", "capturing", "load_capture",
    "record_scenario", "replay_capture", "replay_service_capture",
    "verify_capture",
]
