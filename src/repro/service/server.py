"""The service core and connection handling.

:class:`KVService` is the protocol-level brain: decoded requests in,
typed responses out, with a :class:`~repro.kvstore.sharded
.ShardedKVStore` simulation as the authoritative backend.  Execution is
**per request batch**: each request acquires the service lock, drives
its operations through the PR-4 :class:`~repro.kvstore.pipeline
.Pipeline` (one lane per ``(shard, client)``, so a ``BATCH`` has
operations in flight on every shard simultaneously) and runs the
simulation until they drain.  Because the simulated cluster is
deterministic and requests execute one batch at a time, a loopback
session replays byte-identically for a fixed seed — the contract CI's
``service-smoke`` job asserts.

Two digests summarize what a service instance did:

* ``history_digest`` — the store-level operation fingerprint off the
  service's :class:`~repro.checkers.stream.ObservationStream` (includes
  simulated timings; pins *replay* determinism);
* ``response_digest`` — an order-independent fold over response
  *content* only (kind, client, key, value, result).  Lane-partitioned
  workloads produce the same response multiset no matter how many
  connections carry them, so this digest pins *concurrency
  independence* (the 1-vs-8-client CI guard).

:class:`ServiceServer` owns the connections: loopback endpoints via
:meth:`ServiceServer.connect_loopback`, TCP via
:meth:`ServiceServer.start_tcp`, graceful drain via
:meth:`ServiceServer.shutdown` (in-flight requests finish, new ones are
refused with ``E_UNAVAILABLE``).
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Any, Dict, List, Optional, Set, Tuple

from ..checkers.stream import ObservationStream
from ..kvstore.pipeline import Pipeline, PipelineHandle
from ..kvstore.sharded import ShardedKVStore
from ..sim.errors import OperationError, SimulationLimitReached
from .protocol import (E_BAD_REQUEST, E_INTERNAL, E_UNAVAILABLE, E_VERSION,
                       PROTOCOL_VERSION, ProtocolError, Request, Response,
                       encode_payload)
from .transport import (LoopbackTransport, TcpTransport, Transport,
                        loopback_pair)

_DIGEST_MOD = 1 << 128


def _render_digest(accumulator: int, count: int) -> str:
    payload = f"{count}:{accumulator:032x}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class KVService:
    """Request execution against a sharded store, one batch at a time.

    ``store`` may be shared with other code between requests, but the
    service owns it *during* a request (the paper's one-operation-per-
    process rule).  Extra keyword arguments build a fresh
    :class:`~repro.kvstore.sharded.ShardedKVStore` when no store is
    passed.
    """

    def __init__(self, store: Optional[ShardedKVStore] = None, *,
                 max_events: int = 2_000_000, capture: Any = None,
                 **store_kwargs: Any):
        self.store = store if store is not None \
            else ShardedKVStore(**store_kwargs)
        self.max_events = max_events
        #: store-level observation: counters + history digest, no
        #: retained history (a service is long-running by design).
        self.stream = ObservationStream(keep_history=False)
        self.pipeline = Pipeline(self.store,
                                 on_complete=self.stream.observe_handle)
        self.requests_served = 0
        self._lock = asyncio.Lock()
        self._draining = False
        self._response_acc = 0
        self._response_count = 0
        #: duck-typed recording seam (``repro.capture``'s
        #: ``ServiceCaptureSession``): store ops ride the observation
        #: stream, request/response frames and drain transitions are
        #: recorded in execution order.
        self.capture = capture
        if capture is not None:
            self.stream.attach(capture.operation_recorder())

    # -- digests -----------------------------------------------------------
    @property
    def history_digest(self) -> str:
        """Fingerprint of every store operation served (incl. timings)."""
        return self.stream.digest()

    @property
    def response_digest(self) -> str:
        """Order-independent fold over response content only."""
        return _render_digest(self._response_acc, self._response_count)

    def _observe_response(self, kind: str, client: str, key: str,
                          value: Any, result: Any) -> None:
        body = encode_payload({"client": client, "key": key, "kind": kind,
                               "result": result, "value": value})
        fingerprint = int.from_bytes(hashlib.sha256(body).digest()[:16],
                                     "big")
        self._response_acc = (self._response_acc + fingerprint) % _DIGEST_MOD
        self._response_count += 1

    # -- drain -------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new data requests (``STATS`` keeps answering)."""
        self._draining = True
        if self.capture is not None:
            self.capture.record_drain(self.store.now, "begin")

    def end_drain(self) -> None:
        """Accept data requests again (a drain that did not end in
        shutdown — e.g. load shed during a resharding handoff)."""
        self._draining = False
        if self.capture is not None:
            self.capture.record_drain(self.store.now, "end")

    async def drained(self) -> None:
        """Resolves once no request is executing against the store."""
        async with self._lock:
            pass

    # -- stats -------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``STATS`` payload: counters, digests, topology."""
        return {
            "clients": list(self.store.client_pids),
            "draining": self._draining,
            "events_processed": self.store.events_processed,
            "history_digest": self.history_digest,
            "keys": len(self.store.keys),
            "messages_sent": self.store.messages_sent,
            "ops": self.stream.ops,
            "protocol_version": PROTOCOL_VERSION,
            "reads": self.stream.reads,
            "requests_served": self.requests_served,
            "response_digest": self.response_digest,
            "shards": self.store.shard_count,
            "writes": self.stream.writes,
        }

    # -- request execution -------------------------------------------------
    async def handle(self, request: Request) -> Response:
        """Execute one decoded request; never raises protocol errors."""
        self.requests_served += 1
        if request.op == "STATS":
            return self._record_frame(
                request, Response.success(request.request_id,
                                          stats=self.stats()))
        if self._draining:
            return self._record_frame(
                request, Response.failure(request.request_id,
                                          E_UNAVAILABLE,
                                          "server is draining"))
        client = request.client or self.store.client_pids[0]
        if client not in self.store.client_pids:
            return self._record_frame(request, Response.failure(
                request.request_id, E_BAD_REQUEST,
                f"unknown client {client!r} (store clients: "
                f"{', '.join(self.store.client_pids)})"))
        async with self._lock:
            try:
                response = self._execute(request, client)
            except SimulationLimitReached as exc:
                # flush is exception-safe: handles it could not complete
                # stay queued in ``pipeline.issued`` and drain on the
                # next flush, so no forced reset is needed here.
                response = Response.failure(
                    request.request_id, E_UNAVAILABLE,
                    f"simulation event budget exhausted: {exc}")
            except OperationError as exc:
                response = Response.failure(request.request_id,
                                            E_INTERNAL, str(exc))
            # still under the lock: the recorded frame order is the
            # store execution order, which is what replay re-drives.
            return self._record_frame(request, response)

    def _record_frame(self, request: Request,
                      response: Response) -> Response:
        if self.capture is not None:
            self.capture.record_frame(self.store.now,
                                      request.to_payload(),
                                      response.to_payload())
        return response

    def _execute(self, request: Request, client: str) -> Response:
        """One batch against the store: enqueue, single drain, respond."""
        issued: List[Tuple[str, str, Any, PipelineHandle]] = []
        if request.op == "GET":
            issued.append(("get", request.key, None,
                           self.pipeline.get(client, request.key)))
        elif request.op == "PUT":
            issued.append(("put", request.key, request.value,
                           self.pipeline.put(client, request.key,
                                             request.value)))
        else:                                     # BATCH
            for op in request.ops:
                if op.kind == "put":
                    issued.append(("put", op.key, op.value,
                                   self.pipeline.put(client, op.key,
                                                     op.value)))
                else:
                    issued.append(("get", op.key, None,
                                   self.pipeline.get(client, op.key)))
        self.pipeline.flush(max_events=self.max_events)
        results: List[Any] = []
        for kind, key, value, handle in issued:
            result = handle.result if kind == "get" else None
            self._observe_response(kind, client, key, value, result)
            results.append(result)
        if request.op == "BATCH":
            return Response.success(request.request_id, results=results)
        return Response.success(request.request_id, value=results[0])


class ServiceServer:
    """Connection handling around one :class:`KVService`.

    Each connection gets a reader task; requests on a connection execute
    in arrival order (responses can pipeline behind each other in the
    transport buffers), while the service lock serializes batches across
    connections.
    """

    def __init__(self, service: KVService):
        self.service = service
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._busy = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.connections_served = 0

    # -- accepting connections ---------------------------------------------
    def connect_loopback(self) -> LoopbackTransport:
        """A new client transport served by this server, no sockets."""
        client_end, server_end = loopback_pair(
            f"loopback{self.connections_served}")
        self._spawn(server_end)
        return client_end

    async def start_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> Tuple[str, int]:
        """Listen on ``host:port`` (0 = ephemeral); returns the address."""

        async def on_connect(reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
            # hand the connection to a task *we* own, so shutdown can
            # drain and reap it (and cancellation never propagates back
            # into asyncio.streams' connection bookkeeping).
            self._spawn(TcpTransport(reader, writer))

        self._tcp_server = await asyncio.start_server(on_connect, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def _spawn(self, transport: Transport) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve(transport))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- the per-connection loop -------------------------------------------
    async def _serve(self, transport: Transport) -> None:
        self.connections_served += 1
        try:
            while True:
                try:
                    payload = await transport.receive()
                except ProtocolError as exc:
                    # framing is broken: answer once, then hang up.
                    await self._try_send(transport, Response.failure(
                        0, exc.code, exc.message))
                    break
                if payload is None:
                    break
                try:
                    request = Request.from_payload(payload)
                except ProtocolError as exc:
                    request_id = payload.get("id")
                    if not isinstance(request_id, int) \
                            or isinstance(request_id, bool) or request_id < 0:
                        request_id = 0
                    await self._try_send(transport, Response.failure(
                        request_id, exc.code, exc.message))
                    if exc.code == E_VERSION:
                        break            # different protocol: stop talking
                    continue
                self._busy += 1
                self._idle.clear()
                try:
                    response = await self.service.handle(request)
                    await transport.send(response.to_payload())
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
        except (ConnectionError, OSError):   # peer vanished mid-dialogue
            pass
        finally:
            await transport.close()

    @staticmethod
    async def _try_send(transport: Transport, response: Response) -> None:
        try:
            await transport.send(response.to_payload())
        except (ConnectionError, OSError):  # pragma: no cover - races only
            pass

    # -- shutdown ----------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight requests, then disconnect.

        New data requests arriving after this point are refused with
        ``E_UNAVAILABLE``; once no request is mid-execution the listener
        closes and every connection task is torn down.
        """
        self.service.begin_drain()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        await self._idle.wait()              # in-flight responses sent
        await self.service.drained()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)


async def serve_tcp(service: KVService, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[ServiceServer, str, int]:
    """Stand up a TCP server for ``service``; returns (server, host, port)."""
    server = ServiceServer(service)
    bound_host, bound_port = await server.start_tcp(host, port)
    return server, bound_host, bound_port
