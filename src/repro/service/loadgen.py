"""Loopback load generation: the service-layer benchmark workhorse.

Drives a :class:`~repro.service.server.KVService` with ``clients``
concurrent loopback connections executing a **lane-partitioned**
workload: ``lanes`` logical lanes, each owning a disjoint key range and
a fixed store client, each issuing ``rounds`` batched put-then-get
requests.  Lanes are distributed round-robin over the connections, so
the *same* logical workload runs whether one connection carries all
lanes or eight carry one each — which is exactly what makes the
service's ``response_digest`` comparable across client counts (the CI
concurrency guard) while ``history_digest`` pins same-configuration
replay determinism.

Used by ``benchmarks/test_bench_service.py`` (→ ``BENCH_service.json``)
and ``python -m repro.service bench``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List

from .client import BatchEntry, KVClient
from .server import KVService, ServiceServer


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one loopback load run (wall times are *not* seeded)."""

    clients: int
    lanes: int
    rounds: int
    keys_per_lane: int
    requests: int
    ops: int
    mismatches: int
    wall_seconds: float
    requests_per_sec: float
    ops_per_sec: float
    p50_ms: float
    p99_ms: float
    history_digest: str
    response_digest: str
    stats: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "history_digest": self.history_digest,
            "keys_per_lane": self.keys_per_lane,
            "lanes": self.lanes,
            "mismatches": self.mismatches,
            "ops": self.ops,
            "ops_per_sec": round(self.ops_per_sec, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "requests": self.requests,
            "requests_per_sec": round(self.requests_per_sec, 1),
            "response_digest": self.response_digest,
            "rounds": self.rounds,
            "wall_seconds": round(self.wall_seconds, 4),
        }


def _lane_batch(lane: int, round_index: int, keys_per_lane: int
                ) -> List[BatchEntry]:
    """The lane's request for one round: rewrite every key, read it back.

    Put-then-get of the same key lands on the same ``(shard, client)``
    pipeline lane, so program order guarantees each get observes its
    round's put — results are independent of how lanes interleave.
    """
    keys = [f"lane{lane}/k{index}" for index in range(keys_per_lane)]
    entries: List[BatchEntry] = [
        ("put", key, f"l{lane}r{round_index}v{index}")
        for index, key in enumerate(keys)]
    entries.extend(("get", key) for key in keys)
    return entries


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


async def _drive_connection(client: KVClient, my_lanes: List[int],
                            lane_clients: List[str], rounds: int,
                            keys_per_lane: int,
                            latencies: List[float]) -> int:
    """Run this connection's lanes; returns result mismatches seen."""
    mismatches = 0
    async with client:
        for round_index in range(rounds):
            for lane in my_lanes:
                entries = _lane_batch(lane, round_index, keys_per_lane)
                started = time.perf_counter()
                # the lane (not the connection) pins the store client:
                # the logical workload must not change shape with the
                # connection count.
                results = await client.batch(entries,
                                             client=lane_clients[lane])
                latencies.append((time.perf_counter() - started) * 1e3)
                expected = [None] * keys_per_lane + [
                    f"l{lane}r{round_index}v{index}"
                    for index in range(keys_per_lane)]
                if results != expected:
                    mismatches += 1
    return mismatches


async def _run_load(service: KVService, clients: int, lanes: int,
                    rounds: int, keys_per_lane: int) -> LoadReport:
    server = ServiceServer(service)
    pids = service.store.client_pids
    lane_clients = [pids[lane % len(pids)] for lane in range(lanes)]
    latencies: List[float] = []
    drivers = []
    for connection in range(clients):
        my_lanes = [lane for lane in range(lanes)
                    if lane % clients == connection]
        if not my_lanes:
            continue
        client = KVClient.loopback(server)
        drivers.append(_drive_connection(
            client, my_lanes, lane_clients, rounds, keys_per_lane,
            latencies))
    started = time.perf_counter()
    mismatch_counts = await asyncio.gather(*drivers)
    wall = time.perf_counter() - started

    stats_client = KVClient.loopback(server)
    async with stats_client:
        stats = await stats_client.stats()
    await server.shutdown()

    requests = lanes * rounds
    ops = requests * 2 * keys_per_lane
    latencies.sort()
    return LoadReport(
        clients=clients, lanes=lanes, rounds=rounds,
        keys_per_lane=keys_per_lane, requests=requests, ops=ops,
        mismatches=sum(mismatch_counts),
        wall_seconds=wall,
        requests_per_sec=requests / wall if wall > 0 else 0.0,
        ops_per_sec=ops / wall if wall > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50),
        p99_ms=_percentile(latencies, 0.99),
        history_digest=service.history_digest,
        response_digest=service.response_digest,
        stats=stats)


def run_loopback_load(*, clients: int = 4, lanes: int = 8, rounds: int = 4,
                      keys_per_lane: int = 4, shards: int = 4, n: int = 9,
                      t: int = 1, seed: int = 20260808,
                      store_clients: int = 2,
                      max_events: int = 2_000_000,
                      capture: Any = None) -> LoadReport:
    """Build a fresh store + service and run the loopback load workload.

    ``clients`` is the *connection* fan-in only; the logical workload is
    fixed by ``lanes`` × ``rounds`` × ``keys_per_lane``, so reports from
    different ``clients`` values are comparable (same ops, same
    ``response_digest``).  ``capture=`` records the whole session (store
    ops, request/response frames, drain transitions) to a trace file
    that ``repro.capture.replay_service_capture`` re-drives.
    """
    if lanes < 1 or rounds < 1 or keys_per_lane < 1 or clients < 1:
        raise ValueError("clients, lanes, rounds and keys_per_lane must "
                         "be positive")
    session = None
    if capture is not None:
        from ..capture.session import ServiceCaptureSession
        session = ServiceCaptureSession(
            capture, store={"shard_count": shards, "n": n, "t": t,
                            "seed": seed, "client_count": store_clients},
            max_events=max_events)

    async def main() -> LoadReport:
        service = KVService(shard_count=shards, n=n, t=t, seed=seed,
                            client_count=store_clients,
                            max_events=max_events, capture=session)
        report = await _run_load(service, clients, lanes, rounds,
                                 keys_per_lane)
        if session is not None:
            session.close(service)
        return report

    return asyncio.run(main())
