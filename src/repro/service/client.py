"""The client library: async ``KVClient`` and a sync convenience wrapper.

A :class:`KVClient` speaks the framed protocol over any transport
factory — TCP (:meth:`KVClient.tcp`) or an in-process loopback server
(:meth:`KVClient.loopback`).  Requests are correlated by id, so a client
may have many awaits outstanding: a background reader task dispatches
responses to their futures in arrival order, which is what makes
concurrent client tasks over one connection cheap.

Failed transports reconnect transparently: a send that hits a dead
connection re-dials the factory and retries the request (operations are
register writes/reads — re-issuing is idempotent at the store level) up
to ``max_retries`` times, sleeping ``retry_delay * attempt`` between
tries (deterministic linear backoff).  ``E_UNAVAILABLE`` responses — a
draining server, an exhausted simulation budget — retry on the same
schedule and, if the condition persists, give up with the typed
:class:`ServiceUnavailableError`.  Other error responses surface
immediately as :class:`ServiceError` carrying the protocol error code.

:class:`SyncKVClient` wraps a :class:`KVClient` in a private event loop
for scripts and REPLs that do not want to be async.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Iterable, List, Optional, \
    Sequence, Tuple, Union

from .protocol import (BatchOp, E_UNAVAILABLE, ProtocolError, Request,
                       Response)
from .transport import Transport, open_tcp_transport

#: batch entries accepted by :meth:`KVClient.batch`: ``("put", key,
#: value)`` / ``("get", key)`` tuples or ready-made :class:`BatchOp`\ s.
BatchEntry = Union[BatchOp, Tuple[str, str], Tuple[str, str, Any]]


class ServiceError(Exception):
    """An error response from the service (``code`` is the wire code)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServiceUnavailableError(ServiceError):
    """The service stayed ``E_UNAVAILABLE`` through every retry.

    Raised by :class:`KVClient` after a request drew ``E_UNAVAILABLE``
    (draining server, exhausted simulation budget) on the initial attempt
    *and* all ``max_retries`` deterministic-backoff retries.  Subclasses
    :class:`ServiceError` with ``code == E_UNAVAILABLE``, so callers
    catching the base class keep working; ``attempts`` records how many
    tries were made.
    """

    def __init__(self, message: str, attempts: int):
        super().__init__(E_UNAVAILABLE, message)
        self.attempts = attempts


def _as_batch_op(entry: BatchEntry) -> BatchOp:
    if isinstance(entry, BatchOp):
        return entry
    kind = entry[0]
    if kind == "put":
        if len(entry) != 3:
            raise ValueError(f"put entries are ('put', key, value), "
                             f"got {entry!r}")
        return BatchOp("put", entry[1], entry[2])
    if kind == "get":
        if len(entry) != 2:
            raise ValueError(f"get entries are ('get', key), got {entry!r}")
        return BatchOp("get", entry[1])
    raise ValueError(f"batch entry kind must be 'put' or 'get', "
                     f"got {kind!r}")


class KVClient:
    """Asynchronous KV service client with reconnect and pipelining.

    ``connect`` is an async factory returning a fresh
    :class:`~repro.service.transport.Transport`; the client dials it
    lazily on first use and again after a connection failure.
    """

    def __init__(self, connect: Callable[[], Awaitable[Transport]], *,
                 client: Optional[str] = None, max_retries: int = 2,
                 retry_delay: float = 0.05):
        self._connect = connect
        self.client = client
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self._transport: Optional[Transport] = None
        self._reader: Optional["asyncio.Task[None]"] = None
        self._pending: Dict[int, "asyncio.Future[Response]"] = {}
        self._next_id = 0
        self._closed = False

    # -- constructors ------------------------------------------------------
    @classmethod
    def tcp(cls, host: str, port: int, **kwargs: Any) -> "KVClient":
        """A client dialing ``host:port`` over TCP."""
        return cls(lambda: open_tcp_transport(host, port), **kwargs)

    @classmethod
    def loopback(cls, server: Any, **kwargs: Any) -> "KVClient":
        """A client served in-process by a
        :class:`~repro.service.server.ServiceServer`."""

        async def connect() -> Transport:
            return server.connect_loopback()

        return cls(connect, **kwargs)

    # -- connection lifecycle ----------------------------------------------
    async def connect(self) -> None:
        """Dial the transport now (otherwise done lazily on first use)."""
        if self._transport is None:
            await self._reconnect()

    async def _reconnect(self) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        await self._teardown()
        self._transport = await self._connect()
        self._reader = asyncio.get_running_loop().create_task(
            self._read_loop(self._transport))

    async def _teardown(self) -> None:
        if self._reader is not None:
            self._reader.cancel()
            try:
                await self._reader
            except (asyncio.CancelledError, Exception):
                pass
            self._reader = None
        if self._transport is not None:
            await self._transport.close()
            self._transport = None
        self._fail_pending(ConnectionError("connection reset"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self, transport: Transport) -> None:
        try:
            while True:
                payload = await transport.receive()
                if payload is None:
                    self._fail_pending(ConnectionError(
                        f"server {transport.peer} closed the connection"))
                    return
                response = Response.from_payload(payload)
                future = self._pending.pop(response.request_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            self._fail_pending(exc)
        except (ConnectionError, OSError) as exc:
            self._fail_pending(ConnectionError(str(exc)))

    async def close(self) -> None:
        """Tear the connection down; the client cannot be reused after."""
        self._closed = True
        await self._teardown()

    async def __aenter__(self) -> "KVClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- request plumbing --------------------------------------------------
    def _claim_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    async def _request(self, build: Callable[[int], Request]) -> Response:
        last_error: Exception = ConnectionError("not connected")
        for attempt in range(self.max_retries + 1):
            if attempt and self.retry_delay:
                await asyncio.sleep(self.retry_delay * attempt)
            try:
                if self._transport is None:
                    await self._reconnect()
                request = build(self._claim_id())
                future: "asyncio.Future[Response]" = \
                    asyncio.get_running_loop().create_future()
                self._pending[request.request_id] = future
                try:
                    await self._transport.send(request.to_payload())
                    response = await future
                finally:
                    self._pending.pop(request.request_id, None)
                if not response.ok:
                    if response.error == E_UNAVAILABLE:
                        # transient by contract (drain, budget pressure):
                        # retry on the same deterministic backoff as a
                        # dead transport, then give up with a typed error.
                        last_error = ServiceError(
                            E_UNAVAILABLE,
                            response.message or "service unavailable")
                        continue
                    raise ServiceError(response.error or "E_INTERNAL",
                                       response.message or "request failed")
                return response
            except (ConnectionError, OSError) as exc:
                last_error = exc
                self._transport = None   # force a re-dial next attempt
        if isinstance(last_error, ServiceError):
            raise ServiceUnavailableError(
                f"service still unavailable after "
                f"{self.max_retries + 1} attempts: {last_error.message}",
                attempts=self.max_retries + 1) from last_error
        raise ConnectionError(
            f"request failed after {self.max_retries + 1} attempts: "
            f"{last_error}") from last_error

    # -- operations --------------------------------------------------------
    async def get(self, key: str, *, client: Optional[str] = None) -> Any:
        """The current value of ``key`` (``None`` if never written)."""
        pid = client or self.client
        response = await self._request(
            lambda rid: Request.get(rid, key, client=pid))
        return response.value

    async def put(self, key: str, value: Any, *,
                  client: Optional[str] = None) -> None:
        """Write ``value`` to ``key``; resolves once linearized."""
        pid = client or self.client
        await self._request(
            lambda rid: Request.put(rid, key, value, client=pid))

    async def batch(self, entries: Iterable[BatchEntry], *,
                    client: Optional[str] = None) -> List[Any]:
        """Run many operations in one request (one simulation drain).

        Entries execute in program order per store client; results come
        back in entry order (``None`` for puts).  ``client`` names the
        logical store client issuing this batch (default: the client's
        configured one, else the server's first).
        """
        ops = [_as_batch_op(entry) for entry in entries]
        pid = client or self.client
        response = await self._request(
            lambda rid: Request.batch(rid, ops, client=pid))
        return list(response.results or ())

    async def stats(self) -> Dict[str, Any]:
        """Server counters and digests (see ``KVService.stats``)."""
        response = await self._request(Request.stats)
        return dict(response.stats or {})


class SyncKVClient:
    """Blocking facade over :class:`KVClient` for non-async callers.

    Owns a private event loop; do **not** use from inside a running
    event loop (use :class:`KVClient` directly there).
    """

    def __init__(self, client: KVClient):
        self._client = client
        self._loop = asyncio.new_event_loop()

    @classmethod
    def tcp(cls, host: str, port: int, **kwargs: Any) -> "SyncKVClient":
        return cls(KVClient.tcp(host, port, **kwargs))

    def _run(self, coroutine: Awaitable[Any]) -> Any:
        return self._loop.run_until_complete(coroutine)

    def connect(self) -> None:
        self._run(self._client.connect())

    def get(self, key: str) -> Any:
        return self._run(self._client.get(key))

    def put(self, key: str, value: Any) -> None:
        self._run(self._client.put(key, value))

    def batch(self, entries: Sequence[BatchEntry]) -> List[Any]:
        return self._run(self._client.batch(entries))

    def stats(self) -> Dict[str, Any]:
        return self._run(self._client.stats())

    def close(self) -> None:
        try:
            self._run(self._client.close())
        finally:
            self._loop.close()

    def __enter__(self) -> "SyncKVClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
