"""``python -m repro.service`` — serve, bench and poke the KV service.

Subcommands:

* ``serve`` — stand up a TCP server around a fresh sharded store;
* ``bench`` — the deterministic loopback load bench (requests/sec,
  p50/p99 latency, history/response digests; ``--out`` writes the JSON
  document CI archives as ``BENCH_service.json``);
* ``put`` / ``get`` / ``stats`` — one-shot TCP client operations.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, List, Optional

from .client import KVClient
from .loadgen import run_loopback_load
from .server import KVService, serve_tcp


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=4,
                        help="independent cluster pools (default 4)")
    parser.add_argument("--n", type=int, default=9,
                        help="servers per shard (default 9)")
    parser.add_argument("--t", type=int, default=1,
                        help="Byzantine tolerance per shard (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="store seed (default 0)")
    parser.add_argument("--store-clients", type=int, default=2,
                        help="logical store clients c1..cm (default 2)")


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7907)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Asyncio service layer over the sharded KV store")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a TCP server")
    _add_endpoint_arguments(serve)
    _add_store_arguments(serve)

    bench = commands.add_parser("bench",
                                help="loopback load bench (deterministic)")
    _add_store_arguments(bench)
    bench.add_argument("--clients", type=int, default=8,
                       help="concurrent loopback connections (default 8)")
    bench.add_argument("--lanes", type=int, default=8,
                       help="logical workload lanes (default 8)")
    bench.add_argument("--rounds", type=int, default=4,
                       help="batched put+get rounds per lane (default 4)")
    bench.add_argument("--keys-per-lane", type=int, default=4,
                       help="keys per lane (default 4)")
    bench.add_argument("--out", default=None,
                       help="write the JSON report here")

    put = commands.add_parser("put", help="one-shot PUT over TCP")
    _add_endpoint_arguments(put)
    put.add_argument("--client", default=None,
                     help="logical store client (default: server's first)")
    put.add_argument("key")
    put.add_argument("value", help="JSON value (bare strings accepted)")

    get = commands.add_parser("get", help="one-shot GET over TCP")
    _add_endpoint_arguments(get)
    get.add_argument("--client", default=None)
    get.add_argument("key")

    stats = commands.add_parser("stats", help="server counters and digests")
    _add_endpoint_arguments(stats)
    return parser


def _parse_value(raw: str) -> Any:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


async def _serve(args: argparse.Namespace) -> int:
    service = KVService(shard_count=args.shards, n=args.n, t=args.t,
                        seed=args.seed, client_count=args.store_clients)
    server, host, port = await serve_tcp(service, args.host, args.port)
    print(f"repro.service listening on {host}:{port} "
          f"({args.shards} shards x n={args.n}, t={args.t}, "
          f"seed={args.seed})")
    try:
        await asyncio.Event().wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.shutdown()
    return 0


def _bench(args: argparse.Namespace) -> int:
    report = run_loopback_load(
        clients=args.clients, lanes=args.lanes, rounds=args.rounds,
        keys_per_lane=args.keys_per_lane, shards=args.shards, n=args.n,
        t=args.t, seed=args.seed, store_clients=args.store_clients)
    document = report.to_dict()
    print(f"loopback bench: {report.ops} ops in {report.requests} "
          f"requests over {report.clients} connection(s)")
    print(f"  {report.requests_per_sec:.1f} req/s, "
          f"{report.ops_per_sec:.1f} ops/s, "
          f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms")
    print(f"  history_digest  {report.history_digest}")
    print(f"  response_digest {report.response_digest}")
    if report.mismatches:
        print(f"  !! {report.mismatches} batch(es) returned unexpected "
              "values")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.out}")
    return 1 if report.mismatches else 0


async def _one_shot(args: argparse.Namespace) -> int:
    client_kwargs = {}
    if getattr(args, "client", None):
        client_kwargs["client"] = args.client
    async with KVClient.tcp(args.host, args.port, **client_kwargs) as client:
        if args.command == "put":
            await client.put(args.key, _parse_value(args.value))
            print("ok")
        elif args.command == "get":
            print(json.dumps(await client.get(args.key), sort_keys=True))
        else:
            print(json.dumps(await client.stats(), indent=2,
                             sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            try:
                return asyncio.run(_serve(args))
            except KeyboardInterrupt:
                return 0
        if args.command == "bench":
            return _bench(args)
        return asyncio.run(_one_shot(args))
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early — not an error
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
