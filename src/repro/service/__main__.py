"""``python -m repro.service`` entry point."""

import sys

from .cli import main

sys.exit(main())
