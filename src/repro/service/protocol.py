"""The wire protocol: length-prefixed JSON frames, typed both ways.

One frame = one 4-byte big-endian length header followed by exactly that
many bytes of canonical JSON (UTF-8, sorted keys, no whitespace).  The
payload is always a JSON object carrying a protocol-version field
(``"v"``); anything else — truncated header, oversized length, garbage
bytes, a JSON array — is a *typed* :class:`ProtocolError`, never a bare
``json`` or ``struct`` exception.  The framing layer is transport-
agnostic: the TCP transport reads frames off a socket stream, the
loopback transport round-trips the same bytes through in-process queues,
and both feed :class:`FrameDecoder`.

Requests are ``GET`` / ``PUT`` / ``BATCH`` / ``STATS``; responses carry
``ok`` plus either a value (``GET``/``PUT``), per-operation ``results``
(``BATCH``), a ``stats`` object (``STATS``), or an error code from
:data:`ERROR_CODES`.  Version mismatches are rejected with ``E_VERSION``
on both sides.

>>> request = Request.get(7, "user:alice", client="c1")
>>> decoder = FrameDecoder()
>>> [payload] = decoder.feed(encode_frame(request.to_payload()))
>>> Request.from_payload(payload) == request
True
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: bump when the frame or payload shape changes incompatibly; both ends
#: reject mismatches with ``E_VERSION`` instead of guessing.
PROTOCOL_VERSION = 1

#: hard ceiling on one frame's JSON body — a corrupt length prefix must
#: not make a reader try to buffer gigabytes.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct("!I")
HEADER_BYTES = _HEADER.size

# -- error codes -----------------------------------------------------------
E_VERSION = "E_VERSION"          #: protocol-version mismatch
E_MALFORMED = "E_MALFORMED"      #: frame body is not a JSON object
E_FRAME = "E_FRAME"              #: framing violation (oversize/truncated)
E_UNKNOWN_OP = "E_UNKNOWN_OP"    #: request op not in the vocabulary
E_BAD_REQUEST = "E_BAD_REQUEST"  #: op known, fields invalid
E_UNAVAILABLE = "E_UNAVAILABLE"  #: server draining / backend exhausted
E_INTERNAL = "E_INTERNAL"        #: unexpected server-side failure

ERROR_CODES = (E_VERSION, E_MALFORMED, E_FRAME, E_UNKNOWN_OP,
               E_BAD_REQUEST, E_UNAVAILABLE, E_INTERNAL)

REQUEST_OPS = ("GET", "PUT", "BATCH", "STATS")


class ProtocolError(Exception):
    """A typed protocol violation (``code`` is one of :data:`ERROR_CODES`)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def encode_payload(payload: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes of one payload object (sorted keys, compact)."""
    try:
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(E_MALFORMED,
                            f"payload is not JSON-serializable: {exc}")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(E_FRAME,
                            f"frame body of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse one frame body; typed errors for garbage or non-objects."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_MALFORMED, f"frame body is not JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(E_MALFORMED,
                            "frame body must be a JSON object, got "
                            f"{type(payload).__name__}")
    return payload


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Length-prefix one payload into a complete wire frame."""
    body = encode_payload(payload)
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed chunks in whatever sizes the transport delivers them; complete
    payloads come back in order.  A framing violation (length prefix over
    :data:`MAX_FRAME_BYTES`, undecodable body) raises
    :class:`ProtocolError` and poisons the decoder — the connection must
    be torn down, resynchronizing inside a byte stream is guesswork.

    >>> decoder = FrameDecoder()
    >>> frame = encode_frame({"v": 1, "op": "STATS", "id": 0})
    >>> decoder.feed(frame[:3])        # a partial header decodes nothing
    []
    >>> [payload] = decoder.feed(frame[3:])
    >>> payload["op"]
    'STATS'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered(self) -> int:
        """Bytes received but not yet decoded into a payload."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every payload it completed."""
        if self._poisoned:
            raise ProtocolError(E_FRAME, "decoder poisoned by an earlier "
                                         "framing violation")
        self._buffer.extend(data)
        payloads: List[Dict[str, Any]] = []
        while len(self._buffer) >= HEADER_BYTES:
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                self._poisoned = True
                raise ProtocolError(
                    E_FRAME, f"frame length {length} exceeds the "
                             f"{MAX_FRAME_BYTES}-byte limit")
            if len(self._buffer) < HEADER_BYTES + length:
                break
            body = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            try:
                payloads.append(decode_payload(body))
            except ProtocolError:
                self._poisoned = True
                raise
        return payloads


def _require_version(payload: Dict[str, Any]) -> None:
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            E_VERSION, f"protocol version {version!r} is not supported "
                       f"(this end speaks {PROTOCOL_VERSION})")


def _require_id(payload: Dict[str, Any]) -> int:
    request_id = payload.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool) \
            or request_id < 0:
        raise ProtocolError(E_BAD_REQUEST,
                            f"request id must be a non-negative integer, "
                            f"got {request_id!r}")
    return request_id


def _require_key(payload: Dict[str, Any]) -> str:
    key = payload.get("key")
    if not isinstance(key, str) or not key:
        raise ProtocolError(E_BAD_REQUEST,
                            f"key must be a non-empty string, got {key!r}")
    return key


@dataclass(frozen=True)
class BatchOp:
    """One operation inside a ``BATCH`` request (``kind``: put/get)."""

    kind: str
    key: str
    value: Any = None

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": self.kind, "key": self.key}
        if self.kind == "put":
            payload["value"] = self.value
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "BatchOp":
        if not isinstance(payload, dict):
            raise ProtocolError(E_BAD_REQUEST,
                                "batch entries must be objects, got "
                                f"{type(payload).__name__}")
        kind = payload.get("op")
        if kind not in ("put", "get"):
            raise ProtocolError(E_BAD_REQUEST,
                                f"batch op must be 'put' or 'get', "
                                f"got {kind!r}")
        key = _require_key(payload)
        if kind == "put" and "value" not in payload:
            raise ProtocolError(E_BAD_REQUEST,
                                f"batch put({key!r}) is missing its value")
        return cls(kind=kind, key=key, value=payload.get("value"))


@dataclass(frozen=True)
class Request:
    """A decoded client request (already version- and field-checked)."""

    op: str
    request_id: int
    key: Optional[str] = None
    value: Any = None
    client: Optional[str] = None
    ops: Tuple[BatchOp, ...] = ()
    version: int = PROTOCOL_VERSION

    # -- builders ----------------------------------------------------------
    @classmethod
    def get(cls, request_id: int, key: str,
            client: Optional[str] = None) -> "Request":
        return cls(op="GET", request_id=request_id, key=key, client=client)

    @classmethod
    def put(cls, request_id: int, key: str, value: Any,
            client: Optional[str] = None) -> "Request":
        return cls(op="PUT", request_id=request_id, key=key, value=value,
                   client=client)

    @classmethod
    def batch(cls, request_id: int, ops: Iterable[BatchOp],
              client: Optional[str] = None) -> "Request":
        return cls(op="BATCH", request_id=request_id, ops=tuple(ops),
                   client=client)

    @classmethod
    def stats(cls, request_id: int) -> "Request":
        return cls(op="STATS", request_id=request_id)

    # -- wire form ---------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"v": self.version, "id": self.request_id,
                                   "op": self.op}
        if self.client is not None:
            payload["client"] = self.client
        if self.op in ("GET", "PUT"):
            payload["key"] = self.key
        if self.op == "PUT":
            payload["value"] = self.value
        if self.op == "BATCH":
            payload["ops"] = [op.to_payload() for op in self.ops]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Request":
        _require_version(payload)
        request_id = _require_id(payload)
        op = payload.get("op")
        if op not in REQUEST_OPS:
            raise ProtocolError(E_UNKNOWN_OP,
                                f"unknown request op {op!r} (expected one "
                                f"of {', '.join(REQUEST_OPS)})")
        client = payload.get("client")
        if client is not None and not isinstance(client, str):
            raise ProtocolError(E_BAD_REQUEST,
                                f"client must be a string, got {client!r}")
        key = value = None
        ops: Tuple[BatchOp, ...] = ()
        if op in ("GET", "PUT"):
            key = _require_key(payload)
        if op == "PUT":
            if "value" not in payload:
                raise ProtocolError(E_BAD_REQUEST,
                                    f"PUT({key!r}) is missing its value")
            value = payload["value"]
        if op == "BATCH":
            entries = payload.get("ops")
            if not isinstance(entries, list) or not entries:
                raise ProtocolError(E_BAD_REQUEST,
                                    "BATCH needs a non-empty 'ops' list")
            ops = tuple(BatchOp.from_payload(entry) for entry in entries)
        return cls(op=op, request_id=request_id, key=key, value=value,
                   client=client, ops=ops)


@dataclass(frozen=True)
class Response:
    """A decoded server response; ``ok=False`` carries a typed error."""

    request_id: int
    ok: bool
    value: Any = None
    results: Optional[Tuple[Any, ...]] = None
    stats: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    message: Optional[str] = None
    version: int = PROTOCOL_VERSION

    # -- builders ----------------------------------------------------------
    @classmethod
    def success(cls, request_id: int, value: Any = None,
                results: Optional[Iterable[Any]] = None,
                stats: Optional[Dict[str, Any]] = None) -> "Response":
        return cls(request_id=request_id, ok=True, value=value,
                   results=None if results is None else tuple(results),
                   stats=stats)

    @classmethod
    def failure(cls, request_id: int, code: str,
                message: str) -> "Response":
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        return cls(request_id=request_id, ok=False, error=code,
                   message=message)

    def raise_for_error(self) -> "Response":
        """Re-raise a failure response as a :class:`ProtocolError`."""
        if not self.ok:
            raise ProtocolError(self.error or E_INTERNAL,
                                self.message or "request failed")
        return self

    # -- wire form ---------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"v": self.version, "id": self.request_id,
                                   "ok": self.ok}
        if self.ok:
            if self.results is not None:
                payload["results"] = list(self.results)
            elif self.stats is not None:
                payload["stats"] = self.stats
            else:
                payload["value"] = self.value
        else:
            payload["error"] = self.error
            payload["message"] = self.message
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Response":
        _require_version(payload)
        request_id = _require_id(payload)
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise ProtocolError(E_MALFORMED,
                                f"response 'ok' must be a boolean, "
                                f"got {ok!r}")
        if not ok:
            code = payload.get("error")
            if code not in ERROR_CODES:
                raise ProtocolError(E_MALFORMED,
                                    f"unknown response error code {code!r}")
            return cls(request_id=request_id, ok=False, error=code,
                       message=str(payload.get("message", "")))
        results = payload.get("results")
        if results is not None and not isinstance(results, list):
            raise ProtocolError(E_MALFORMED,
                                "response 'results' must be a list")
        stats = payload.get("stats")
        if stats is not None and not isinstance(stats, dict):
            raise ProtocolError(E_MALFORMED,
                                "response 'stats' must be an object")
        return cls(request_id=request_id, ok=True,
                   value=payload.get("value"),
                   results=None if results is None else tuple(results),
                   stats=stats)
