"""Asyncio service layer: the KV store behind a real front door.

Splits cleanly into *protocol* (length-prefixed JSON frames with typed
error codes — :mod:`~repro.service.protocol`), *transport* (in-process
loopback for deterministic CI runs, TCP for real load —
:mod:`~repro.service.transport`), *server* (batch execution against the
:class:`~repro.kvstore.sharded.ShardedKVStore` simulation, graceful
drain — :mod:`~repro.service.server`) and *client* (async
:class:`KVClient` with reconnect + a sync wrapper —
:mod:`~repro.service.client`).  ``python -m repro.service`` serves TCP
or runs the loopback load bench.

>>> import asyncio
>>> from repro.service import KVClient, KVService, ServiceServer
>>> async def demo():
...     server = ServiceServer(KVService(shard_count=2, seed=7))
...     async with KVClient.loopback(server) as client:
...         await client.put("user:alice", {"role": "admin"})
...         value = await client.get("user:alice")
...     await server.shutdown()
...     return value
>>> asyncio.run(demo())
{'role': 'admin'}
"""

from .client import (KVClient, ServiceError, ServiceUnavailableError,
                     SyncKVClient)
from .loadgen import LoadReport, run_loopback_load
from .protocol import (ERROR_CODES, MAX_FRAME_BYTES, PROTOCOL_VERSION,
                       BatchOp, FrameDecoder, ProtocolError, Request,
                       Response, encode_frame)
from .server import KVService, ServiceServer, serve_tcp
from .transport import (LoopbackTransport, TcpTransport, Transport,
                        loopback_pair, open_tcp_transport)

__all__ = [
    "BatchOp", "ERROR_CODES", "FrameDecoder", "KVClient", "KVService",
    "LoadReport", "LoopbackTransport", "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION", "ProtocolError", "Request", "Response",
    "ServiceError", "ServiceServer", "ServiceUnavailableError",
    "SyncKVClient", "TcpTransport",
    "Transport", "encode_frame", "loopback_pair", "open_tcp_transport",
    "run_loopback_load", "serve_tcp",
]
