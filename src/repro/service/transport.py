"""Pluggable transports: the same frames over queues or sockets.

A :class:`Transport` moves whole protocol payloads between two endpoints;
everything above it (:mod:`~repro.service.server`,
:mod:`~repro.service.client`) is transport-blind.  Two implementations:

* :class:`LoopbackTransport` — an in-process pair connected by byte
  queues.  Payloads still round-trip through ``encode_frame`` /
  :class:`~repro.service.protocol.FrameDecoder`, so the wire format is
  exercised bit-for-bit, but no socket, thread or wall clock is
  involved: a loopback client/server session is as deterministic as the
  simulation behind it — the mode CI pins digests on.
* :class:`TcpTransport` — the same frames over an
  ``asyncio`` TCP stream (``open_connection`` / ``start_server``), the
  deployment shape for real load.

Both ends treat a clean EOF as ``receive() -> None`` and framing garbage
as a typed :class:`~repro.service.protocol.ProtocolError`.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, Optional, Protocol, Tuple

from .protocol import (HEADER_BYTES, MAX_FRAME_BYTES, E_FRAME, FrameDecoder,
                       ProtocolError, decode_payload, encode_frame)


class Transport(Protocol):
    """What the server and client require of a connection."""

    @property
    def peer(self) -> str:
        """Human-readable endpoint description (logs, errors)."""
        ...

    async def send(self, payload: Dict[str, Any]) -> None:
        """Frame and deliver one payload; raises on a closed transport."""
        ...

    async def receive(self) -> Optional[Dict[str, Any]]:
        """The next payload, or ``None`` once the peer closed cleanly."""
        ...

    async def close(self) -> None:
        """Release the connection; idempotent."""
        ...


class LoopbackTransport:
    """One endpoint of an in-process, byte-faithful connection.

    Create endpoints in pairs via :func:`loopback_pair`; bytes written on
    one side surface on the other through an ``asyncio.Queue``, after a
    full encode → decode round trip of the real wire format.
    """

    def __init__(self, inbound: "asyncio.Queue[Optional[bytes]]",
                 outbound: "asyncio.Queue[Optional[bytes]]",
                 peer: str) -> None:
        self._inbound = inbound
        self._outbound = outbound
        self._peer = peer
        self._decoder = FrameDecoder()
        self._ready: Deque[Dict[str, Any]] = deque()
        self._closed = False
        self._eof = False

    @property
    def peer(self) -> str:
        return self._peer

    async def send(self, payload: Dict[str, Any]) -> None:
        if self._closed:
            raise ConnectionError(f"loopback transport to {self._peer} "
                                  "is closed")
        await self._outbound.put(encode_frame(payload))

    async def receive(self) -> Optional[Dict[str, Any]]:
        while not self._ready:
            if self._eof:
                return None
            chunk = await self._inbound.get()
            if chunk is None:            # peer hung up
                self._eof = True
                return None
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.popleft()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self._outbound.put(None)


def loopback_pair(label: str = "loopback"
                  ) -> Tuple[LoopbackTransport, LoopbackTransport]:
    """A connected ``(client_end, server_end)`` transport pair."""
    to_server: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
    to_client: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
    client_end = LoopbackTransport(to_client, to_server, f"{label}:server")
    server_end = LoopbackTransport(to_server, to_client, f"{label}:client")
    return client_end, server_end


class TcpTransport:
    """Protocol frames over an asyncio TCP stream."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        peername = writer.get_extra_info("peername")
        self._peer = (f"{peername[0]}:{peername[1]}"
                      if isinstance(peername, tuple) and len(peername) >= 2
                      else str(peername))
        self._closed = False

    @property
    def peer(self) -> str:
        return self._peer

    async def send(self, payload: Dict[str, Any]) -> None:
        if self._closed:
            raise ConnectionError(f"transport to {self._peer} is closed")
        self._writer.write(encode_frame(payload))
        await self._writer.drain()

    async def receive(self) -> Optional[Dict[str, Any]]:
        try:
            header = await self._reader.readexactly(HEADER_BYTES)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:          # clean EOF between frames
                return None
            raise ProtocolError(E_FRAME,
                                "connection dropped inside a frame header")
        except (ConnectionError, OSError):
            return None
        length = int.from_bytes(header, "big")
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(E_FRAME,
                                f"frame length {length} exceeds the "
                                f"{MAX_FRAME_BYTES}-byte limit")
        try:
            body = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(E_FRAME,
                                "connection dropped inside a frame body")
        return decode_payload(body)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def open_tcp_transport(host: str, port: int) -> TcpTransport:
    """Dial ``host:port`` and wrap the stream in a :class:`TcpTransport`."""
    reader, writer = await asyncio.open_connection(host, port)
    return TcpTransport(reader, writer)
