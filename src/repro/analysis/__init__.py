"""Result reporting helpers used by the benchmark harness."""

from .summary import Stats, rate, summarize
from .tables import Table, series, verdict

__all__ = ["Stats", "Table", "rate", "series", "summarize", "verdict"]
