"""Aggregate statistics over repeated experiment runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class Stats:
    """Summary statistics of one measured quantity."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def __repr__(self) -> str:
        return (f"Stats(n={self.count}, mean={self.mean:.3f} "
                f"± {self.stdev:.3f}, range=[{self.minimum:.3f}, "
                f"{self.maximum:.3f}])")


def summarize(values: Sequence[float]) -> Optional[Stats]:
    """Mean/stdev/min/max of a sample (``None`` for an empty one)."""
    data = [float(value) for value in values]
    if not data:
        return None
    mean = sum(data) / len(data)
    if len(data) > 1:
        variance = sum((value - mean) ** 2 for value in data) / (len(data) - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    return Stats(count=len(data), mean=mean, stdev=stdev,
                 minimum=min(data), maximum=max(data))


def rate(hits: int, total: int) -> float:
    """A safe ratio (0.0 when the denominator is zero)."""
    return hits / total if total else 0.0
