"""ASCII tables and series: the output format of the benchmark harness.

The paper has no numeric tables (it is a theory extended abstract); the
bench harness prints the *claims matrix* instead — one row per
configuration, with the measured verdicts.  These helpers keep that output
uniform and diff-friendly (EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


class Table:
    """A fixed-column ASCII table.

    >>> table = Table("demo", ["n", "t", "ok"])
    >>> table.row(9, 1, True)
    >>> print(table.render())       # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([_fmt(value) for value in values])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        header = " | ".join(col.ljust(widths[i])
                            for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i])
                                    for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def series(label: str, points: Iterable[Any]) -> str:
    """One-line rendering of a measured series."""
    return f"{label}: " + ", ".join(_fmt(point) for point in points)


def verdict(condition: bool, ok: str = "HOLDS", bad: str = "VIOLATED") -> str:
    """Uniform claim verdicts in bench output."""
    return ok if condition else bad
