"""Canned end-to-end scenarios: one call = one experiment run.

These are the workhorses behind the integration tests, the benchmark
harness and the examples.  A scenario stands up a cluster, installs faults
(transient bursts before τ_no_tr, Byzantine strategies throughout), drives
a read/write workload, and returns the history plus stabilization report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..checkers.atomicity import check_linearizable
from ..checkers.history import History, Operation
from ..checkers.regularity import NO_INITIAL
from ..checkers.stabilization import StabilizationReport, stabilization_report
from ..faults.byzantine import strategy_factory
from ..faults.schedule import FaultTimeline
from ..faults.transient import TransientFaultInjector
from ..kvstore.pipeline import Pipeline
from ..kvstore.sharded import ShardedKVStore
from ..registers.bounded_seq import WsnConfig
from ..registers.system import (Cluster, ClusterConfig, build_mwmr,
                                build_swsr_atomic, build_swsr_regular)
from ..sim.errors import SimulationLimitReached
from .generators import ClientDriver, ValueStream, alternating_schedule

#: default register initial value, shared by every scenario family (the
#: checkers treat it as virtual write #-1 — keep one source of truth).
INITIAL = "v_init"


@dataclass(frozen=True)
class ScenarioSummary:
    """The picklable cross-process boundary of a scenario run.

    A :class:`ScenarioResult` drags the whole :class:`Cluster` (scheduler,
    network, live client processes) along — none of it picklable, all of it
    useless to an aggregator.  ``ScenarioResult.summarize()`` reduces a run
    to this flat record of verdicts, counters and τ-timings built from
    plain ``str``/``int``/``float``/``bool`` values, which is what sweep
    workers ship back to the parent process (see ``repro.runner``).

    Contract for scenario authors: every field must stay picklable and
    deterministic — derived from the simulated execution only, never from
    wall-clock time, object identities or iteration order of unordered
    containers.  ``history_digest`` fingerprints the full operation history
    so determinism can be asserted without shipping the history itself.
    """

    completed: bool
    tau_no_tr: float
    ops: int
    writes: int
    reads: int
    messages_sent: int
    events_processed: int
    sim_end: float
    corruptions: int
    history_digest: str
    stable: Optional[bool] = None
    tau_1w: Optional[float] = None
    tau_stab: Optional[float] = None
    stabilization_time: Optional[float] = None
    dirty_reads: Optional[int] = None
    total_reads: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict rendering (JSON-ready, stable key order)."""
        return {
            "completed": self.completed,
            "corruptions": self.corruptions,
            "dirty_reads": self.dirty_reads,
            "events_processed": self.events_processed,
            "history_digest": self.history_digest,
            "messages_sent": self.messages_sent,
            "ops": self.ops,
            "reads": self.reads,
            "sim_end": self.sim_end,
            "stabilization_time": self.stabilization_time,
            "stable": self.stable,
            "tau_1w": self.tau_1w,
            "tau_no_tr": self.tau_no_tr,
            "tau_stab": self.tau_stab,
            "total_reads": self.total_reads,
            "writes": self.writes,
        }


def history_digest(history: History) -> str:
    """A short, stable fingerprint of an operation history."""
    rendering = history.format().encode("utf-8")
    return hashlib.sha256(rendering).hexdigest()[:16]


@dataclass
class ScenarioResult:
    """Everything an experiment needs to report."""

    cluster: Cluster
    history: History
    completed: bool                      # all operations terminated
    report: Optional[StabilizationReport] = None
    tau_no_tr: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def messages_sent(self) -> int:
        return self.cluster.network.messages_sent

    def summarize(self) -> ScenarioSummary:
        """Reduce to the compact, picklable record sweep workers return."""
        injector = self.extra.get("injector")
        report = self.report
        return ScenarioSummary(
            completed=self.completed,
            tau_no_tr=self.tau_no_tr,
            ops=len(self.history),
            writes=len(self.history.writes()),
            reads=len(self.history.reads()),
            messages_sent=self.messages_sent,
            events_processed=self.cluster.scheduler.events_processed,
            sim_end=self.cluster.scheduler.now,
            corruptions=injector.corruptions if injector else 0,
            history_digest=history_digest(self.history),
            stable=report.stable if report else None,
            tau_1w=report.tau_1w if report else None,
            tau_stab=report.tau_stab if report else None,
            stabilization_time=(report.stabilization_time
                                if report else None),
            dirty_reads=report.dirty_reads if report else None,
            total_reads=report.total_reads if report else None,
        )


def _burst_fractions(corruption_times: Sequence[float],
                     corruption_fraction: Union[float, Sequence[float]]
                     ) -> List[float]:
    """Per-burst corruption fractions, broadcasting a scalar.

    Passing a sequence gives each burst in ``corruption_times`` its own
    severity (a *corruption schedule*); its length must match.
    """
    if isinstance(corruption_fraction, (int, float)):
        return [float(corruption_fraction)] * len(corruption_times)
    fractions = [float(fraction) for fraction in corruption_fraction]
    if len(fractions) != len(corruption_times):
        raise ValueError(
            f"corruption_fraction sequence has {len(fractions)} entries "
            f"for {len(corruption_times)} corruption times")
    return fractions


def _as_timeline(timeline: Union[dict, FaultTimeline]) -> FaultTimeline:
    if isinstance(timeline, FaultTimeline):
        return timeline
    return FaultTimeline.from_dict(timeline)


def _drive_swsr_workload(cluster: Cluster, writer, reader, start: float,
                         num_writes: int, num_reads: int, op_gap: float,
                         reader_offset: Optional[float],
                         max_events: int) -> Tuple[History, bool]:
    """Schedule the alternating write/read workload and run it out.

    Shared by every SWSR-shaped scenario family; returns the operation
    history and whether all operations terminated within the budget.
    """
    write_times, read_times = alternating_schedule(
        start, max(num_writes, num_reads), op_gap, reader_offset)
    values = ValueStream()
    writer_driver = ClientDriver(cluster.scheduler, writer)
    reader_driver = ClientDriver(cluster.scheduler, reader)
    for time in write_times[:num_writes]:
        writer_driver.at(time, lambda w=writer: w.write(values.next()))
    for time in read_times[:num_reads]:
        reader_driver.at(time, lambda r=reader: r.read())
    completed = True
    try:
        cluster.scheduler.run_until(
            lambda: (writer_driver.all_done and reader_driver.all_done),
            max_events=max_events)
    except SimulationLimitReached:
        completed = False
    history = History.from_handles(writer_driver.handles
                                   + reader_driver.handles)
    return history, completed


def _install_byzantine(cluster: Cluster, byzantine: Optional[Dict[str, str]],
                       byzantine_count: int, byzantine_strategy: str) -> None:
    """Install strategies either from an explicit {server: name} map or

    as ``byzantine_count`` servers all running ``byzantine_strategy``.
    """
    if byzantine:
        for server_id, name in byzantine.items():
            cluster.make_byzantine([server_id], strategy_factory(name, cluster))
    elif byzantine_count > 0:
        ids = cluster.server_ids[:byzantine_count]
        cluster.make_byzantine(ids,
                               strategy_factory(byzantine_strategy, cluster))


def _build_swsr_cluster(kind: str, n: int, t: int, seed: int,
                        transport: str, enforce_resilience: bool,
                        record_trace: bool, trace_backend: Optional[str],
                        initial: Any, synchronous: bool = False,
                        wsn_config: Optional[WsnConfig] = None):
    """Stand up the cluster + writer/reader pair every SWSR-shaped

    scenario family shares.  ``trace_backend=None`` derives from
    ``record_trace`` ("full" when true, else "counting").
    """
    if trace_backend is None:
        trace_backend = "full" if record_trace else "counting"
    config = ClusterConfig(
        n=n, t=t, seed=seed, synchronous=synchronous, transport=transport,
        enforce_resilience=enforce_resilience, trace_backend=trace_backend)
    cluster = Cluster(config)
    if kind == "regular":
        writer, reader = build_swsr_regular(cluster, initial=initial)
    elif kind == "atomic":
        writer, reader = build_swsr_atomic(cluster, initial=initial,
                                           config=wsn_config)
    else:
        raise ValueError(f"unknown register kind {kind!r}")
    return cluster, writer, reader


def _schedule_bursts(injector: TransientFaultInjector, targets,
                     corruption_times: Sequence[float],
                     corruption_fraction: Union[float, Sequence[float]]
                     ) -> float:
    """Schedule the transient bursts; returns their τ_no_tr (0 if none).

    Fractions are default-bound per iteration: a bare ``lambda:
    ...fraction`` would make every burst use the *last* fraction (the
    late-binding closure hazard).
    """
    fractions = _burst_fractions(corruption_times, corruption_fraction)
    target_list = list(targets)
    for time, fraction in zip(corruption_times, fractions):
        injector.at(time, lambda fraction=fraction: injector.corrupt_all(
            target_list, fraction))
    return max(corruption_times) if corruption_times else 0.0


def _swsr_result(cluster: Cluster, writer, reader,
                 injector: TransientFaultInjector, history: History,
                 completed: bool, kind: str, initial: Any, tau: float,
                 **extra: Any) -> ScenarioResult:
    """Report + result assembly shared by the SWSR-shaped families."""
    mode = "atomic" if kind == "atomic" else "regular"
    report = None
    if completed and history.reads():
        report = stabilization_report(history, mode=mode, initial=initial,
                                      tau_no_tr=tau)
    return ScenarioResult(cluster=cluster, history=history,
                          completed=completed, report=report,
                          tau_no_tr=tau,
                          extra={"writer": writer, "reader": reader,
                                 "injector": injector, **extra})


def run_swsr_scenario(kind: str = "regular", n: int = 9, t: int = 1,
                      seed: int = 0, synchronous: bool = False,
                      transport: str = "direct",
                      num_writes: int = 6, num_reads: int = 6,
                      op_gap: float = 10.0,
                      reader_offset: Optional[float] = None,
                      corruption_times: Sequence[float] = (),
                      corruption_fraction: Union[float, Sequence[float]] = 1.0,
                      link_garbage: int = 0,
                      byzantine: Optional[Dict[str, str]] = None,
                      byzantine_count: int = 0,
                      byzantine_strategy: str = "random-garbage",
                      wsn_modulus: Optional[int] = None,
                      initial: Any = INITIAL,
                      enforce_resilience: bool = True,
                      max_events: int = 2_000_000,
                      record_trace: bool = False,
                      trace_backend: Optional[str] = None,
                      fault_timeline: Optional[Union[dict, "FaultTimeline"]]
                      = None) -> ScenarioResult:
    """Run a full SWSR experiment (Figure 2/3/5 depending on flags).

    * ``kind``: ``"regular"`` (Figure 2 / 5) or ``"atomic"`` (Figure 3).
    * ``synchronous``: use the Appendix-A model (``t < n/3``).
    * ``corruption_times``: transient bursts; the last one is τ_no_tr.
      All server and client protocol variables are corrupted (fraction-
      sampled) and, if ``link_garbage > 0``, garbage lands on every link.
    * ``trace_backend``: "full" / "counting" / "null"; default derives
      from ``record_trace`` ("full" when true, else "counting").
    * ``fault_timeline``: a declarative :class:`~repro.faults.FaultTimeline`
      (or its dict form) installed on top of the scalar fault knobs.
    * writes start after τ_no_tr (the paper's assumption (b)); reads are
      offset by ``reader_offset`` (default ``op_gap / 2``: no concurrency).

    >>> result = run_swsr_scenario(kind="atomic", seed=1, num_writes=2,
    ...                            num_reads=2, corruption_times=[2.0])
    >>> result.completed, result.summarize().stable
    (True, True)
    """
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience, record_trace,
        trace_backend, initial, synchronous=synchronous,
        wsn_config=WsnConfig(wsn_modulus) if wsn_modulus else None)
    _install_byzantine(cluster, byzantine, byzantine_count,
                       byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_no_tr = _schedule_bursts(injector,
                                 cluster.servers + [writer, reader],
                                 corruption_times, corruption_fraction)
    if link_garbage > 0 and corruption_times:
        first = min(corruption_times)
        injector.at(first, lambda: injector.garbage_everywhere(
            [writer.pid, reader.pid], cluster.server_ids,
            per_link=link_garbage))
    if fault_timeline is not None:
        timeline = _as_timeline(fault_timeline)
        timeline.install(cluster, injector)
        tau_no_tr = max(tau_no_tr, timeline.tau_no_tr)

    start = tau_no_tr + 1.0
    history, completed = _drive_swsr_workload(
        cluster, writer, reader, start, num_writes, num_reads, op_gap,
        reader_offset, max_events)
    return _swsr_result(cluster, writer, reader, injector, history,
                        completed, kind, initial, tau_no_tr)


def run_mwmr_scenario(m: int = 3, n: int = 9, t: int = 1, seed: int = 0,
                      ops_per_process: int = 2, op_gap: float = 40.0,
                      stagger: float = 7.0,
                      corruption_times: Sequence[float] = (),
                      corruption_fraction: Union[float, Sequence[float]] = 0.3,
                      byzantine_count: int = 0,
                      byzantine_strategy: str = "random-garbage",
                      seq_bound: int = 2 ** 64,
                      k: Optional[int] = None,
                      transport: str = "direct",
                      enforce_resilience: bool = True,
                      max_events: int = 6_000_000,
                      concurrent: bool = False,
                      trace_backend: str = "counting") -> ScenarioResult:
    """Run a full MWMR experiment (Figure 4).

    Each of the ``m`` processes alternates ``mwmr_write`` / ``mwmr_read``.
    With ``concurrent=False`` the stagger spaces processes apart so most
    operations are sequential; ``concurrent=True`` makes them collide.

    ``corruption_fraction`` is deliberately partial by default: corrupting
    *every* server copy of a register that is never written again leaves
    its readers without any quorum — and the MWMR scan (Figure 4 line
    01/09) runs *before* the write that would repair it, so full corruption
    of all ``m`` registers deadlocks the construction.  This liveness
    subtlety of the extended abstract is documented in EXPERIMENTS.md
    (T4 notes) and demonstrated by
    ``tests/test_registers_mwmr.py::TestLiveness``.

    >>> result = run_mwmr_scenario(m=2, seed=4, ops_per_process=1)
    >>> result.completed, len(result.history)
    (True, 4)
    """
    config = ClusterConfig(n=n, t=t, seed=seed, transport=transport,
                           enforce_resilience=enforce_resilience,
                           trace_backend=trace_backend)
    cluster = Cluster(config)
    register = build_mwmr(cluster, m, seq_bound=seq_bound, k=k)
    _install_byzantine(cluster, None, byzantine_count, byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_no_tr = max(corruption_times) if corruption_times else 0.0
    # bind per-burst fractions (see run_swsr_scenario: closure hazard).
    fractions = _burst_fractions(corruption_times, corruption_fraction)
    corruption_targets = cluster.servers + register.processes
    for time, fraction in zip(corruption_times, fractions):
        injector.at(time, lambda fraction=fraction: injector.corrupt_all(
            corruption_targets, fraction=fraction))

    start = tau_no_tr + 1.0
    values = ValueStream()
    drivers = []
    for index, process in enumerate(register.processes):
        driver = ClientDriver(cluster.scheduler, process)
        drivers.append(driver)
        offset = 0.0 if concurrent else index * stagger
        for round_index in range(ops_per_process):
            base = start + offset + round_index * op_gap
            driver.at(base, lambda p=process: p.mwmr_write(values.next()))
            driver.at(base + op_gap / 2, lambda p=process: p.mwmr_read())

    completed = True
    try:
        cluster.scheduler.run_until(
            lambda: all(driver.all_done for driver in drivers),
            max_events=max_events)
    except SimulationLimitReached:
        completed = False

    handles = [handle for driver in drivers for handle in driver.handles]
    history = History.from_handles(handles)
    return ScenarioResult(cluster=cluster, history=history,
                          completed=completed, tau_no_tr=tau_no_tr,
                          extra={"register": register,
                                 "injector": injector})


def run_partition_scenario(kind: str = "regular", n: int = 9, t: int = 1,
                           seed: int = 0, transport: str = "direct",
                           num_writes: int = 6, num_reads: int = 6,
                           op_gap: float = 10.0,
                           reader_offset: Optional[float] = None,
                           partition_count: Optional[int] = None,
                           partition_start: Optional[float] = None,
                           partition_duration: Optional[float] = None,
                           corruption_times: Sequence[float] = (),
                           corruption_fraction: Union[float,
                                                      Sequence[float]] = 1.0,
                           byzantine_count: int = 0,
                           byzantine_strategy: str = "random-garbage",
                           initial: Any = INITIAL,
                           enforce_resilience: bool = True,
                           max_events: int = 2_000_000,
                           record_trace: bool = False,
                           trace_backend: Optional[str] = None
                           ) -> ScenarioResult:
    """Partition-during-write: a server group drops off mid-workload.

    After the optional transient bursts settle, the write/read workload
    starts — and *while it is running*, ``partition_count`` servers
    (default ``t``, taken from the tail of the server list so they do not
    overlap a Byzantine prefix) are cut off from the clients for
    ``partition_duration`` time units, then healed.  Messages sent across
    the cut are dropped and counted (``network.messages_dropped``).

    Stabilization is judged from the heal instant: with at most ``t``
    servers partitioned, operations keep terminating (they are
    indistinguishable from silent Byzantine servers to the quorum logic),
    and after the heal the condition must hold again.

    Only meaningful on the ``direct`` transport: the datalink transport's
    packet channels bypass the network's link layer.
    """
    if transport != "direct":
        raise ValueError("partition scenarios require the direct transport "
                         "(datalink channels bypass Network links)")
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience, record_trace,
        trace_backend, initial)
    _install_byzantine(cluster, None, byzantine_count, byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_bursts = _schedule_bursts(injector,
                                  cluster.servers + [writer, reader],
                                  corruption_times, corruption_fraction)

    start = tau_bursts + 1.0
    count = t if partition_count is None else partition_count
    group = cluster.server_ids[n - count:] if count else []
    p_start = (start + 1.5 * op_gap if partition_start is None
               else partition_start)
    duration = 2.0 * op_gap if partition_duration is None \
        else partition_duration
    timeline = FaultTimeline()
    if group:
        timeline.partition(p_start, p_start + duration, group)
    timeline.install(cluster, injector)
    tau_report = max(tau_bursts, timeline.tau_no_tr)

    history, completed = _drive_swsr_workload(
        cluster, writer, reader, start, num_writes, num_reads, op_gap,
        reader_offset, max_events)
    return _swsr_result(cluster, writer, reader, injector, history,
                        completed, kind, initial, tau_report,
                        timeline=timeline, partition_group=group)


@dataclass
class KVScenarioResult:
    """Result of a sharded KV run: many clusters, one merged history.

    The per-key verdict (``linearizable``) judges the *post-τ* suffix of
    every key's register history — exactly the window in which the MWMR
    construction owes atomicity (writes restart after the last transient
    event; the paper's assumption (b) per shard).
    """

    store: ShardedKVStore
    history: History
    completed: bool
    tau_no_tr: float = 0.0
    #: per-shard last-transient instants (shards are independent
    #: simulations, so each key is judged against its *own* shard's τ).
    tau_by_shard: List[float] = field(default_factory=list)
    per_key_linearizable: Dict[str, bool] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def linearizable(self) -> bool:
        return all(self.per_key_linearizable.values())

    @property
    def messages_sent(self) -> int:
        return self.store.messages_sent

    def summarize(self) -> ScenarioSummary:
        """Reduce to the shared picklable summary (``stable`` carries the
        all-keys-linearizable verdict)."""
        return ScenarioSummary(
            completed=self.completed,
            tau_no_tr=self.tau_no_tr,
            ops=len(self.history),
            writes=len(self.history.writes()),
            reads=len(self.history.reads()),
            messages_sent=self.store.messages_sent,
            events_processed=self.store.events_processed,
            sim_end=self.store.now,
            corruptions=int(self.extra.get("corruptions", 0)),
            history_digest=history_digest(self.history),
            stable=self.completed and self.linearizable,
        )


def run_kv_scenario(shard_count: int = 2, n: int = 9, t: int = 1,
                    seed: int = 0, client_count: int = 2,
                    num_keys: int = 4, rounds: int = 2,
                    pipelined: bool = True,
                    byzantine_count: int = 0,
                    byzantine_strategy: str = "random-garbage",
                    corruption_times: Sequence[float] = (),
                    corruption_fraction: Union[float, Sequence[float]] = 0.2,
                    fault_timelines: Optional[Dict[Any, Any]] = None,
                    trace_backend: Optional[str] = "null",
                    enforce_resilience: bool = True,
                    max_events: int = 6_000_000) -> KVScenarioResult:
    """Drive a sharded KV workload end to end (the ``kv`` runner family).

    Three phases, all deterministic:

    1. **create** — every key (``k0..k{num_keys-1}``) receives an initial
       ``put`` (round-robin across the logical clients), so each shard
       materializes its registers before any fault fires;
    2. **faults** — transient bursts at ``corruption_times`` (servers
       only, fraction-sampled, on *every* shard, anchored to each shard's
       local clock) plus optional per-shard ``fault_timelines``
       (``{shard_index: FaultTimeline-or-dict}``, times relative to the
       shard clock).  Static Byzantine servers (``byzantine_count`` per
       shard, at most ``t``) are installed from the start;
    3. **workload** — ``rounds`` rounds; each round re-``put``\\s every
       key and then ``get``\\s it back, with a flush barrier between the
       puts and the gets (writes-repair-then-read, the paper's
       stabilization posture).  ``pipelined=True`` drains each batch
       through the :class:`~repro.kvstore.pipeline.Pipeline` (operations
       in flight on every shard and client simultaneously);
       ``pipelined=False`` runs one operation at a time — the serial
       baseline the KV bench compares against.

    The verdict is per-key linearizability of the post-τ history (each
    key judged against its own shard's τ) — see :class:`KVScenarioResult`.

    Liveness caveat, inherited from the MWMR construction: a burst that
    corrupts *every* server copy of some per-key register livelocks the
    scan until the register's owner rewrites it (see the
    :func:`run_mwmr_scenario` docstring and
    ``tests/test_registers_mwmr.py::TestLiveness``) — keep
    ``corruption_fraction`` partial, as the default does.

    >>> result = run_kv_scenario(shard_count=2, num_keys=2, rounds=1,
    ...                          seed=3)
    >>> result.completed and result.linearizable
    True
    >>> len(result.history)           # 2 creates + 1 round of put+get
    6
    """
    if rounds < 1:
        raise ValueError("need at least one workload round")
    store = ShardedKVStore(
        shard_count=shard_count, n=n, t=t, seed=seed,
        client_count=client_count, trace_backend=trace_backend,
        enforce_resilience=enforce_resilience)
    clients = store.client_pids
    keys = [f"k{index}" for index in range(num_keys)]
    for cluster in store.group:
        _install_byzantine(cluster, None, byzantine_count,
                           byzantine_strategy)

    values = ValueStream()
    handles: List[Any] = []
    completed = True
    pipe = Pipeline(store) if pipelined else None

    def batch(ops: List[Tuple[str, str, str, Optional[Any]]]) -> bool:
        """Run one batch of (kind, client, key[, value]) operations."""
        try:
            if pipe is not None:
                staged = []
                for kind, client, key, value in ops:
                    staged.append(pipe.put(client, key, value)
                                  if kind == "put" else pipe.get(client, key))
                pipe.flush(max_events=max_events)
                handles.extend(entry.handle for entry in staged)
            else:
                for kind, client, key, value in ops:
                    handle = (store.put(client, key, value)
                              if kind == "put" else store.get(client, key))
                    handles.append(handle)
                    store.run_ops([handle], max_events=max_events)
        except SimulationLimitReached:
            if pipe is not None:
                handles.extend(entry.handle for entry in pipe.issued
                               if entry.handle is not None)
                pipe.issued.clear()
            return False
        return True

    # -- phase 1: create every key ----------------------------------------
    completed = batch([("put", clients[index % len(clients)], key,
                        values.next())
                       for index, key in enumerate(keys)])

    # -- phase 2: faults, anchored per shard -------------------------------
    tau_by_shard = [0.0] * shard_count
    corruptions = 0
    if completed and (corruption_times or fault_timelines):
        fractions = _burst_fractions(corruption_times, corruption_fraction)
        timelines = {int(shard): _as_timeline(timeline)
                     for shard, timeline in (fault_timelines or {}).items()}
        out_of_range = sorted(shard for shard in timelines
                              if not 0 <= shard < shard_count)
        if out_of_range:
            raise ValueError(
                f"fault_timelines reference shards {out_of_range} but the "
                f"store has {shard_count} shard(s); a silently dropped "
                "timeline would fake a fault-free verdict")
        for shard, cluster in enumerate(store.group):
            injector = store.injector_for(shard)
            anchor = cluster.now
            tau_local = anchor
            for time, fraction in zip(corruption_times, fractions):
                injector.at(anchor + time,
                            lambda cluster=cluster, fraction=fraction,
                            injector=injector: injector.corrupt_all(
                                cluster.servers, fraction))
                tau_local = max(tau_local, anchor + time)
            timeline = timelines.get(shard)
            if timeline is not None:
                shifted = timeline.shifted(anchor)
                store.install_timeline(shard, shifted)
                tau_local = max(tau_local, anchor + timeline.tau_no_tr)
            tau_by_shard[shard] = tau_local
        for cluster, tau_local in zip(store.group, tau_by_shard):
            cluster.run(until=tau_local + 1.0)
        corruptions = sum(injector.corruptions
                          for injector in store._injectors.values())
    tau_no_tr = max(tau_by_shard)

    # -- phase 3: workload rounds (put barrier, then get barrier) ----------
    for round_index in range(rounds):
        if not completed:
            break
        completed = batch([
            ("put", clients[(round_index + index) % len(clients)], key,
             values.next())
            for index, key in enumerate(keys)])
        if not completed:
            break
        completed = batch([
            ("get", clients[(round_index + index + 1) % len(clients)], key,
             None)
            for index, key in enumerate(keys)])

    history = History.from_handles(handles)
    per_key = {}
    for key in keys:
        register = f"kv/{key}"
        tau_local = tau_by_shard[store.shard_for(key)]
        suffix = History(Operation(
            op.kind, op.process, op.value, op.invoke, op.response,
            register=op.register)
            for op in history.ops
            if op.register == register and op.invoke >= tau_local)
        per_key[key] = bool(check_linearizable(suffix).ok)
    return KVScenarioResult(
        store=store, history=history, completed=completed,
        tau_no_tr=tau_no_tr, tau_by_shard=tau_by_shard,
        per_key_linearizable=per_key,
        extra={"corruptions": corruptions, "pipeline": pipe,
               "keys": keys})


def run_mobile_byzantine_scenario(kind: str = "regular", n: int = 9,
                                  t: int = 1, seed: int = 0,
                                  transport: str = "direct",
                                  num_writes: int = 8, num_reads: int = 8,
                                  op_gap: float = 10.0,
                                  reader_offset: Optional[float] = None,
                                  rotations: int = 3,
                                  rotation_gap: Optional[float] = None,
                                  rotation_size: Optional[int] = None,
                                  rotation_strategy: str = "random-garbage",
                                  corruption_times: Sequence[float] = (),
                                  corruption_fraction: Union[
                                      float, Sequence[float]] = 1.0,
                                  initial: Any = INITIAL,
                                  enforce_resilience: bool = True,
                                  max_events: int = 2_000_000,
                                  record_trace: bool = False,
                                  trace_backend: Optional[str] = None
                                  ) -> ScenarioResult:
    """Mobile Byzantine rotation (footnote 1) under a live workload.

    The Byzantine set (size ``rotation_size``, default ``t``) hops across
    the server ring every ``rotation_gap`` time units (default
    ``2 * op_gap``), ``rotations`` times, while the writer and reader keep
    operating.  A server leaving the set re-joins the correct ones with
    *arbitrary* local state — the timeline corrupts it through the
    transient injector, which is exactly the situation the stabilization
    property covers.

    Stabilization is judged from the **last rotation**: a moving set is a
    sequence of transient disruptions, but once it stops moving the
    remaining (static, size ≤ t) Byzantine set must be tolerated forever.

    Liveness caveat: with a *non-responsive* rotation strategy (``silent``
    / ``crash``) a broadcast in flight across a rotation instant can see
    two mute servers — the old member dropped it before the handover, the
    new one after — which exceeds the ``n - t`` wait's fault budget and
    can legitimately starve an operation (``completed=False``).  Strict
    sweeps should rotate responsive liars (``random-garbage``, ``stale``).
    """
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience, record_trace,
        trace_backend, initial)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_bursts = _schedule_bursts(injector,
                                  cluster.servers + [writer, reader],
                                  corruption_times, corruption_fraction)

    start = tau_bursts + 1.0
    size = t if rotation_size is None else rotation_size
    gap = 2.0 * op_gap if rotation_gap is None else rotation_gap
    timeline = FaultTimeline()
    last_rotation = 0.0
    server_ids = cluster.server_ids
    for index in range(rotations):
        members = [server_ids[(index * size + offset) % n]
                   for offset in range(size)]
        time = start + index * gap
        timeline.byzantine(time, members, rotation_strategy)
        last_rotation = time
    timeline.install(cluster, injector)
    tau_report = max(tau_bursts, last_rotation)

    history, completed = _drive_swsr_workload(
        cluster, writer, reader, start, num_writes, num_reads, op_gap,
        reader_offset, max_events)
    return _swsr_result(cluster, writer, reader, injector, history,
                        completed, kind, initial, tau_report,
                        timeline=timeline)
