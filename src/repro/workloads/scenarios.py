"""Canned end-to-end scenarios: one call = one experiment run.

These are the workhorses behind the integration tests, the benchmark
harness and the examples.  A scenario stands up a cluster, installs faults
(transient bursts before τ_no_tr, Byzantine strategies throughout), drives
a read/write workload, and returns the history plus stabilization report.

Since the streaming refactor every family runs on the shared
:class:`~repro.workloads.engine.ScenarioEngine`: completed operations are
fed into an :class:`~repro.checkers.stream.ObservationStream` as drivers
finish them, so counters, the history digest and (for SWSR-shaped runs)
the stabilization report are online by-products of the run rather than
terminal passes over a materialized history.  Ordinary scenarios still
retain the full :class:`~repro.checkers.history.History` for replay and
confirmation paths; the long-horizon :func:`run_soak_scenario` family
switches retention off and runs arbitrarily long workloads under a
bounded peak-memory envelope.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..checkers.history import History
from ..checkers.online import OnlineTauTracker, StreamingLinearizer
from ..checkers.stabilization import StabilizationReport
from ..checkers.stream import ObservationStream, history_digest
from ..faults.byzantine import strategy_factory
from ..faults.schedule import RESHARD_KINDS, FaultTimeline
from ..faults.transient import TransientFaultInjector
from ..kvstore.pipeline import Pipeline
from ..kvstore.rebalance import RebalanceReport, Rebalancer
from ..kvstore.sharded import ShardedKVStore
from ..registers.bounded_seq import WsnConfig
from ..registers.system import (Cluster, ClusterConfig, build_mwmr,
                                build_swsr_atomic, build_swsr_regular)
from ..sim.errors import SimulationLimitReached
from .engine import ScenarioEngine
from .generators import ValueStream, alternating_schedule

__all__ = [
    "INITIAL", "KVScenarioResult", "ReshardScenarioResult",
    "ScenarioResult", "ScenarioSummary", "history_digest",
    "run_kv_scenario", "run_mobile_byzantine_scenario",
    "run_mwmr_scenario", "run_partition_scenario", "run_reshard_scenario",
    "run_soak_scenario", "run_swsr_scenario",
]

#: default register initial value, shared by every scenario family (the
#: checkers treat it as virtual write #-1 — keep one source of truth).
INITIAL = "v_init"


@dataclass(frozen=True)
class ScenarioSummary:
    """The picklable cross-process boundary of a scenario run.

    A :class:`ScenarioResult` drags the whole :class:`Cluster` (scheduler,
    network, live client processes) along — none of it picklable, all of it
    useless to an aggregator.  ``ScenarioResult.summarize()`` reduces a run
    to this flat record of verdicts, counters and τ-timings built from
    plain ``str``/``int``/``float``/``bool`` values, which is what sweep
    workers ship back to the parent process (see ``repro.runner``).

    Contract for scenario authors: every field must stay picklable and
    deterministic — derived from the simulated execution only, never from
    wall-clock time, object identities or iteration order of unordered
    containers.  ``history_digest`` fingerprints the full operation history
    so determinism can be asserted without shipping the history itself;
    counters and digest are read straight off the run's observation
    stream (single pass, no history re-render).
    """

    completed: bool
    tau_no_tr: float
    ops: int
    writes: int
    reads: int
    messages_sent: int
    events_processed: int
    sim_end: float
    corruptions: int
    history_digest: str
    stable: Optional[bool] = None
    tau_1w: Optional[float] = None
    tau_stab: Optional[float] = None
    stabilization_time: Optional[float] = None
    dirty_reads: Optional[int] = None
    total_reads: Optional[int] = None
    #: per-migration-epoch τ of live-resharding runs: one
    #: ``{"label", "start", "tau"}`` entry per rebalance handoff
    #: (``None`` for every other family).
    epoch_taus: Optional[Tuple[Dict[str, Any], ...]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict rendering (JSON-ready, stable key order)."""
        return {
            "completed": self.completed,
            "corruptions": self.corruptions,
            "dirty_reads": self.dirty_reads,
            "epoch_taus": (None if self.epoch_taus is None
                           else [dict(sorted(entry.items()))
                                 for entry in self.epoch_taus]),
            "events_processed": self.events_processed,
            "history_digest": self.history_digest,
            "messages_sent": self.messages_sent,
            "ops": self.ops,
            "reads": self.reads,
            "sim_end": self.sim_end,
            "stabilization_time": self.stabilization_time,
            "stable": self.stable,
            "tau_1w": self.tau_1w,
            "tau_no_tr": self.tau_no_tr,
            "tau_stab": self.tau_stab,
            "total_reads": self.total_reads,
            "writes": self.writes,
        }


@dataclass
class ScenarioResult:
    """Everything an experiment needs to report.

    ``stream`` is the run's observation pipeline; ``history`` is the
    materialized operation history when the scenario retained one
    (``None`` for memory-bounded soak runs).  ``extra["tracker"]`` holds
    the online τ-tracker of SWSR-shaped runs, so consumers (runner
    adapters, the fuzz harness) read verdicts off the stream instead of
    re-scanning the history.
    """

    cluster: Cluster
    history: Optional[History]
    completed: bool                      # all operations terminated
    report: Optional[StabilizationReport] = None
    tau_no_tr: float = 0.0
    stream: Optional[ObservationStream] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def messages_sent(self) -> int:
        return self.cluster.network.messages_sent

    def inversions_after(self, after: float) -> Optional[int]:
        """New/old-inversion pairs (both reads invoked at/after ``after``)
        counted by the run's online detector; ``None`` without one."""
        tracker = self.extra.get("tracker")
        if tracker is None:
            return None
        return tracker.inversions.pairs_after(after)

    def stream_report(self, tau_no_tr: float) -> Optional[StabilizationReport]:
        """Re-derive the stabilization report for a different τ_no_tr.

        The online tracker keeps enough state to answer any cut-off, so
        consumers that judge from a later instant (e.g. the fuzz harness
        covering mobile rotations) no longer rescan the history.
        """
        tracker = self.extra.get("tracker")
        if tracker is None:
            return None
        return tracker.report(tau_no_tr)

    def summarize(self) -> ScenarioSummary:
        """Reduce to the compact, picklable record sweep workers return."""
        injector = self.extra.get("injector")
        report = self.report
        ops, writes, reads, digest = _stream_counters(self.stream,
                                                      self.history)
        return ScenarioSummary(
            completed=self.completed,
            tau_no_tr=self.tau_no_tr,
            ops=ops,
            writes=writes,
            reads=reads,
            messages_sent=self.messages_sent,
            events_processed=self.cluster.scheduler.events_processed,
            sim_end=self.cluster.scheduler.now,
            corruptions=injector.corruptions if injector else 0,
            history_digest=digest,
            stable=report.stable if report else None,
            tau_1w=report.tau_1w if report else None,
            tau_stab=report.tau_stab if report else None,
            stabilization_time=(report.stabilization_time
                                if report else None),
            dirty_reads=report.dirty_reads if report else None,
            total_reads=report.total_reads if report else None,
        )


def _stream_counters(stream: Optional[ObservationStream],
                     history: Optional[History]
                     ) -> Tuple[int, int, int, str]:
    """(ops, writes, reads, digest) off the stream — single pass — with a
    history-walking fallback for hand-built results (tests)."""
    if stream is not None:
        return stream.ops, stream.writes, stream.reads, stream.digest()
    return (len(history), len(history.writes()), len(history.reads()),
            history_digest(history))


def _burst_fractions(corruption_times: Sequence[float],
                     corruption_fraction: Union[float, Sequence[float]]
                     ) -> List[float]:
    """Per-burst corruption fractions, broadcasting a scalar.

    Passing a sequence gives each burst in ``corruption_times`` its own
    severity (a *corruption schedule*); its length must match.
    """
    if isinstance(corruption_fraction, (int, float)):
        return [float(corruption_fraction)] * len(corruption_times)
    fractions = [float(fraction) for fraction in corruption_fraction]
    if len(fractions) != len(corruption_times):
        raise ValueError(
            f"corruption_fraction sequence has {len(fractions)} entries "
            f"for {len(corruption_times)} corruption times")
    return fractions


def _as_timeline(timeline: Union[dict, FaultTimeline]) -> FaultTimeline:
    if isinstance(timeline, FaultTimeline):
        return timeline
    return FaultTimeline.from_dict(timeline)


def _schedule_swsr_ops(engine: ScenarioEngine, writer, reader, start: float,
                       num_writes: int, num_reads: int, op_gap: float,
                       reader_offset: Optional[float], values: ValueStream
                       ) -> Tuple[Any, Any]:
    """Queue the alternating write/read workload on fresh engine drivers."""
    write_times, read_times = alternating_schedule(
        start, max(num_writes, num_reads), op_gap, reader_offset)
    writer_driver = engine.driver(writer)
    reader_driver = engine.driver(reader)
    for time in write_times[:num_writes]:
        writer_driver.at(time, lambda w=writer: w.write(values.next()))
    for time in read_times[:num_reads]:
        reader_driver.at(time, lambda r=reader: r.read())
    return writer_driver, reader_driver


def _drive_swsr_workload(engine: ScenarioEngine, writer, reader,
                         start: float, num_writes: int, num_reads: int,
                         op_gap: float, reader_offset: Optional[float],
                         max_events: int) -> bool:
    """Schedule the alternating write/read workload and run it out.

    Shared by every SWSR-shaped scenario family; completed operations
    stream into ``engine.stream`` as they finish.  Returns whether all
    operations terminated within the budget.
    """
    _schedule_swsr_ops(engine, writer, reader, start, num_writes,
                       num_reads, op_gap, reader_offset, ValueStream())
    return engine.run(max_events)


def _install_byzantine(cluster: Cluster, byzantine: Optional[Dict[str, str]],
                       byzantine_count: int, byzantine_strategy: str) -> None:
    """Install strategies either from an explicit {server: name} map or

    as ``byzantine_count`` servers all running ``byzantine_strategy``.
    """
    if byzantine:
        for server_id, name in byzantine.items():
            cluster.make_byzantine([server_id], strategy_factory(name, cluster))
    elif byzantine_count > 0:
        ids = cluster.server_ids[:byzantine_count]
        cluster.make_byzantine(ids,
                               strategy_factory(byzantine_strategy, cluster))


def _build_swsr_cluster(kind: str, n: int, t: int, seed: int,
                        transport: str, enforce_resilience: bool,
                        record_trace: bool, trace_backend: Optional[str],
                        initial: Any, synchronous: bool = False,
                        wsn_config: Optional[WsnConfig] = None):
    """Stand up the cluster + writer/reader pair every SWSR-shaped

    scenario family shares.  ``trace_backend=None`` derives from
    ``record_trace`` ("full" when true, else "counting").
    """
    if trace_backend is None:
        trace_backend = "full" if record_trace else "counting"
    config = ClusterConfig(
        n=n, t=t, seed=seed, synchronous=synchronous, transport=transport,
        enforce_resilience=enforce_resilience, trace_backend=trace_backend)
    cluster = Cluster(config)
    if kind == "regular":
        writer, reader = build_swsr_regular(cluster, initial=initial)
    elif kind == "atomic":
        writer, reader = build_swsr_atomic(cluster, initial=initial,
                                           config=wsn_config)
    else:
        raise ValueError(f"unknown register kind {kind!r}")
    return cluster, writer, reader


def _schedule_bursts(injector: TransientFaultInjector, targets,
                     corruption_times: Sequence[float],
                     corruption_fraction: Union[float, Sequence[float]]
                     ) -> float:
    """Schedule the transient bursts; returns their τ_no_tr (0 if none).

    Fractions are default-bound per iteration: a bare ``lambda:
    ...fraction`` would make every burst use the *last* fraction (the
    late-binding closure hazard).
    """
    fractions = _burst_fractions(corruption_times, corruption_fraction)
    target_list = list(targets)
    for time, fraction in zip(corruption_times, fractions):
        injector.at(time, lambda fraction=fraction: injector.corrupt_all(
            target_list, fraction))
    return max(corruption_times) if corruption_times else 0.0


def _swsr_result(engine: ScenarioEngine, writer, reader,
                 injector: TransientFaultInjector, completed: bool,
                 tau: float, **extra: Any) -> ScenarioResult:
    """Result assembly shared by the SWSR-shaped families.

    The stabilization report is read off the engine's online tracker —
    no post-run checker pass over the history.
    """
    report = engine.report(tau, completed)
    return ScenarioResult(cluster=engine.cluster, history=engine.history,
                          completed=completed, report=report,
                          tau_no_tr=tau, stream=engine.stream,
                          extra={"writer": writer, "reader": reader,
                                 "injector": injector,
                                 "tracker": engine.tracker, **extra})


def _swsr_engine(cluster: Cluster, kind: str, initial: Any,
                 **engine_kwargs: Any) -> ScenarioEngine:
    mode = "atomic" if kind == "atomic" else "regular"
    return ScenarioEngine(cluster, mode=mode, initial=initial,
                          **engine_kwargs)


def run_swsr_scenario(kind: str = "regular", n: int = 9, t: int = 1,
                      seed: int = 0, synchronous: bool = False,
                      transport: str = "direct",
                      num_writes: int = 6, num_reads: int = 6,
                      op_gap: float = 10.0,
                      reader_offset: Optional[float] = None,
                      corruption_times: Sequence[float] = (),
                      corruption_fraction: Union[float, Sequence[float]] = 1.0,
                      link_garbage: int = 0,
                      byzantine: Optional[Dict[str, str]] = None,
                      byzantine_count: int = 0,
                      byzantine_strategy: str = "random-garbage",
                      wsn_modulus: Optional[int] = None,
                      initial: Any = INITIAL,
                      enforce_resilience: bool = True,
                      max_events: int = 2_000_000,
                      record_trace: bool = False,
                      trace_backend: Optional[str] = None,
                      fault_timeline: Optional[Union[dict, "FaultTimeline"]]
                      = None) -> ScenarioResult:
    """Run a full SWSR experiment (Figure 2/3/5 depending on flags).

    * ``kind``: ``"regular"`` (Figure 2 / 5) or ``"atomic"`` (Figure 3).
    * ``synchronous``: use the Appendix-A model (``t < n/3``).
    * ``corruption_times``: transient bursts; the last one is τ_no_tr.
      All server and client protocol variables are corrupted (fraction-
      sampled) and, if ``link_garbage > 0``, garbage lands on every link.
    * ``trace_backend``: "full" / "counting" / "null"; default derives
      from ``record_trace`` ("full" when true, else "counting").
    * ``fault_timeline``: a declarative :class:`~repro.faults.FaultTimeline`
      (or its dict form) installed on top of the scalar fault knobs.
    * writes start after τ_no_tr (the paper's assumption (b)); reads are
      offset by ``reader_offset`` (default ``op_gap / 2``: no concurrency).

    >>> result = run_swsr_scenario(kind="atomic", seed=1, num_writes=2,
    ...                            num_reads=2, corruption_times=[2.0])
    >>> result.completed, result.summarize().stable
    (True, True)
    """
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience, record_trace,
        trace_backend, initial, synchronous=synchronous,
        wsn_config=WsnConfig(wsn_modulus) if wsn_modulus else None)
    _install_byzantine(cluster, byzantine, byzantine_count,
                       byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_no_tr = _schedule_bursts(injector,
                                 cluster.servers + [writer, reader],
                                 corruption_times, corruption_fraction)
    if link_garbage > 0 and corruption_times:
        first = min(corruption_times)
        injector.at(first, lambda: injector.garbage_everywhere(
            [writer.pid, reader.pid], cluster.server_ids,
            per_link=link_garbage))
    if fault_timeline is not None:
        timeline = _as_timeline(fault_timeline)
        timeline.install(cluster, injector)
        tau_no_tr = max(tau_no_tr, timeline.tau_no_tr)

    start = tau_no_tr + 1.0
    engine = _swsr_engine(cluster, kind, initial)
    completed = _drive_swsr_workload(
        engine, writer, reader, start, num_writes, num_reads, op_gap,
        reader_offset, max_events)
    return _swsr_result(engine, writer, reader, injector, completed,
                        tau_no_tr)


def run_mwmr_scenario(m: int = 3, n: int = 9, t: int = 1, seed: int = 0,
                      ops_per_process: int = 2, op_gap: float = 40.0,
                      stagger: float = 7.0,
                      corruption_times: Sequence[float] = (),
                      corruption_fraction: Union[float, Sequence[float]] = 0.3,
                      byzantine_count: int = 0,
                      byzantine_strategy: str = "random-garbage",
                      seq_bound: int = 2 ** 64,
                      k: Optional[int] = None,
                      transport: str = "direct",
                      enforce_resilience: bool = True,
                      max_events: int = 6_000_000,
                      concurrent: bool = False,
                      trace_backend: str = "counting") -> ScenarioResult:
    """Run a full MWMR experiment (Figure 4).

    Each of the ``m`` processes alternates ``mwmr_write`` / ``mwmr_read``.
    With ``concurrent=False`` the stagger spaces processes apart so most
    operations are sequential; ``concurrent=True`` makes them collide.

    ``corruption_fraction`` is deliberately partial by default: corrupting
    *every* server copy of a register that is never written again leaves
    its readers without any quorum — and the MWMR scan (Figure 4 line
    01/09) runs *before* the write that would repair it, so full corruption
    of all ``m`` registers deadlocks the construction.  This liveness
    subtlety of the extended abstract is documented in EXPERIMENTS.md
    (T4 notes) and demonstrated by
    ``tests/test_registers_mwmr.py::TestLiveness``.

    >>> result = run_mwmr_scenario(m=2, seed=4, ops_per_process=1)
    >>> result.completed, len(result.history)
    (True, 4)
    """
    config = ClusterConfig(n=n, t=t, seed=seed, transport=transport,
                           enforce_resilience=enforce_resilience,
                           trace_backend=trace_backend)
    cluster = Cluster(config)
    register = build_mwmr(cluster, m, seq_bound=seq_bound, k=k)
    _install_byzantine(cluster, None, byzantine_count, byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_no_tr = max(corruption_times) if corruption_times else 0.0
    # bind per-burst fractions (see run_swsr_scenario: closure hazard).
    fractions = _burst_fractions(corruption_times, corruption_fraction)
    corruption_targets = cluster.servers + register.processes
    for time, fraction in zip(corruption_times, fractions):
        injector.at(time, lambda fraction=fraction: injector.corrupt_all(
            corruption_targets, fraction=fraction))

    start = tau_no_tr + 1.0
    values = ValueStream()
    # writes are not totally ordered by real time here: counters + digest
    # stream, but no SWSR tau tracker (mode=None).
    engine = ScenarioEngine(cluster)
    for index, process in enumerate(register.processes):
        driver = engine.driver(process)
        offset = 0.0 if concurrent else index * stagger
        for round_index in range(ops_per_process):
            base = start + offset + round_index * op_gap
            driver.at(base, lambda p=process: p.mwmr_write(values.next()))
            driver.at(base + op_gap / 2, lambda p=process: p.mwmr_read())

    completed = engine.run(max_events)
    return ScenarioResult(cluster=cluster, history=engine.history,
                          completed=completed, tau_no_tr=tau_no_tr,
                          stream=engine.stream,
                          extra={"register": register,
                                 "injector": injector})


def run_partition_scenario(kind: str = "regular", n: int = 9, t: int = 1,
                           seed: int = 0, transport: str = "direct",
                           num_writes: int = 6, num_reads: int = 6,
                           op_gap: float = 10.0,
                           reader_offset: Optional[float] = None,
                           partition_count: Optional[int] = None,
                           partition_start: Optional[float] = None,
                           partition_duration: Optional[float] = None,
                           corruption_times: Sequence[float] = (),
                           corruption_fraction: Union[float,
                                                      Sequence[float]] = 1.0,
                           byzantine_count: int = 0,
                           byzantine_strategy: str = "random-garbage",
                           initial: Any = INITIAL,
                           enforce_resilience: bool = True,
                           max_events: int = 2_000_000,
                           record_trace: bool = False,
                           trace_backend: Optional[str] = None
                           ) -> ScenarioResult:
    """Partition-during-write: a server group drops off mid-workload.

    After the optional transient bursts settle, the write/read workload
    starts — and *while it is running*, ``partition_count`` servers
    (default ``t``, taken from the tail of the server list so they do not
    overlap a Byzantine prefix) are cut off from the clients for
    ``partition_duration`` time units, then healed.  Messages sent across
    the cut are dropped and counted (``network.messages_dropped``).

    Stabilization is judged from the heal instant: with at most ``t``
    servers partitioned, operations keep terminating (they are
    indistinguishable from silent Byzantine servers to the quorum logic),
    and after the heal the condition must hold again.

    Only meaningful on the ``direct`` transport: the datalink transport's
    packet channels bypass the network's link layer.
    """
    if transport != "direct":
        raise ValueError("partition scenarios require the direct transport "
                         "(datalink channels bypass Network links)")
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience, record_trace,
        trace_backend, initial)
    _install_byzantine(cluster, None, byzantine_count, byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_bursts = _schedule_bursts(injector,
                                  cluster.servers + [writer, reader],
                                  corruption_times, corruption_fraction)

    start = tau_bursts + 1.0
    count = t if partition_count is None else partition_count
    group = cluster.server_ids[n - count:] if count else []
    p_start = (start + 1.5 * op_gap if partition_start is None
               else partition_start)
    duration = 2.0 * op_gap if partition_duration is None \
        else partition_duration
    timeline = FaultTimeline()
    if group:
        timeline.partition(p_start, p_start + duration, group)
    timeline.install(cluster, injector)
    tau_report = max(tau_bursts, timeline.tau_no_tr)

    engine = _swsr_engine(cluster, kind, initial)
    completed = _drive_swsr_workload(
        engine, writer, reader, start, num_writes, num_reads, op_gap,
        reader_offset, max_events)
    return _swsr_result(engine, writer, reader, injector, completed,
                        tau_report, timeline=timeline,
                        partition_group=group)


@dataclass
class KVScenarioResult:
    """Result of a sharded KV run: many clusters, one merged history.

    The per-key verdict (``linearizable``) judges the *post-τ* suffix of
    every key's register history — exactly the window in which the MWMR
    construction owes atomicity (writes restart after the last transient
    event; the paper's assumption (b) per shard).  Verdicts come from the
    run's :class:`~repro.checkers.online.StreamingLinearizer`, which
    consumed each shard's completions as they happened.
    """

    store: ShardedKVStore
    history: Optional[History]
    completed: bool
    tau_no_tr: float = 0.0
    #: per-shard last-transient instants (shards are independent
    #: simulations, so each key is judged against its *own* shard's τ).
    tau_by_shard: List[float] = field(default_factory=list)
    per_key_linearizable: Dict[str, bool] = field(default_factory=dict)
    stream: Optional[ObservationStream] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def linearizable(self) -> bool:
        return all(self.per_key_linearizable.values())

    @property
    def messages_sent(self) -> int:
        return self.store.messages_sent

    def summarize(self) -> ScenarioSummary:
        """Reduce to the shared picklable summary (``stable`` carries the
        all-keys-linearizable verdict)."""
        ops, writes, reads, digest = _stream_counters(self.stream,
                                                      self.history)
        return ScenarioSummary(
            completed=self.completed,
            tau_no_tr=self.tau_no_tr,
            ops=ops,
            writes=writes,
            reads=reads,
            messages_sent=self.store.messages_sent,
            events_processed=self.store.events_processed,
            sim_end=self.store.now,
            corruptions=int(self.extra.get("corruptions", 0)),
            history_digest=digest,
            stable=self.completed and self.linearizable,
        )


def run_kv_scenario(shard_count: int = 2, n: int = 9, t: int = 1,
                    seed: int = 0, client_count: int = 2,
                    num_keys: int = 4, rounds: int = 2,
                    pipelined: bool = True, vnodes: int = 64,
                    byzantine_count: int = 0,
                    byzantine_strategy: str = "random-garbage",
                    corruption_times: Sequence[float] = (),
                    corruption_fraction: Union[float, Sequence[float]] = 0.2,
                    fault_timelines: Optional[Dict[Any, Any]] = None,
                    trace_backend: Optional[str] = "null",
                    enforce_resilience: bool = True,
                    max_events: int = 6_000_000,
                    parallel: Optional[Union[int, str]] = None
                    ) -> KVScenarioResult:
    """Drive a sharded KV workload end to end (the ``kv`` runner family).

    Three phases, all deterministic:

    1. **create** — every key (``k0..k{num_keys-1}``) receives an initial
       ``put`` (round-robin across the logical clients), so each shard
       materializes its registers before any fault fires;
    2. **faults** — transient bursts at ``corruption_times`` (servers
       only, fraction-sampled, on *every* shard, anchored to each shard's
       local clock) plus optional per-shard ``fault_timelines``
       (``{shard_index: FaultTimeline-or-dict}``, times relative to the
       shard clock).  Static Byzantine servers (``byzantine_count`` per
       shard, at most ``t``) are installed from the start;
    3. **workload** — ``rounds`` rounds; each round re-``put``\\s every
       key and then ``get``\\s it back, with a flush barrier between the
       puts and the gets (writes-repair-then-read, the paper's
       stabilization posture).  ``pipelined=True`` drains each batch
       through the :class:`~repro.kvstore.pipeline.Pipeline` (operations
       in flight on every shard and client simultaneously);
       ``pipelined=False`` runs one operation at a time — the serial
       baseline the KV bench compares against.

    Completed operations stream into a per-run
    :class:`~repro.checkers.stream.ObservationStream`; the per-key
    post-τ linearizability verdict is maintained online by a
    :class:`~repro.checkers.online.StreamingLinearizer` (each key sealed
    at its own shard's τ, segments collapsed at the batch barriers) — see
    :class:`KVScenarioResult`.

    ``parallel`` runs the shards in worker processes (a count) or
    round-robin in-process (``"interleave"``) via :mod:`repro.parallel`,
    with the merged result asserted equal to this serial path — digest,
    verdicts and summary alike.  Requires ``pipelined=True``.

    Liveness caveat, inherited from the MWMR construction: a burst that
    corrupts *every* server copy of some per-key register livelocks the
    scan until the register's owner rewrites it (see the
    :func:`run_mwmr_scenario` docstring and
    ``tests/test_registers_mwmr.py::TestLiveness``) — keep
    ``corruption_fraction`` partial, as the default does.

    >>> result = run_kv_scenario(shard_count=2, num_keys=2, rounds=1,
    ...                          seed=3)
    >>> result.completed and result.linearizable
    True
    >>> len(result.history)           # 2 creates + 1 round of put+get
    6
    """
    if rounds < 1:
        raise ValueError("need at least one workload round")
    if vnodes < 1:
        raise ValueError("need at least one virtual node per shard")
    if parallel is not None:
        if not pipelined:
            raise ValueError(
                "parallel kv execution requires pipelined=True (the "
                "serial completion order the merge reconstructs is the "
                "pipelined per-batch drain)")
        from ..parallel.runner import run_parallel_kv
        return run_parallel_kv(
            parallel=parallel, shard_count=shard_count, n=n, t=t,
            seed=seed, client_count=client_count, num_keys=num_keys,
            rounds=rounds, vnodes=vnodes,
            byzantine_count=byzantine_count,
            byzantine_strategy=byzantine_strategy,
            corruption_times=corruption_times,
            corruption_fraction=corruption_fraction,
            fault_timelines=fault_timelines, trace_backend=trace_backend,
            enforce_resilience=enforce_resilience, max_events=max_events)
    store = ShardedKVStore(
        shard_count=shard_count, n=n, t=t, seed=seed,
        client_count=client_count, vnodes=vnodes,
        trace_backend=trace_backend,
        enforce_resilience=enforce_resilience)
    clients = store.client_pids
    keys = [f"k{index}" for index in range(num_keys)]
    for cluster in store.group:
        _install_byzantine(cluster, None, byzantine_count,
                           byzantine_strategy)

    values = ValueStream()
    completed = True
    linearizer = StreamingLinearizer()
    stream = ObservationStream(checkers=[linearizer], keep_history=True)
    pipe = (Pipeline(store, on_complete=stream.observe_handle)
            if pipelined else None)

    def batch(ops: List[Tuple[str, str, str, Optional[Any]]]) -> bool:
        """Run one batch of (kind, client, key[, value]) operations."""
        try:
            if pipe is not None:
                for kind, client, key, value in ops:
                    if kind == "put":
                        pipe.put(client, key, value)
                    else:
                        pipe.get(client, key)
                pipe.flush(max_events=max_events)
            else:
                for kind, client, key, value in ops:
                    handle = (store.put(client, key, value)
                              if kind == "put" else store.get(client, key))
                    handle.on_done(stream.observe_handle)
                    store.run_ops([handle], max_events=max_events)
        except SimulationLimitReached:
            # flush is resumable (handles that completed were detached
            # and annotated on the exception); this scenario stops the
            # workload instead, reporting completed=False.
            return False
        # a drained batch is a quiesce point: nothing is in flight, so
        # the linearizer can collapse settled segments (bounded memory).
        linearizer.settle()
        return True

    # -- phase 1: create every key ----------------------------------------
    completed = batch([("put", clients[index % len(clients)], key,
                        values.next())
                       for index, key in enumerate(keys)])

    # -- phase 2: faults, anchored per shard -------------------------------
    tau_by_shard = [0.0] * shard_count
    corruptions = 0
    if completed and (corruption_times or fault_timelines):
        fractions = _burst_fractions(corruption_times, corruption_fraction)
        timelines = {int(shard): _as_timeline(timeline)
                     for shard, timeline in (fault_timelines or {}).items()}
        out_of_range = sorted(shard for shard in timelines
                              if not 0 <= shard < shard_count)
        if out_of_range:
            raise ValueError(
                f"fault_timelines reference shards {out_of_range} but the "
                f"store has {shard_count} shard(s); a silently dropped "
                "timeline would fake a fault-free verdict")
        for shard, cluster in enumerate(store.group):
            injector = store.injector_for(shard)
            anchor = cluster.now
            tau_local = anchor
            for time, fraction in zip(corruption_times, fractions):
                injector.at(anchor + time,
                            lambda cluster=cluster, fraction=fraction,
                            injector=injector: injector.corrupt_all(
                                cluster.servers, fraction))
                tau_local = max(tau_local, anchor + time)
            timeline = timelines.get(shard)
            if timeline is not None:
                installed = store.install_timeline(shard, timeline,
                                                   anchor=anchor)
                tau_local = max(tau_local, installed.tau_no_tr)
            tau_by_shard[shard] = tau_local
        for cluster, tau_local in zip(store.group, tau_by_shard):
            cluster.run(until=tau_local + 1.0)
        corruptions = sum(injector.corruptions
                          for injector in store._injectors.values())
    tau_no_tr = max(tau_by_shard)

    # each key is judged against its own shard's τ: sealing fixes the
    # post-τ cutoff and replays the (tiny) pre-fault buffer through it.
    for key in keys:
        linearizer.seal(f"kv/{key}", tau_by_shard[store.shard_for(key)])

    # -- phase 3: workload rounds (put barrier, then get barrier) ----------
    for round_index in range(rounds):
        if not completed:
            break
        completed = batch([
            ("put", clients[(round_index + index) % len(clients)], key,
             values.next())
            for index, key in enumerate(keys)])
        if not completed:
            break
        completed = batch([
            ("get", clients[(round_index + index + 1) % len(clients)], key,
             None)
            for index, key in enumerate(keys)])

    stream.close()
    per_key = {key: bool(linearizer.ok(f"kv/{key}")) for key in keys}
    return KVScenarioResult(
        store=store, history=stream.history, completed=completed,
        tau_no_tr=tau_no_tr, tau_by_shard=tau_by_shard,
        per_key_linearizable=per_key, stream=stream,
        extra={"corruptions": corruptions, "pipeline": pipe,
               "keys": keys, "linearizer": linearizer})


@dataclass
class ReshardScenarioResult:
    """Result of a live-resharding run: a KV run whose ring changed.

    Everything :class:`KVScenarioResult` carries, plus the migration
    record: ``rebalances`` (one :class:`~repro.kvstore.rebalance
    .RebalanceReport` per applied plan event, in application order) and
    ``epoch_taus`` (per-migration-epoch τ — for each handoff, the
    instant from which every key's reads are consistent again, ``None``
    if violations persisted to the end of the stream).
    """

    store: ShardedKVStore
    history: Optional[History]
    completed: bool
    tau_no_tr: float = 0.0
    tau_by_shard: List[float] = field(default_factory=list)
    per_key_linearizable: Dict[str, bool] = field(default_factory=dict)
    rebalances: List[RebalanceReport] = field(default_factory=list)
    epoch_taus: List[Dict[str, Any]] = field(default_factory=list)
    stream: Optional[ObservationStream] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def linearizable(self) -> bool:
        return all(self.per_key_linearizable.values())

    @property
    def messages_sent(self) -> int:
        return self.store.messages_sent

    def summarize(self) -> ScenarioSummary:
        """The shared picklable summary; ``stable`` carries the
        all-keys-linearizable-across-handoffs verdict and
        ``epoch_taus`` the per-migration-epoch τ timeline."""
        ops, writes, reads, digest = _stream_counters(self.stream,
                                                      self.history)
        return ScenarioSummary(
            completed=self.completed,
            tau_no_tr=self.tau_no_tr,
            ops=ops,
            writes=writes,
            reads=reads,
            messages_sent=self.store.messages_sent,
            events_processed=self.store.events_processed,
            sim_end=self.store.now,
            corruptions=int(self.extra.get("corruptions", 0)),
            history_digest=digest,
            stable=self.completed and self.linearizable,
            epoch_taus=tuple(dict(entry) for entry in self.epoch_taus),
        )


def _reshard_plan(reshard_plan: Optional[Union[dict, FaultTimeline]],
                  shard_count: int) -> List[Any]:
    """Validate and order a resharding plan's events.

    Only store-scoped kinds are allowed (cluster-scoped faults belong in
    ``fault_timelines``), and every referenced shard index must exist by
    the time its event applies — splits allocate indices in event order,
    so the check replays that allocation statically.
    """
    if reshard_plan is None:
        plan = FaultTimeline().reshard_split(0.0, 0)
    else:
        plan = _as_timeline(reshard_plan)
    bad = sorted({event.kind for event in plan.events
                  if event.kind not in RESHARD_KINDS})
    if bad:
        raise ValueError(
            f"reshard_plan may only contain store-scoped rebalance "
            f"events {sorted(RESHARD_KINDS)}, got {bad}; put per-shard "
            f"fault events in fault_timelines instead")
    events = sorted(plan.events, key=lambda event: event.time)
    allocated = shard_count
    for event in events:
        if event.kind == "reshard_split":
            referenced = [int(event.args["shard"])]
        elif event.kind == "reshard_merge":
            referenced = [int(event.args["source"]),
                          int(event.args["into"])]
        else:
            referenced = [int(event.args["source"]),
                          int(event.args["dest"])]
        out_of_range = [shard for shard in referenced
                        if not 0 <= shard < allocated]
        if out_of_range:
            raise ValueError(
                f"reshard_plan event {event.kind!r} at t={event.time} "
                f"references shard(s) {out_of_range} but only "
                f"{allocated} shard(s) exist at that point")
        if event.kind == "reshard_split":
            allocated += 1
    return events


def run_reshard_scenario(shard_count: int = 2, n: int = 9, t: int = 1,
                         seed: int = 0, client_count: int = 2,
                         num_keys: int = 4, rounds: int = 2,
                         vnodes: int = 16,
                         reshard_plan: Optional[Union[dict,
                                                      FaultTimeline]] = None,
                         byzantine_count: int = 0,
                         byzantine_strategy: str = "random-garbage",
                         corruption_times: Sequence[float] = (),
                         corruption_fraction: Union[
                             float, Sequence[float]] = 0.2,
                         fault_timelines: Optional[Dict[Any, Any]] = None,
                         strict: bool = False,
                         trace_backend: Optional[str] = "null",
                         enforce_resilience: bool = True,
                         max_events: int = 6_000_000
                         ) -> ReshardScenarioResult:
    """Reshard a live KV store under traffic (the ``reshard`` family).

    The :func:`run_kv_scenario` workload — create keys, install the
    fault envelope, then rounds of put-barrier/get-barrier batches —
    except that each key's writes all come from one designated writer
    client (reads still rotate over every client): the per-key online τ
    trackers are single-writer checkers, and the rebalancer issues each
    moved key's transfer ops from that same writer.  The addition is a
    ``reshard_plan`` (a :class:`~repro.faults
    .schedule.FaultTimeline` of ``reshard_split`` / ``reshard_merge`` /
    ``migrate_vnodes`` events) reshapes the ring *while clients issue*.
    Each plan event applies at the first batch whose group clock has
    reached its time (leftovers apply after the last round): operations
    already enqueued drain on their old owners, the
    :class:`~repro.kvstore.rebalance.Rebalancer` transfers the moved
    keys' state through real quorum operations fed to the observation
    stream, and the next batch routes to the new owners — the
    dual-ownership window is explicit in the history, and the
    :class:`~repro.checkers.online.StreamingLinearizer` hard-checks
    every ``kv/{key}`` lane straight across the handoff (``strict=True``
    raises on any per-key violation).

    Each applied rebalance opens a *migration epoch*: per-key
    :class:`~repro.checkers.online.OnlineTauTracker` instances record
    the boundary (:meth:`~repro.checkers.online.OnlineTauTracker
    .begin_epoch`) and the result's ``epoch_taus`` reports, per epoch,
    the instant from which every key's reads are consistent again — the
    paper's τ, measured per ownership change instead of per transient
    burst.  A final read-all batch after the last rebalance guarantees
    every handoff is observed.

    The default plan splits shard 0 as soon as traffic starts.  The run
    is deterministic end to end — byte-identical summaries for any
    sweep worker count (the CI ``reshard-smoke`` job's guard).

    >>> result = run_reshard_scenario(shard_count=2, num_keys=2,
    ...                               rounds=1, seed=3)
    >>> result.completed and result.linearizable
    True
    >>> [report.kind for report in result.rebalances]
    ['reshard_split']
    >>> result.store.shard_count
    3
    >>> entry = result.summarize().epoch_taus[0]
    >>> entry["tau"] is not None
    True
    """
    if rounds < 1:
        raise ValueError("need at least one workload round")
    if vnodes < 1:
        raise ValueError("need at least one virtual node per shard")
    plan_events = _reshard_plan(reshard_plan, shard_count)
    store = ShardedKVStore(
        shard_count=shard_count, n=n, t=t, seed=seed,
        client_count=client_count, vnodes=vnodes,
        trace_backend=trace_backend,
        enforce_resilience=enforce_resilience)
    clients = store.client_pids
    keys = [f"k{index}" for index in range(num_keys)]
    # per-register online τ trackers are single-writer: every key gets a
    # designated writer client (spread round-robin over the pool), and
    # reads rotate over *all* clients.  The rebalancer issues each moved
    # key's transfer ops from that same writer, so the ``kv/{key}`` lane
    # stays SWSR straight across every handoff.
    writer_of = {key: clients[index % len(clients)]
                 for index, key in enumerate(keys)}
    for cluster in store.group:
        _install_byzantine(cluster, None, byzantine_count,
                           byzantine_strategy)

    values = ValueStream()
    linearizer = StreamingLinearizer()
    trackers = {key: OnlineTauTracker(mode="atomic",
                                      register=f"kv/{key}")
                for key in keys}
    by_register = {f"kv/{key}": tracker
                   for key, tracker in trackers.items()}
    stream = ObservationStream(checkers=[linearizer], keep_history=True)

    def observe_workload(handle: Any) -> None:
        op = stream.observe_handle(handle)
        if op is not None:
            tracker = by_register.get(op.register)
            if tracker is not None:
                tracker.observe(op)

    # state-transfer operations are checker-visible — they enter the
    # history, the digest and the linearizer (value-set semantics) — but
    # *not* the τ trackers: a transfer re-writes the key's current value,
    # and the single-writer trackers require unique written values.
    # Skipping it is sound: later reads return exactly the last write the
    # tracker did observe.
    pipe = Pipeline(store, on_complete=observe_workload)
    rebalancer = Rebalancer(store, pipeline=pipe,
                            observe=stream.observe_handle,
                            migration_client=lambda key: writer_of.get(
                                key, clients[0]),
                            max_events=max_events)

    tau_by_shard = [0.0] * shard_count
    pending = list(plan_events)
    epoch_marks: List[Tuple[str, float]] = []

    def apply_due(force: bool = False) -> None:
        while pending and (force or store.now >= pending[0].time):
            event = pending.pop(0)
            report = rebalancer.apply_event(event)
            label = f"{event.kind}#{len(rebalancer.reports)}"
            epoch_marks.append((label, report.time))
            for tracker in trackers.values():
                tracker.begin_epoch(report.time, label)
            while len(tau_by_shard) < store.shard_count:
                tau_by_shard.append(0.0)

    def batch(ops: List[Tuple[str, str, str, Optional[Any]]],
              rebalance: bool = False) -> bool:
        try:
            for kind, client, key, value in ops:
                if kind == "put":
                    pipe.put(client, key, value)
                else:
                    pipe.get(client, key)
            if rebalance:
                # mid-batch: enqueued operations are in flight — the
                # rebalance drains them on their pre-mutation owners.
                apply_due()
            pipe.flush(max_events=max_events)
        except SimulationLimitReached:
            return False
        linearizer.settle()
        return True

    # -- phase 1: create every key (pre-rebalance placement) ---------------
    completed = batch([("put", writer_of[key], key, values.next())
                       for key in keys])

    # -- phase 2: the fault envelope, anchored per (initial) shard ---------
    corruptions = 0
    if completed and (corruption_times or fault_timelines):
        fractions = _burst_fractions(corruption_times, corruption_fraction)
        timelines = {int(shard): _as_timeline(timeline)
                     for shard, timeline in (fault_timelines or {}).items()}
        out_of_range = sorted(shard for shard in timelines
                              if not 0 <= shard < shard_count)
        if out_of_range:
            raise ValueError(
                f"fault_timelines reference shards {out_of_range} but the "
                f"store has {shard_count} shard(s); a silently dropped "
                "timeline would fake a fault-free verdict")
        for shard in range(shard_count):
            cluster = store.group[shard]
            injector = store.injector_for(shard)
            anchor = cluster.now
            tau_local = anchor
            for time, fraction in zip(corruption_times, fractions):
                injector.at(anchor + time,
                            lambda cluster=cluster, fraction=fraction,
                            injector=injector: injector.corrupt_all(
                                cluster.servers, fraction))
                tau_local = max(tau_local, anchor + time)
            timeline = timelines.get(shard)
            if timeline is not None:
                installed = store.install_timeline(shard, timeline,
                                                   anchor=anchor)
                tau_local = max(tau_local, installed.tau_no_tr)
            tau_by_shard[shard] = tau_local
        for shard in range(shard_count):
            store.group[shard].run(until=tau_by_shard[shard] + 1.0)
        corruptions = sum(injector.corruptions
                          for injector in store._injectors.values())
    tau_no_tr = max(tau_by_shard)

    # sealing happens before any rebalance: each key's cutoff is its
    # *initial* owner's τ, so every post-fault op — the whole handoff
    # window included — is hard-checked by the linearizer.
    for key in keys:
        linearizer.seal(f"kv/{key}", tau_by_shard[store.shard_for(key)])

    # -- phase 3: workload rounds with live rebalances ---------------------
    for round_index in range(rounds):
        if not completed:
            break
        completed = batch([
            ("put", writer_of[key], key, values.next())
            for key in keys], rebalance=True)
        if not completed:
            break
        completed = batch([
            ("get", clients[(round_index + index + 1) % len(clients)], key,
             None)
            for index, key in enumerate(keys)], rebalance=True)

    # plan events the clock never reached apply now, then a final
    # read-all batch observes every handoff.
    if completed and pending:
        try:
            apply_due(force=True)
        except SimulationLimitReached:
            completed = False
    if completed:
        completed = batch([
            ("get", clients[(rounds + index) % len(clients)], key, None)
            for index, key in enumerate(keys)])

    stream.close()
    for tracker in trackers.values():
        tracker.finish()
    per_key = {key: bool(linearizer.ok(f"kv/{key}")) for key in keys}

    # per-epoch τ: aggregate the per-key trackers — the epoch is stable
    # from the latest instant at which *every* key's suffix is clean.
    per_key_epochs = {key: trackers[key].epoch_taus() for key in keys}
    epoch_taus: List[Dict[str, Any]] = []
    for index, (label, start) in enumerate(epoch_marks):
        taus = [per_key_epochs[key][index]["tau"] for key in keys]
        tau = None if any(value is None for value in taus) \
            else (max(taus) if taus else start)
        epoch_taus.append({"label": label, "start": start, "tau": tau})

    if strict and completed:
        violated = sorted(key for key, ok in per_key.items() if not ok)
        if violated:
            raise AssertionError(
                f"per-key linearizability violated across rebalance "
                f"handoffs for {violated}")
    return ReshardScenarioResult(
        store=store, history=stream.history, completed=completed,
        tau_no_tr=tau_no_tr, tau_by_shard=tau_by_shard,
        per_key_linearizable=per_key,
        rebalances=list(rebalancer.reports), epoch_taus=epoch_taus,
        stream=stream,
        extra={"corruptions": corruptions, "pipeline": pipe,
               "keys": keys, "linearizer": linearizer,
               "trackers": trackers, "rebalancer": rebalancer})


def run_mobile_byzantine_scenario(kind: str = "regular", n: int = 9,
                                  t: int = 1, seed: int = 0,
                                  transport: str = "direct",
                                  num_writes: int = 8, num_reads: int = 8,
                                  op_gap: float = 10.0,
                                  reader_offset: Optional[float] = None,
                                  rotations: int = 3,
                                  rotation_gap: Optional[float] = None,
                                  rotation_size: Optional[int] = None,
                                  rotation_strategy: str = "random-garbage",
                                  corruption_times: Sequence[float] = (),
                                  corruption_fraction: Union[
                                      float, Sequence[float]] = 1.0,
                                  initial: Any = INITIAL,
                                  enforce_resilience: bool = True,
                                  max_events: int = 2_000_000,
                                  record_trace: bool = False,
                                  trace_backend: Optional[str] = None
                                  ) -> ScenarioResult:
    """Mobile Byzantine rotation (footnote 1) under a live workload.

    The Byzantine set (size ``rotation_size``, default ``t``) hops across
    the server ring every ``rotation_gap`` time units (default
    ``2 * op_gap``), ``rotations`` times, while the writer and reader keep
    operating.  A server leaving the set re-joins the correct ones with
    *arbitrary* local state — the timeline corrupts it through the
    transient injector, which is exactly the situation the stabilization
    property covers.

    Stabilization is judged from the **last rotation**: a moving set is a
    sequence of transient disruptions, but once it stops moving the
    remaining (static, size ≤ t) Byzantine set must be tolerated forever.

    Liveness caveat: with a *non-responsive* rotation strategy (``silent``
    / ``crash``) a broadcast in flight across a rotation instant can see
    two mute servers — the old member dropped it before the handover, the
    new one after — which exceeds the ``n - t`` wait's fault budget and
    can legitimately starve an operation (``completed=False``).  Strict
    sweeps should rotate responsive liars (``random-garbage``, ``stale``).
    """
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience, record_trace,
        trace_backend, initial)

    injector = TransientFaultInjector.for_cluster(cluster)
    tau_bursts = _schedule_bursts(injector,
                                  cluster.servers + [writer, reader],
                                  corruption_times, corruption_fraction)

    start = tau_bursts + 1.0
    size = t if rotation_size is None else rotation_size
    gap = 2.0 * op_gap if rotation_gap is None else rotation_gap
    timeline = FaultTimeline()
    last_rotation = 0.0
    server_ids = cluster.server_ids
    for index in range(rotations):
        members = [server_ids[(index * size + offset) % n]
                   for offset in range(size)]
        time = start + index * gap
        timeline.byzantine(time, members, rotation_strategy)
        last_rotation = time
    timeline.install(cluster, injector)
    tau_report = max(tau_bursts, last_rotation)

    engine = _swsr_engine(cluster, kind, initial)
    completed = _drive_swsr_workload(
        engine, writer, reader, start, num_writes, num_reads, op_gap,
        reader_offset, max_events)
    return _swsr_result(engine, writer, reader, injector, completed,
                        tau_report, timeline=timeline)


@dataclass
class _SoakRun:
    """One soak sub-simulation's live state (see :func:`_soak_simulation`).

    The legacy single-cluster path assembles a :class:`ScenarioResult`
    from it; the parallel shard executor ships only the plain-data parts
    back (records via an extra stream checker, counters and τ read off
    ``cluster`` / ``tau_report``).
    """

    cluster: Cluster
    writer: Any
    reader: Any
    injector: TransientFaultInjector
    engine: ScenarioEngine
    completed: bool
    tau_report: float
    timeline: Optional[FaultTimeline]


def _soak_simulation(kind: str = "regular", n: int = 9, t: int = 1,
                     seed: int = 0, transport: str = "direct",
                     num_writes: int = 500, num_reads: int = 500,
                     op_gap: float = 4.0,
                     reader_offset: Optional[float] = None,
                     fault_bursts: int = 3, fault_period: float = 5.0,
                     corruption_fraction: Union[float,
                                                Sequence[float]] = 0.3,
                     rotations: int = 0,
                     rotation_gap: Optional[float] = None,
                     rotation_size: Optional[int] = None,
                     rotation_strategy: str = "random-garbage",
                     byzantine_count: int = 0,
                     byzantine_strategy: str = "random-garbage",
                     initial: Any = INITIAL,
                     enforce_resilience: bool = True,
                     max_events: int = 100_000_000,
                     trace_backend: str = "null",
                     keep_history: bool = False,
                     write_window: int = 64, read_window: int = 64,
                     max_records: int = 64, candidate_cap: int = 4096,
                     chunk_ops: int = 256, *,
                     engine_mode: Optional[str] = "auto",
                     extra_checkers: Sequence[Any] = ()) -> _SoakRun:
    """One complete soak sub-simulation (cluster + faults + workload).

    The body of :func:`run_soak_scenario`, factored so the parallel
    shard executor (:mod:`repro.parallel`) can run exactly this —
    byte-identical cluster construction, fault schedule and chunked
    driving loop — inside a worker process.  ``engine_mode="auto"``
    derives the τ-tracker mode from ``kind`` (the legacy in-process
    path); ``None`` attaches no tracker (workers ship raw operation
    records back through ``extra_checkers`` and the parent re-runs the
    tracker on the merged stream side).
    """
    cluster, writer, reader = _build_swsr_cluster(
        kind, n, t, seed, transport, enforce_resilience,
        record_trace=False, trace_backend=trace_backend, initial=initial)
    _install_byzantine(cluster, None, byzantine_count, byzantine_strategy)

    injector = TransientFaultInjector.for_cluster(cluster)
    burst_times = [fault_period * (index + 1)
                   for index in range(fault_bursts)]
    tau_no_tr = _schedule_bursts(injector, list(cluster.servers),
                                 burst_times, corruption_fraction)

    start = tau_no_tr + 1.0
    tau_report = tau_no_tr
    timeline = None
    if rotations > 0:
        size = t if rotation_size is None else rotation_size
        gap = 2.0 * op_gap if rotation_gap is None else rotation_gap
        timeline = FaultTimeline()
        server_ids = cluster.server_ids
        for index in range(rotations):
            members = [server_ids[(index * size + offset) % n]
                       for offset in range(size)]
            time = start + index * gap
            timeline.byzantine(time, members, rotation_strategy)
            tau_report = max(tau_report, time)
        timeline.install(cluster, injector)

    mode = (("atomic" if kind == "atomic" else "regular")
            if engine_mode == "auto" else engine_mode)
    engine = ScenarioEngine(cluster, mode=mode, initial=initial,
                            keep_history=keep_history,
                            write_window=write_window,
                            read_window=read_window,
                            max_records=max_records,
                            candidate_cap=candidate_cap,
                            tau_hint=tau_report,
                            retain_handles=keep_history,
                            checkers=extra_checkers)
    writer_driver = engine.driver(writer)
    reader_driver = engine.driver(reader)
    values = ValueStream()
    offset = op_gap / 2 if reader_offset is None else reader_offset
    count = max(num_writes, num_reads)
    completed = True
    scheduled = 0
    start_events = cluster.scheduler.events_processed
    while completed and scheduled < count:
        upper = min(count, scheduled + max(1, chunk_ops))
        # slow operations can outrun the nominal schedule across chunks;
        # clamp to the clock — the sequential drivers queue either way.
        now = cluster.scheduler.now
        for index in range(scheduled, upper):
            base = start + index * op_gap
            if index < num_writes:
                writer_driver.at(max(base, now),
                                 lambda w=writer: w.write(values.next()))
            if index < num_reads:
                reader_driver.at(max(base + offset, now),
                                 lambda r=reader: r.read())
        scheduled = upper
        spent = cluster.scheduler.events_processed - start_events
        completed = engine.step(max_events - spent)
    engine.stream.close()
    return _SoakRun(cluster=cluster, writer=writer, reader=reader,
                    injector=injector, engine=engine, completed=completed,
                    tau_report=tau_report, timeline=timeline)


def run_soak_scenario(kind: str = "regular", n: int = 9, t: int = 1,
                      seed: int = 0, transport: str = "direct",
                      num_writes: int = 500, num_reads: int = 500,
                      op_gap: float = 4.0,
                      reader_offset: Optional[float] = None,
                      fault_bursts: int = 3, fault_period: float = 5.0,
                      corruption_fraction: Union[float,
                                                 Sequence[float]] = 0.3,
                      rotations: int = 0,
                      rotation_gap: Optional[float] = None,
                      rotation_size: Optional[int] = None,
                      rotation_strategy: str = "random-garbage",
                      byzantine_count: int = 0,
                      byzantine_strategy: str = "random-garbage",
                      initial: Any = INITIAL,
                      enforce_resilience: bool = True,
                      max_events: int = 100_000_000,
                      trace_backend: str = "null",
                      keep_history: bool = False,
                      write_window: int = 64, read_window: int = 64,
                      max_records: int = 64, candidate_cap: int = 4096,
                      chunk_ops: int = 256, shards: int = 1,
                      parallel: Optional[Union[int, str]] = None):
    """Long-horizon SWSR soak: N× longer workloads at bounded peak memory.

    The memory-bounded member of the SWSR-shaped family: a periodic
    transient-burst prelude (``fault_bursts`` bursts, ``fault_period``
    apart, servers only — the atomic-safe envelope), optional mobile
    Byzantine rotations straddling the workload, then ``num_writes`` +
    ``num_reads`` alternating operations.  Three things bound memory by
    the *configuration*, not the run length:

    * the engine retains no history (``keep_history=False``) — counters,
      digest and the stabilization verdict stream off the observation
      pipeline;
    * the online checkers run windowed (``write_window`` /
      ``read_window`` / ``max_records`` / ``candidate_cap``) —
      sound verdicts, with :attr:`~repro.checkers.online
      .OnlineTauTracker.exact` flagging any window overrun;
    * operations are scheduled in ``chunk_ops``-sized slices, so the
      event heap holds one chunk, not the whole workload.

    ``benchmarks/test_bench_checkers.py`` gates the payoff: a soak run
    ≥ 10× the biggest smoke-workload op count completing under a hard
    peak-memory budget (``BENCH_checkers.json``).

    ``shards`` > 1 runs that many *independent* sub-soaks (hash-derived
    per-shard seeds) and merges their verdicts; ``parallel`` picks the
    execution mode for them — a worker-process count, or
    ``"interleave"`` for the same-process round-robin fallback.
    ``shards=1, parallel=1`` (or ``"interleave"``) routes through the
    same plan/executor/merge machinery and is asserted equal to the
    legacy in-process run, field for field (see
    ``tests/test_parallel_sim.py``).

    >>> result = run_soak_scenario(seed=1, num_writes=8, num_reads=8,
    ...                            fault_bursts=1)
    >>> result.completed, result.summarize().stable, result.history is None
    (True, True, True)
    """
    if shards < 1:
        raise ValueError("need at least one soak shard")
    if shards != 1 or parallel is not None:
        from ..parallel.runner import run_parallel_soak
        return run_parallel_soak(
            shards=shards, parallel=parallel, seed=seed,
            params=dict(
                kind=kind, n=n, t=t, transport=transport,
                num_writes=num_writes, num_reads=num_reads, op_gap=op_gap,
                reader_offset=reader_offset, fault_bursts=fault_bursts,
                fault_period=fault_period,
                corruption_fraction=corruption_fraction,
                rotations=rotations, rotation_gap=rotation_gap,
                rotation_size=rotation_size,
                rotation_strategy=rotation_strategy,
                byzantine_count=byzantine_count,
                byzantine_strategy=byzantine_strategy, initial=initial,
                enforce_resilience=enforce_resilience,
                max_events=max_events, trace_backend=trace_backend,
                keep_history=keep_history, write_window=write_window,
                read_window=read_window, max_records=max_records,
                candidate_cap=candidate_cap, chunk_ops=chunk_ops))
    run = _soak_simulation(
        kind=kind, n=n, t=t, seed=seed, transport=transport,
        num_writes=num_writes, num_reads=num_reads, op_gap=op_gap,
        reader_offset=reader_offset, fault_bursts=fault_bursts,
        fault_period=fault_period,
        corruption_fraction=corruption_fraction, rotations=rotations,
        rotation_gap=rotation_gap, rotation_size=rotation_size,
        rotation_strategy=rotation_strategy,
        byzantine_count=byzantine_count,
        byzantine_strategy=byzantine_strategy, initial=initial,
        enforce_resilience=enforce_resilience, max_events=max_events,
        trace_backend=trace_backend, keep_history=keep_history,
        write_window=write_window, read_window=read_window,
        max_records=max_records, candidate_cap=candidate_cap,
        chunk_ops=chunk_ops)
    return _swsr_result(run.engine, run.writer, run.reader, run.injector,
                        run.completed, run.tau_report,
                        timeline=run.timeline,
                        soak={"num_writes": num_writes,
                              "num_reads": num_reads,
                              "chunk_ops": chunk_ops,
                              "write_window": write_window,
                              "read_window": read_window})


# -- deprecated entry points ------------------------------------------------
# The blessed way to run a scenario is a ScenarioSpec (repro.workloads.spec):
# one config object, one vocabulary of families, validated parameters.  The
# historical per-family entry points remain as thin shims so existing code
# keeps working, but new code should not grow calls to them.

_run_swsr_scenario = run_swsr_scenario
_run_mwmr_scenario = run_mwmr_scenario
_run_partition_scenario = run_partition_scenario
_run_kv_scenario = run_kv_scenario
_run_reshard_scenario = run_reshard_scenario
_run_mobile_byzantine_scenario = run_mobile_byzantine_scenario
_run_soak_scenario = run_soak_scenario


def _deprecated_entry(impl, family: str):
    """Wrap ``impl`` so direct calls steer callers to the spec path."""

    @functools.wraps(impl)
    def shim(*args, **kwargs):
        warnings.warn(
            f"{impl.__name__} is deprecated; use "
            f"ScenarioSpec({family!r}, **params).run() or "
            f"run_scenario({family!r}, **params) from repro.api",
            DeprecationWarning, stacklevel=2)
        return impl(*args, **kwargs)

    shim.__doc__ = (f"Deprecated alias for ``ScenarioSpec({family!r})`` — "
                    f"see :mod:`repro.workloads.spec`.  Parameters are "
                    f"those of the ``{family}`` family.")
    return shim


run_swsr_scenario = _deprecated_entry(_run_swsr_scenario, "swsr")
run_mwmr_scenario = _deprecated_entry(_run_mwmr_scenario, "mwmr")
run_partition_scenario = _deprecated_entry(_run_partition_scenario,
                                           "partition")
run_kv_scenario = _deprecated_entry(_run_kv_scenario, "kv")
run_reshard_scenario = _deprecated_entry(_run_reshard_scenario, "reshard")
run_mobile_byzantine_scenario = _deprecated_entry(
    _run_mobile_byzantine_scenario, "mobile-byz")
run_soak_scenario = _deprecated_entry(_run_soak_scenario, "soak")
