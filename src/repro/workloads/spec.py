"""One config object for every scenario family: :class:`ScenarioSpec`.

Historically each family grew its own ``run_*_scenario`` entry point with
a slightly different signature; sweep code, fuzz harnesses and notebooks
all had to know which keyword went with which function.  A
:class:`ScenarioSpec` replaces that with a single validated value:

>>> spec = ScenarioSpec("swsr", seed=3, num_writes=2, num_reads=2)
>>> spec.family
'swsr'
>>> result = spec.run()
>>> result.completed
True

Specs are plain data — comparable, serializable via
:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`, tweakable
via :meth:`ScenarioSpec.with_params` — and validated eagerly: an unknown
parameter or family raises at construction time, not minutes into a
sweep.  :func:`run_scenario` is the call-shaped convenience;
``ScenarioEngine.run_spec`` is the same thing reachable from the engine.

Families (aliases in parentheses): ``swsr``, ``mwmr``, ``partition``,
``kv``, ``reshard``, ``mobile-byz`` (``mobile-byzantine``,
``mobile_byzantine``), ``soak``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple, Union

from . import scenarios as _scenarios

__all__ = ["FAMILIES", "ScenarioSpec", "run_scenario", "scenario_families"]

#: canonical family name -> implementation (the un-deprecated callables).
FAMILIES: Dict[str, Callable[..., Any]] = {
    "swsr": _scenarios._run_swsr_scenario,
    "mwmr": _scenarios._run_mwmr_scenario,
    "partition": _scenarios._run_partition_scenario,
    "kv": _scenarios._run_kv_scenario,
    "reshard": _scenarios._run_reshard_scenario,
    "mobile-byz": _scenarios._run_mobile_byzantine_scenario,
    "soak": _scenarios._run_soak_scenario,
}

_ALIASES = {
    "mobile-byzantine": "mobile-byz",
    "mobile_byzantine": "mobile-byz",
}


def scenario_families() -> Tuple[str, ...]:
    """The canonical family names, sorted."""
    return tuple(sorted(FAMILIES))


def _canonical_family(family: str) -> str:
    if not isinstance(family, str):
        raise TypeError(f"family must be a string, got {type(family).__name__}")
    name = _ALIASES.get(family, family)
    if name not in FAMILIES:
        raise ValueError(
            f"unknown scenario family {family!r}; expected one of "
            f"{', '.join(scenario_families())}")
    return name


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated, serializable description of one scenario run.

    ``params`` are the keyword arguments of the family's implementation;
    unknown keys raise :class:`TypeError` immediately, with the valid
    vocabulary in the message.  Defaults are *not* materialized into the
    spec — a spec only records what the caller pinned, so serialized
    specs stay forward-compatible with new defaulted parameters.
    """

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: spec-level I/O options (not family parameters): record the run to
    #: a capture file / emit periodic metrics snapshots (see
    #: ``repro.capture``).
    capture: Any = None
    metrics_every: Any = None
    metrics_out: Any = None

    def __init__(self, family: str, params: Mapping[str, Any] = (),
                 *, capture: Any = None, metrics_every: Any = None,
                 metrics_out: Any = None, **kwargs: Any):
        merged = dict(params or {})
        overlap = sorted(set(merged) & set(kwargs))
        if overlap:
            raise TypeError(f"parameters given both positionally and as "
                            f"keywords: {', '.join(overlap)}")
        merged.update(kwargs)
        canonical = _canonical_family(family)
        _validate_params(canonical, merged)
        if metrics_every is not None and not float(metrics_every) > 0:
            raise ValueError(f"metrics_every must be positive, got "
                             f"{metrics_every!r}")
        if capture is not None or metrics_every is not None \
                or metrics_out is not None:
            _reject_multiprocess(canonical, merged)
        object.__setattr__(self, "family", canonical)
        object.__setattr__(self, "params", merged)
        object.__setattr__(self, "capture", capture)
        object.__setattr__(self, "metrics_every", metrics_every)
        object.__setattr__(self, "metrics_out", metrics_out)

    # -- ergonomics --------------------------------------------------------
    def with_params(self, **overrides: Any) -> "ScenarioSpec":
        """A new spec with ``overrides`` merged over these params."""
        merged = dict(self.params)
        merged.update(overrides)
        return ScenarioSpec(self.family, merged, capture=self.capture,
                            metrics_every=self.metrics_every,
                            metrics_out=self.metrics_out)

    def defaults(self) -> Dict[str, Any]:
        """Every parameter the family accepts, with its default value."""
        signature = inspect.signature(FAMILIES[self.family])
        return {name: parameter.default
                for name, parameter in signature.parameters.items()}

    def resolved(self) -> Dict[str, Any]:
        """Family defaults overlaid with this spec's pinned params."""
        merged = self.defaults()
        merged.update(self.params)
        return merged

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"family": self.family,
                                   "params": dict(self.params)}
        for key in ("capture", "metrics_every", "metrics_out"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        allowed = {"family", "params", "capture", "metrics_every",
                   "metrics_out"}
        extra = sorted(set(payload) - allowed)
        if extra:
            raise ValueError(f"unexpected spec keys: {', '.join(extra)}")
        return cls(payload["family"], dict(payload.get("params") or {}),
                   capture=payload.get("capture"),
                   metrics_every=payload.get("metrics_every"),
                   metrics_out=payload.get("metrics_out"))

    # -- execution ---------------------------------------------------------
    def run(self) -> Any:
        """Execute the scenario; returns the family's result object.

        With ``capture=`` / ``metrics_*=`` set, the run executes under
        an active :mod:`repro.capture` session: the trace file is
        written and sealed around the family call, and the metrics
        emitter ends up in ``result.extra["metrics"]``.
        """
        if self.capture is None and self.metrics_every is None \
                and self.metrics_out is None:
            return FAMILIES[self.family](**self.params)
        from ..capture.session import capturing
        with capturing(self) as session:
            result = FAMILIES[self.family](**self.params)
            session.finalize(result)
        if session.metrics is not None:
            result.extra["metrics"] = session.metrics
        return result


def _reject_multiprocess(family: str, params: Mapping[str, Any]) -> None:
    """Capture/metrics tap the in-process observation stream; a parallel
    runner builds its streams in worker processes where no session is
    active, so the combination would record nothing — refuse it."""
    if params.get("parallel") is not None:
        raise ValueError(
            f"capture/metrics cannot ride a parallel run "
            f"({family!r} with parallel={params['parallel']!r}); "
            f"record serially, then replay with workers")
    if family == "soak" and params.get("shards") not in (None, 1):
        raise ValueError(
            "capture/metrics cannot ride a sharded soak (worker "
            "processes); record with shards=1")


def _validate_params(family: str, params: Mapping[str, Any]) -> None:
    bad_keys = [key for key in params if not isinstance(key, str)]
    if bad_keys:
        raise TypeError(f"parameter names must be strings, got "
                        f"{bad_keys!r}")
    signature = inspect.signature(FAMILIES[family])
    unknown = sorted(set(params) - set(signature.parameters))
    if unknown:
        raise TypeError(
            f"unknown parameter(s) for scenario family {family!r}: "
            f"{', '.join(unknown)}; valid parameters: "
            f"{', '.join(signature.parameters)}")


def run_scenario(spec: Union[ScenarioSpec, str, Mapping[str, Any]],
                 **params: Any) -> Any:
    """Run a scenario described by a spec, family name or spec dict.

    ``run_scenario("swsr", seed=1)`` builds the spec inline;
    ``run_scenario(spec)`` runs it as-is (keyword overrides allowed, they
    go through :meth:`ScenarioSpec.with_params`).
    """
    if isinstance(spec, ScenarioSpec):
        return (spec.with_params(**params) if params else spec).run()
    if isinstance(spec, str):
        return ScenarioSpec(spec, params).run()
    if isinstance(spec, Mapping):
        built = ScenarioSpec.from_dict(spec)
        return (built.with_params(**params) if params else built).run()
    raise TypeError(f"spec must be a ScenarioSpec, family name or spec "
                    f"dict, got {type(spec).__name__}")
