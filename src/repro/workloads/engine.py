"""The scenario engine: client drivers wired to an observation stream.

Every scenario family used to batch-build a ``History`` from driver
handles after the run and then make separate checker passes over it.
The engine inverts that: each :class:`~repro.workloads.generators
.ClientDriver` it creates feeds completed operations straight into an
:class:`~repro.checkers.stream.ObservationStream`, so counters, the
history digest and — for SWSR-shaped runs — the full stabilization
verdict (via :class:`~repro.checkers.online.OnlineTauTracker`) are ready
the instant the simulation stops.  Retaining the materialized history is
now a *choice* (``keep_history``), not a prerequisite for checking: the
long-horizon ``soak`` family switches it off and runs under a peak-memory
budget bounded by the checkers' windows, not the run length.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..checkers.history import History
from ..checkers.online import OnlineChecker, OnlineTauTracker
from ..checkers.regularity import NO_INITIAL
from ..checkers.stabilization import StabilizationReport
from ..checkers.stream import ObservationStream
from ..sim.errors import SimulationLimitReached
from .generators import ClientDriver


class ScenarioEngine:
    """Owns the stream and drivers of one scenario run.

    * ``mode`` (``"regular"`` / ``"atomic"``) attaches an
      :class:`~repro.checkers.online.OnlineTauTracker`, making the run's
      stabilization report an online by-product; ``None`` (the MWMR/KV
      families) streams counters and digest only.
    * ``keep_history`` retains the materialized
      :class:`~repro.checkers.history.History` alongside the stream —
      the default for ordinary scenarios, off for soak runs.
    * ``write_window`` / ``read_window`` / ``max_records`` /
      ``candidate_cap`` bound the tracker's memory (``None`` = exact,
      unbounded — see :mod:`repro.checkers.online`).
    """

    def __init__(self, cluster, mode: Optional[str] = None,
                 initial: Any = NO_INITIAL,
                 keep_history: bool = True,
                 write_window: Optional[int] = None,
                 read_window: Optional[int] = None,
                 max_records: Optional[int] = None,
                 candidate_cap: Optional[int] = None,
                 tau_hint: Optional[float] = None,
                 retain_handles: bool = True,
                 checkers: Iterable[OnlineChecker] = ()):
        self.cluster = cluster
        self.retain_handles = retain_handles
        self.tracker: Optional[OnlineTauTracker] = None
        attached: List[OnlineChecker] = list(checkers)
        if mode is not None:
            self.tracker = OnlineTauTracker(
                mode=mode, initial=initial, write_window=write_window,
                read_window=read_window, max_records=max_records,
                candidate_cap=candidate_cap, tau_hint=tau_hint)
            attached.append(self.tracker)
        self.stream = ObservationStream(checkers=attached,
                                        keep_history=keep_history)
        self.drivers: List[ClientDriver] = []
        #: count of currently busy drivers, maintained by idle-edge
        #: callbacks so the run-loop predicate is one integer compare
        #: instead of a per-event scan over every driver.
        self._busy = 0

    # -- spec entry point --------------------------------------------------
    @classmethod
    def run_spec(cls, spec, **params):
        """Run a :class:`~repro.workloads.spec.ScenarioSpec` (or family
        name / spec dict) and return the family's result object.

        The engine is where every scenario family executes, so this is
        the natural front door: ``ScenarioEngine.run_spec("swsr",
        seed=1)`` is :func:`repro.workloads.spec.run_scenario` by another
        name.
        """
        from .spec import run_scenario
        return run_scenario(spec, **params)

    # -- driving -----------------------------------------------------------
    def driver(self, process) -> ClientDriver:
        """A sequential driver whose completions feed the stream."""
        driver = ClientDriver(self.cluster.scheduler, process,
                              observer=self.stream.observe_handle,
                              retain_handles=self.retain_handles,
                              idle_observer=self._on_idle_edge)
        self.drivers.append(driver)
        return driver

    def _on_idle_edge(self, idle: bool) -> None:
        self._busy += -1 if idle else 1

    def _drivers_done(self) -> bool:
        return self._busy == 0

    @property
    def all_done(self) -> bool:
        return self._busy == 0

    def run(self, max_events: int) -> bool:
        """Run the cluster until every driver drains; close the stream.

        Returns whether all operations terminated within the budget
        (``SimulationLimitReached`` surfaces as ``completed=False``,
        same contract as the batch scenarios had).
        """
        completed = True
        try:
            self.cluster.scheduler.run_until(self._drivers_done,
                                             max_events=max_events)
        except SimulationLimitReached:
            completed = False
        self.stream.close()
        return completed

    def step(self, max_events: int) -> bool:
        """Like :meth:`run` but without closing the stream — the chunked
        driving loop of the soak family schedules more work afterwards."""
        try:
            self.cluster.scheduler.run_until(self._drivers_done,
                                             max_events=max_events)
        except SimulationLimitReached:
            return False
        return True

    # -- results -----------------------------------------------------------
    @property
    def history(self) -> Optional[History]:
        return self.stream.history

    def report(self, tau_no_tr: float,
               completed: bool = True) -> Optional[StabilizationReport]:
        """The run's stabilization report, straight off the stream.

        ``None`` when the run did not complete, has no reads, or no
        tracker is attached — the same cases the batch path skipped the
        (then expensive) report for.
        """
        if not completed or self.tracker is None or self.stream.reads == 0:
            return None
        self.stream.close()
        return self.tracker.report(tau_no_tr)
