"""Workload generation and canned end-to-end scenarios."""

from .engine import ScenarioEngine
from .generators import (ClientDriver, OpSpec, ValueStream,
                         alternating_schedule, burst_schedule)
from .scenarios import (KVScenarioResult, ReshardScenarioResult,
                        ScenarioResult, ScenarioSummary, history_digest,
                        run_kv_scenario, run_mobile_byzantine_scenario,
                        run_mwmr_scenario, run_partition_scenario,
                        run_reshard_scenario, run_soak_scenario,
                        run_swsr_scenario)
from .spec import ScenarioSpec, run_scenario, scenario_families

__all__ = [
    "ClientDriver", "KVScenarioResult", "OpSpec", "ReshardScenarioResult",
    "ScenarioEngine", "ScenarioResult", "ScenarioSpec", "ScenarioSummary",
    "ValueStream", "alternating_schedule", "burst_schedule",
    "history_digest", "run_kv_scenario", "run_mobile_byzantine_scenario",
    "run_mwmr_scenario", "run_partition_scenario", "run_reshard_scenario",
    "run_scenario", "run_soak_scenario", "run_swsr_scenario",
    "scenario_families",
]
