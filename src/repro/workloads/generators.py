"""Workload generation: value streams, operation schedules, client drivers.

The paper's clients are *sequential* (one operation at a time), so driving
an operation schedule means queueing: a :class:`ClientDriver` starts each
queued operation as soon as its time arrives **and** the client is free,
preserving the intended order.

Written values must be unique for the checkers to map reads back to writes;
:class:`ValueStream` guarantees that.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..sim.process import OperationHandle, Process
from ..sim.scheduler import Scheduler


class ValueStream:
    """Unique, human-readable written values: ``w0, w1, ...``.

    Values are interned: each drawn value is carried inside every Write
    message, echoed by every server reply and compared by the checkers,
    so sharing one string object per value turns those comparisons into
    pointer checks and stops the substrate allocating duplicate payload
    strings.  Interning changes neither the drawn values nor any digest
    (pinned in ``tests/test_workloads.py``).
    """

    def __init__(self, prefix: str = "w"):
        self.prefix = prefix
        self._counter = 0

    def next(self) -> str:
        value = sys.intern(f"{self.prefix}{self._counter}")
        self._counter += 1
        return value

    @property
    def produced(self) -> int:
        return self._counter


class ClientDriver:
    """Queues sequential operations on one client process.

    ``driver.at(time, factory)`` arranges for ``factory()`` (which must
    start an operation and return its handle) to run at virtual ``time`` —
    or as soon after as the client is free.
    """

    def __init__(self, scheduler: Scheduler, process: Process,
                 observer: Optional[Callable[[OperationHandle], None]] = None,
                 retain_handles: bool = True,
                 idle_observer: Optional[Callable[[bool], None]] = None):
        self.scheduler = scheduler
        self.process = process
        self.observer = observer
        #: ``False`` frees each handle once observed (streaming consumers
        #: need no batch ``History.from_handles`` pass) — what keeps a
        #: long-horizon soak run's memory independent of its op count.
        self.retain_handles = retain_handles
        #: called with the new idle state on every idle<->busy *edge*; lets
        #: the engine keep an O(1) all-drivers-done predicate instead of
        #: re-scanning every driver after every simulated event.
        self.idle_observer = idle_observer
        self.handles: List[OperationHandle] = []
        self.scheduled = 0
        self.finished = 0
        self._idle = True
        self._pending: Deque[Callable[[], OperationHandle]] = deque()

    def at(self, time: float, factory: Callable[[], OperationHandle]) -> None:
        self.scheduled += 1
        self.scheduler.schedule_at(time, self._enqueue, factory,
                                   label=f"driver:{self.process.pid}")
        self._sync_idle()

    def _enqueue(self, factory: Callable[[], OperationHandle]) -> None:
        self._pending.append(factory)
        self._pump()

    def _pump(self) -> None:
        if not self._pending or self.process.busy:
            return
        factory = self._pending.popleft()
        handle = factory()
        if self.retain_handles:
            self.handles.append(handle)
        handle.on_done(self._completed)

    def _completed(self, handle: OperationHandle) -> None:
        # observe first: the stream must see this operation before the
        # chained next operation can be invoked at the same instant.
        self.finished += 1
        if self.observer is not None:
            self.observer(handle)
        self._pump()
        self._sync_idle()

    def _sync_idle(self) -> None:
        """Report idle<->busy edges (idempotent, reentrancy-safe)."""
        idle = self.finished == self.scheduled and not self._pending
        if idle != self._idle:
            self._idle = idle
            if self.idle_observer is not None:
                self.idle_observer(idle)

    @property
    def all_done(self) -> bool:
        return self.finished == self.scheduled and not self._pending


@dataclass
class OpSpec:
    """One scheduled operation in a declarative workload."""

    time: float
    kind: str                    # "write" | "read"
    process: str                 # client pid (ignored for SWSR)
    value: Optional[Any] = None  # for writes; None -> draw from the stream


def alternating_schedule(start: float, count: int, gap: float,
                         reader_offset: Optional[float] = None
                         ) -> Tuple[List[float], List[float]]:
    """Write times and read times, interleaved.

    With the default offset (``gap / 2``) each read falls strictly between
    two writes (sequential); a small offset creates read/write concurrency
    (the regime where regular registers may show new/old inversions).
    """
    if reader_offset is None:
        reader_offset = gap / 2
    write_times = [start + i * gap for i in range(count)]
    read_times = [t + reader_offset for t in write_times]
    return write_times, read_times


def burst_schedule(start: float, writes: int, reads: int,
                   write_gap: float, read_gap: float) -> Tuple[List[float],
                                                               List[float]]:
    """A dense burst of writes with reads racing through it."""
    write_times = [start + i * write_gap for i in range(writes)]
    read_times = [start + i * read_gap for i in range(reads)]
    return write_times, read_times
