"""Capture sessions: how a live run feeds a :class:`CaptureSink`.

The lower layers expose *registries*, not capture knowledge: the
observation stream offers every newly constructed stream to
:func:`~repro.checkers.stream.register_stream_tap` factories, the fault
injector and timeline announce firings through
:func:`~repro.faults.transient.register_fault_tap` /
:func:`~repro.faults.schedule.register_timeline_tap`, and the rebalancer
reports ring mutations through
:func:`~repro.kvstore.rebalance.register_reshard_tap`.  This module
registers one tap of each kind at import; the taps forward to whichever
:class:`CaptureSession` is *active* (a stack, pushed by
:func:`capturing`), and do nothing when none is.

A scenario session claims the **first** stream a run constructs (every
serial scenario family builds exactly one), attaches a recorder +
metrics checker to it, and — once the family returns — seals the log
with the run's ``summarize()`` and the checker configuration replay
needs (τ-tracker mode/initial, or the linearizer's sealed cutoffs).

Service captures do not go through the session stack at all: a
:class:`ServiceCaptureSession` is handed straight to
:class:`~repro.service.server.KVService` (duck-typed — the service
layer never imports capture) and records frames and drain transitions
in execution order.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional

from ..checkers.online import (OnlineChecker, OnlineTauTracker,
                               StreamingLinearizer)
from ..checkers.regularity import NO_INITIAL
from ..checkers.stream import register_stream_tap
from ..checkers.history import Operation
from ..faults.schedule import register_timeline_tap
from ..faults.transient import register_fault_tap
from ..kvstore.rebalance import register_reshard_tap
from .format import CaptureSink, encode_value, jsonable_params
from .metrics import MetricsEmitter

#: Families whose header records a ring shape.
_SHARDED_FAMILIES = ("kv", "reshard")

#: Stack of active sessions; the innermost one receives tap events.
_ACTIVE: list = []


def _encode_initial(value: Any) -> Any:
    if value is NO_INITIAL:
        return {"$no_initial": True}
    return encode_value(value)


def decode_initial(payload: Any) -> Any:
    if isinstance(payload, dict) and payload.get("$no_initial") is True:
        return NO_INITIAL
    from .format import decode_value
    return decode_value(payload)


class _SessionChecker(OnlineChecker):
    """The per-stream rider: forwards ops to the sink and the metrics."""

    def __init__(self, session: "CaptureSession"):
        self._session = session

    def observe(self, op: Operation) -> None:
        sink = self._session.sink
        if sink is not None:
            sink.observe(op)
        metrics = self._session.metrics
        if metrics is not None:
            metrics.observe(op)

    def finish(self) -> None:
        metrics = self._session.metrics
        if metrics is not None:
            metrics.finish()


class CaptureSession:
    """One scenario run's recording state (sink and/or metrics)."""

    def __init__(self, sink: Optional[CaptureSink],
                 metrics: Optional[MetricsEmitter]):
        self.sink = sink
        self.metrics = metrics
        self._claimed = False
        self._finalized = False

    @classmethod
    def for_spec(cls, spec) -> "CaptureSession":
        """Build the session a :class:`ScenarioSpec` run asked for."""
        sink = None
        if spec.capture is not None:
            resolved = spec.resolved()
            ring = None
            if spec.family in _SHARDED_FAMILIES:
                ring = {"shards": resolved.get("shard_count"),
                        "vnodes": resolved.get("vnodes")}
            sink = CaptureSink(
                spec.capture, profile="scenario",
                spec={"family": spec.family,
                      "params": jsonable_params(dict(spec.params))},
                seed=resolved.get("seed"), ring=ring)
        metrics = None
        if spec.metrics_every is not None or spec.metrics_out is not None:
            metrics = MetricsEmitter(every=spec.metrics_every,
                                     out=spec.metrics_out)
        return cls(sink, metrics)

    # -- tap entry points --------------------------------------------------
    def claim_stream(self, stream) -> Optional[OnlineChecker]:
        """First stream of the run gets the recorder; later ones don't."""
        if self._claimed:
            return None
        self._claimed = True
        if self.metrics is not None:
            self.metrics.bind(stream)
        return _SessionChecker(self)

    def record_fault(self, t: float, lane: str, fault: str,
                     detail: Dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.record_fault(t, lane, fault, detail)

    def record_reshard(self, report) -> None:
        if self.sink is not None:
            self.sink.record_reshard(report.time, report.to_dict())

    # -- sealing -----------------------------------------------------------
    def finalize(self, result) -> None:
        """Seal the capture with the finished run's result."""
        self._finalized = True
        if self.metrics is not None:
            self.metrics.finish()           # idempotent
        if self.sink is None:
            return
        summary = result.summarize().to_dict()
        self.sink.close(history_digest=summary.get("history_digest"),
                        summary=summary, check=self._check_info(result))

    def abandon(self) -> None:
        """Run failed before sealing: release the file, leave it
        footer-less (replay will fail loudly with a truncation error)."""
        if not self._finalized and self.sink is not None:
            self.sink.abandon()

    def _check_info(self, result) -> Dict[str, Any]:
        extra = getattr(result, "extra", None) or {}
        tracker = extra.get("tracker")
        if isinstance(tracker, OnlineTauTracker):
            return {"kind": "tau", "mode": tracker.mode,
                    "register": tracker.register,
                    "initial": _encode_initial(tracker.initial)}
        linearizer = extra.get("linearizer")
        if isinstance(linearizer, StreamingLinearizer):
            return {"kind": "linearizer",
                    "initial": encode_value(linearizer.initial),
                    "cutoffs": linearizer.cutoffs()}
        return {"kind": "none"}


@contextlib.contextmanager
def capturing(spec) -> Iterator[CaptureSession]:
    """Run a spec's family under an active capture session."""
    session = CaptureSession.for_spec(spec)
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.remove(session)
        session.abandon()


class ServiceCaptureSession:
    """Recording seam handed to :class:`~repro.service.server.KVService`.

    The service calls (duck-typed): :meth:`operation_recorder` once at
    construction to get a checker for its observation stream, then
    :meth:`record_frame` / :meth:`record_drain` as traffic flows.
    :meth:`close` seals the log with the service's final digests and
    :meth:`~repro.service.server.KVService.stats` snapshot.
    """

    def __init__(self, path, *, store: Dict[str, Any],
                 max_events: int = 2_000_000):
        self.store_config = dict(store)
        self.max_events = int(max_events)
        self.sink = CaptureSink(
            path, profile="service", spec=None,
            seed=self.store_config.get("seed"),
            ring={"shards": self.store_config.get("shard_count"),
                  "vnodes": None},
            extra_header={"store": self.store_config,
                          "max_events": self.max_events})
        self._closed = False

    def operation_recorder(self) -> OnlineChecker:
        return self.sink

    def record_frame(self, t: float, request: Dict[str, Any],
                     response: Dict[str, Any]) -> None:
        self.sink.record_frame(t, request, response)

    def record_drain(self, t: float, transition: str) -> None:
        self.sink.record_drain(t, transition)

    def close(self, service) -> None:
        """Seal with the live service's digests and stats."""
        if self._closed:
            return
        self._closed = True
        stats = service.stats()
        self.sink.close(
            history_digest=service.history_digest,
            summary=stats,
            check={"kind": "service",
                   "response_digest": service.response_digest})


# -- the module-level taps (installed once, at import) ---------------------

def _stream_tap(stream):
    if not _ACTIVE:
        return None
    return _ACTIVE[-1].claim_stream(stream)


def _fault_tap(t, label, fault, detail):
    if _ACTIVE:
        _ACTIVE[-1].record_fault(t, label, fault, dict(detail))


def _timeline_tap(t, label, event):
    if _ACTIVE:
        args = jsonable_params(dict(event.args))
        _ACTIVE[-1].record_fault(t, label, event.kind, args)


def _reshard_tap(report):
    if _ACTIVE:
        _ACTIVE[-1].record_reshard(report)


register_stream_tap(_stream_tap)
register_fault_tap(_fault_tap)
register_timeline_tap(_timeline_tap)
register_reshard_tap(_reshard_tap)
