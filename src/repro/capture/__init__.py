"""Universal trace capture/replay + soak observability (PR 9).

``repro.capture`` generalizes the fuzz replay artifact into a
packet-log-style record/replay format for *any* run this repo can
produce — scenario families, fuzz cases and live ``repro.service``
traffic — plus the live-metrics half that makes long soaks observable:

* :mod:`repro.capture.format` — the versioned JSON-lines trace format
  (header / events / SHA-256 footer) with its typed error hierarchy,
  the :class:`CaptureSink` recorder and the validating
  :class:`CaptureReader`;
* :mod:`repro.capture.session` — how a live run feeds a sink (stream /
  fault / timeline / reshard taps, service frame recording);
* :mod:`repro.capture.metrics` — periodic JSON-lines snapshots and the
  fire-once ``alert_on_violation`` hook;
* :mod:`repro.capture.replay` — re-simulate or re-check a sealed
  capture and hard-assert it reproduces (imported lazily: pulling in
  the workload and service layers only when replay is actually used);
* :mod:`repro.capture.cli` — the ``repro-capture`` tool
  (``record`` / ``replay`` / ``check`` / ``tail``).

Front-door usage::

    from repro.capture import record_scenario, replay_capture
    record_scenario("swsr", "trace.jsonl", seed=3, num_writes=4,
                    num_reads=4)
    replay_capture("trace.jsonl", mode="recheck")   # raises on mismatch
"""

from .format import (CaptureError, CaptureFormatError, CaptureReader,
                     CaptureSink, CorruptCaptureError, EVENT_KINDS,
                     FORMAT, PROTOCOL_VERSION, ReplayMismatchError,
                     TruncatedCaptureError, load_capture, verify_capture)
from .metrics import DEFAULT_EVERY, MetricsEmitter
from .session import CaptureSession, ServiceCaptureSession, capturing

#: Names resolved from :mod:`repro.capture.replay` on first access.
_LAZY_REPLAY = ("ReplayReport", "capture_service", "record_scenario",
                "replay_capture", "replay_service_capture")

__all__ = ["FORMAT", "PROTOCOL_VERSION", "EVENT_KINDS",
           "CaptureError", "CaptureFormatError", "TruncatedCaptureError",
           "CorruptCaptureError", "ReplayMismatchError",
           "CaptureSink", "CaptureReader", "load_capture",
           "verify_capture", "DEFAULT_EVERY", "MetricsEmitter",
           "CaptureSession", "ServiceCaptureSession", "capturing",
           *_LAZY_REPLAY]


def __getattr__(name):
    if name in _LAZY_REPLAY:
        from . import replay
        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
