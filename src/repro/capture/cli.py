"""``repro-capture`` — record, replay, check and tail trace files.

::

    repro-capture record --family swsr --out trace.jsonl \\
        --param seed=3 --param num_writes=4 --param num_reads=4 \\
        [--metrics metrics.jsonl --metrics-every 50]
    repro-capture replay trace.jsonl [--mode resimulate|recheck] \\
        [--workers N] [--out report.json]
    repro-capture check trace.jsonl
    repro-capture tail metrics.jsonl [-n 10]

``record`` runs a scenario with capture enabled and prints its summary;
``replay`` re-drives a sealed capture (exit 1 on any divergence);
``check`` structurally verifies a capture (checksums, sequencing,
per-lane monotonicity) without replaying it; ``tail`` prints the last
lines of any JSON-lines file (captures or metrics) for quick grepping.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .format import CaptureError


def _parse_param(text: str) -> tuple:
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--param expects key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw                       # bare strings need no quotes
    return key, value


def _emit(payload: Dict[str, Any], quiet: bool) -> None:
    if not quiet:
        print(json.dumps(payload, sort_keys=True, indent=2))


def cmd_record(args: argparse.Namespace) -> int:
    from ..workloads.spec import ScenarioSpec
    from .replay import record_scenario
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
        if args.family or args.param:
            print("record: --spec excludes --family/--param",
                  file=sys.stderr)
            return 2
    else:
        if not args.family:
            print("record: one of --family or --spec is required",
                  file=sys.stderr)
            return 2
        spec = ScenarioSpec(args.family, dict(args.param or ()))
    result = record_scenario(spec, args.out, metrics_out=args.metrics,
                             metrics_every=args.metrics_every)
    _emit({"capture": args.out, "metrics": args.metrics,
           "summary": result.summarize().to_dict()}, args.quiet)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .replay import replay_capture
    try:
        report = replay_capture(args.trace, mode=args.mode,
                                workers=args.workers, strict=False)
    except CaptureError as exc:
        print(f"replay: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    payload = report.to_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
    _emit(payload, args.quiet)
    if not report.ok:
        print("replay: capture did NOT reproduce", file=sys.stderr)
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .format import verify_capture
    try:
        info = verify_capture(args.trace)
    except CaptureError as exc:
        print(f"check: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    _emit(info, args.quiet)
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for line in lines[-args.lines:]:
        sys.stdout.write(line if line.endswith("\n") else line + "\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-capture",
        description="record / replay / check / tail repro trace files")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a scenario with capture")
    record.add_argument("--family", help="scenario family to run")
    record.add_argument("--param", action="append", type=_parse_param,
                        metavar="KEY=VALUE",
                        help="family parameter (JSON value or bare "
                             "string); repeatable")
    record.add_argument("--spec", help="JSON spec file instead of "
                                       "--family/--param")
    record.add_argument("--out", required=True,
                        help="capture file to write")
    record.add_argument("--metrics", help="metrics JSON-lines file")
    record.add_argument("--metrics-every", type=float, default=None,
                        help="metrics cadence in simulated time units")
    record.add_argument("--quiet", action="store_true")
    record.set_defaults(func=cmd_record)

    replay = sub.add_parser("replay", help="re-drive a sealed capture")
    replay.add_argument("trace", help="capture file")
    replay.add_argument("--mode", choices=("resimulate", "recheck"),
                        default="resimulate")
    replay.add_argument("--workers", type=int, default=None,
                        help="re-simulate with a parallel runner "
                             "(kv/soak families)")
    replay.add_argument("--out", help="write the replay report here")
    replay.add_argument("--quiet", action="store_true")
    replay.set_defaults(func=cmd_replay)

    check = sub.add_parser("check", help="structural verification only")
    check.add_argument("trace", help="capture file")
    check.add_argument("--quiet", action="store_true")
    check.set_defaults(func=cmd_check)

    tail = sub.add_parser("tail", help="print the last lines of a "
                                       "JSON-lines file")
    tail.add_argument("file")
    tail.add_argument("-n", "--lines", type=int, default=10)
    tail.set_defaults(func=cmd_tail)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":          # pragma: no cover
    sys.exit(main())
