"""The versioned JSON-lines trace format: records, writer, reader.

A capture file is plain JSON-lines — one canonical JSON object per line,
keys sorted, compact separators, no wall-clock anywhere (re-recording
the same spec yields the identical bytes):

* the first line is the **header** (``"record": "header"``) carrying the
  format and service-protocol versions, the originating
  :class:`~repro.workloads.spec.ScenarioSpec` (or service store config),
  the seed and — for sharded families — the ring shape;
* every following line but the last is an **event**
  (``"record": "event"``) with a contiguous ``seq`` number, a
  simulated-time stamp ``t`` that is monotone *per lane* (per register
  for operations, per injector for faults, the service clock for
  frames), and a ``kind`` drawn from a small vocabulary — ``op``
  (completed operations), ``fault`` (injector bursts / link garbage and
  fault-timeline firings), ``reshard`` (ring mutations), ``frame``
  (service request/response pairs in execution order) and ``drain``
  (service drain-window transitions);
* the last line is the **footer** (``"record": "footer"``) sealing the
  log: the event count, an incremental SHA-256 over the raw bytes of
  every preceding line, the stream's ``history_digest`` and enough
  result/check state for replay to hard-assert equality.

Anything that deviates fails loudly with a typed error — there is no
silent partial replay:

* :class:`CaptureFormatError` — not a capture, or an unknown version;
* :class:`TruncatedCaptureError` — the footer is missing;
* :class:`CorruptCaptureError` — checksum, sequence or monotonicity
  violations, or an undecodable line.

>>> import io
>>> from repro.checkers.history import Operation
>>> buf = io.StringIO()
>>> sink = CaptureSink(buf, profile="scenario", spec=None, seed=3)
>>> _ = sink.observe(Operation("write", "w", "w0", 1.0, 2.0))
>>> sink.close()
>>> lines = buf.getvalue().splitlines()
>>> [json.loads(line)["record"] for line in lines]
['header', 'event', 'footer']
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import (Any, Dict, IO, Iterator, List, Optional, Tuple,
                    Union)

from ..checkers.history import Operation
from ..registers.messages import BOT

#: Format tag stamped into (and demanded from) every capture header.
FORMAT = "repro.capture/1"

#: Service protocol generation recorded alongside the format version.
PROTOCOL_VERSION = 1

#: Event-kind vocabulary (anything else in a v1 file is corrupt).
EVENT_KINDS = ("drain", "fault", "frame", "op", "reshard")


class CaptureError(Exception):
    """Base class for every capture/replay failure."""


class CaptureFormatError(CaptureError):
    """The file is not a capture, or its version is unsupported."""


class TruncatedCaptureError(CaptureError):
    """The log ends without a footer — the run never sealed it."""


class CorruptCaptureError(CaptureError):
    """Checksum / sequencing / monotonicity violation inside the log."""


class ReplayMismatchError(CaptureError):
    """Replay diverged from the captured footer."""


# -- canonical encoding ----------------------------------------------------

def canonical_line(record: Dict[str, Any]) -> str:
    """One record as its canonical JSON line (sorted keys, compact)."""
    try:
        return json.dumps(record, sort_keys=True,
                          separators=(",", ":"), ensure_ascii=True)
    except (TypeError, ValueError) as exc:
        raise CaptureError(f"record is not JSON-able: {exc}") from None


def encode_value(value: Any) -> Any:
    """An operation value as JSON: scalars pass through, ``BOT`` is
    tagged so replay can restore the singleton (repr-faithfully)."""
    if value is BOT:
        return {"$bot": True}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise CaptureError(f"operation value {value!r} is not capturable")


def decode_value(payload: Any) -> Any:
    if isinstance(payload, dict):
        if payload.get("$bot") is True:
            return BOT
        raise CorruptCaptureError(f"unknown value encoding: {payload!r}")
    return payload


def encode_operation(op: Operation) -> Dict[str, Any]:
    return {"invoke": op.invoke, "kind": op.kind, "process": op.process,
            "register": op.register, "response": op.response,
            "value": encode_value(op.value)}


def decode_operation(payload: Dict[str, Any]) -> Operation:
    try:
        return Operation(kind=payload["kind"], process=payload["process"],
                         value=decode_value(payload["value"]),
                         invoke=payload["invoke"],
                         response=payload["response"],
                         register=payload["register"])
    except KeyError as exc:
        raise CorruptCaptureError(f"op event missing field {exc}") from None


class _LaneClock:
    """Per-(kind, lane) monotonicity guard shared by writer and reader."""

    def __init__(self, side: str):
        self._side = side
        self._last: Dict[Tuple[str, str], float] = {}

    def check(self, seq: int, kind: str, lane: str, t: float) -> None:
        key = (kind, lane)
        last = self._last.get(key)
        if last is not None and t < last:
            raise CorruptCaptureError(
                f"{self._side}: event {seq} ({kind}/{lane}) moves time "
                f"backwards: {t} < {last}")
        self._last[key] = t


class CaptureSink:
    """Streams capture records to a JSON-lines sink as a run executes.

    The sink is :class:`~repro.checkers.online.OnlineChecker`-shaped —
    ``observe(op)`` records one completed operation — so it can ride any
    :class:`~repro.checkers.stream.ObservationStream`; the extra
    ``record_*`` methods cover the non-operation lanes (faults, reshard
    events, service frames and drain windows).  The header is written
    eagerly at construction; :meth:`close` seals the log with the
    SHA-256 footer.  Every line's hash is folded incrementally, so the
    sink holds O(1) state regardless of run length.
    """

    def __init__(self, sink: Union[str, os.PathLike, IO[str]], *,
                 profile: str, spec: Optional[Dict[str, Any]] = None,
                 seed: Optional[int] = None,
                 ring: Optional[Dict[str, int]] = None,
                 extra_header: Optional[Dict[str, Any]] = None):
        if isinstance(sink, (str, os.PathLike)):
            self._file: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_file = True
            self.path: Optional[str] = os.fspath(sink)
        else:
            self._file = sink
            self._owns_file = False
            self.path = None
        self._sha = hashlib.sha256()
        self._seq = 0
        self._clock = _LaneClock("capture")
        self._closed = False
        self.events = 0
        header = {"record": "header", "format": FORMAT,
                  "protocol": PROTOCOL_VERSION, "profile": profile,
                  "spec": spec, "seed": seed, "ring": ring}
        if extra_header:
            header.update(extra_header)
        self._emit(header)

    # -- low-level line plumbing -------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise CaptureError("capture sink is closed")
        line = canonical_line(record) + "\n"
        self._sha.update(line.encode("utf-8"))
        self._file.write(line)

    def _event(self, kind: str, lane: str, t: float,
               payload: Dict[str, Any]) -> None:
        self._clock.check(self._seq, kind, lane, float(t))
        record = {"record": "event", "seq": self._seq, "kind": kind,
                  "lane": lane, "t": float(t)}
        record.update(payload)
        self._emit(record)
        self._seq += 1
        self.events += 1

    # -- the event vocabulary ----------------------------------------------
    def observe(self, op: Operation) -> None:
        """OnlineChecker hook: record one completed operation."""
        self._event("op", op.register, op.response,
                    {"op": encode_operation(op)})

    def finish(self) -> None:
        """OnlineChecker hook: the footer is written by :meth:`close`
        (which needs the run's result), so end-of-stream is a no-op."""

    def record_fault(self, t: float, lane: str, fault: str,
                     detail: Optional[Dict[str, Any]] = None) -> None:
        self._event("fault", lane, t,
                    {"fault": fault, "detail": dict(detail or {})})

    def record_reshard(self, t: float, event: Dict[str, Any]) -> None:
        self._event("reshard", "reshard", t, {"event": event})

    def record_frame(self, t: float, request: Dict[str, Any],
                     response: Dict[str, Any]) -> None:
        self._event("frame", "service", t,
                    {"frame": {"request": request, "response": response}})

    def record_drain(self, t: float, transition: str) -> None:
        self._event("drain", "service", t, {"drain": transition})

    # -- sealing -----------------------------------------------------------
    def close(self, *, history_digest: Optional[str] = None,
              summary: Optional[Dict[str, Any]] = None,
              check: Optional[Dict[str, Any]] = None,
              extra_footer: Optional[Dict[str, Any]] = None) -> None:
        """Seal the log with the checksum footer (idempotent)."""
        if self._closed:
            return
        footer = {"record": "footer", "events": self.events,
                  "history_digest": history_digest, "summary": summary,
                  "check": check}
        if extra_footer:
            footer.update(extra_footer)
        footer["sha256"] = self._sha.hexdigest()
        line = canonical_line(footer) + "\n"
        self._file.write(line)
        self._closed = True
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()

    def abandon(self) -> None:
        """Release the file **without** a footer — the log stays visibly
        truncated, so replay fails loudly instead of trusting it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()


class CaptureReader:
    """Validating, streaming reader for one capture file.

    Iterating :meth:`events` yields event records one at a time with
    O(1) reader state — sequence contiguity, per-lane time monotonicity
    and the rolling SHA-256 are checked as lines stream by, and the
    footer (available as :attr:`footer` afterwards) must match the
    accumulated hash and event count.  All deviations raise the typed
    errors documented in this module.
    """

    def __init__(self, source: Union[str, os.PathLike, IO[str]]):
        self._source = source
        self.header = self._read_header()
        self.footer: Optional[Dict[str, Any]] = None

    def _open(self) -> IO[str]:
        if isinstance(self._source, (str, os.PathLike)):
            return open(self._source, "r", encoding="utf-8")
        self._source.seek(0)
        return self._source

    def _parse(self, line: str, where: str) -> Dict[str, Any]:
        try:
            record = json.loads(line)
        except ValueError:
            raise CorruptCaptureError(
                f"{where}: line is not valid JSON") from None
        if not isinstance(record, dict) or "record" not in record:
            raise CaptureFormatError(f"{where}: not a capture record")
        return record

    def _read_header(self) -> Dict[str, Any]:
        handle = self._open()
        try:
            first = handle.readline()
        finally:
            if isinstance(self._source, (str, os.PathLike)):
                handle.close()
        if not first.strip():
            raise CaptureFormatError("empty file: no capture header")
        header = self._parse(first, "header")
        if header.get("record") != "header":
            raise CaptureFormatError(
                f"first record is {header.get('record')!r}, not a header")
        if header.get("format") != FORMAT:
            raise CaptureFormatError(
                f"unsupported capture format {header.get('format')!r} "
                f"(this reader speaks {FORMAT!r})")
        return header

    def events(self) -> Iterator[Dict[str, Any]]:
        """Yield validated event records in file order."""
        handle = self._open()
        sha = hashlib.sha256()
        clock = _LaneClock("replay")
        expect_seq = 0
        footer = None
        try:
            for index, raw in enumerate(handle):
                if not raw.strip():
                    raise CorruptCaptureError(f"line {index + 1} is blank")
                record = self._parse(raw, f"line {index + 1}")
                kind = record["record"]
                if kind == "footer":
                    footer = record
                    if handle.readline().strip():
                        raise CorruptCaptureError(
                            "trailing data after the footer")
                    break
                sha.update(raw.encode("utf-8") if raw.endswith("\n")
                           else (raw + "\n").encode("utf-8"))
                if kind == "header":
                    if index != 0:
                        raise CorruptCaptureError(
                            f"stray header at line {index + 1}")
                    continue
                if kind != "event":
                    raise CaptureFormatError(
                        f"line {index + 1}: unknown record {kind!r}")
                seq = record.get("seq")
                if seq != expect_seq:
                    raise CorruptCaptureError(
                        f"sequence gap: expected seq {expect_seq}, "
                        f"got {seq!r}")
                expect_seq += 1
                ev_kind = record.get("kind")
                if ev_kind not in EVENT_KINDS:
                    raise CorruptCaptureError(
                        f"event {seq} has unknown kind {ev_kind!r}")
                clock.check(seq, ev_kind, record.get("lane", ""),
                            float(record["t"]))
                yield record
        finally:
            if isinstance(self._source, (str, os.PathLike)):
                handle.close()
        if footer is None:
            raise TruncatedCaptureError(
                "capture ends without a footer (truncated log)")
        if footer.get("events") != expect_seq:
            raise CorruptCaptureError(
                f"footer counts {footer.get('events')} events, "
                f"file holds {expect_seq}")
        if footer.get("sha256") != sha.hexdigest():
            raise CorruptCaptureError(
                "footer checksum does not match the log body")
        self.footer = footer

    def read_footer(self) -> Dict[str, Any]:
        """Validate the whole log and return the footer."""
        for _ in self.events():
            pass
        assert self.footer is not None
        return self.footer


def load_capture(source: Union[str, os.PathLike, IO[str]]
                 ) -> Tuple[Dict[str, Any], List[Dict[str, Any]],
                            Dict[str, Any]]:
    """Fully validate one capture; return ``(header, events, footer)``."""
    reader = CaptureReader(source)
    events = list(reader.events())
    assert reader.footer is not None
    return reader.header, events, reader.footer


def verify_capture(source: Union[str, os.PathLike, IO[str]]
                   ) -> Dict[str, Any]:
    """Structurally verify a capture (checksums, sequencing, per-lane
    monotonicity) without replaying it; returns a small summary dict."""
    reader = CaptureReader(source)
    kinds: Dict[str, int] = {}
    for event in reader.events():
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    footer = reader.footer or {}
    return {"events": footer.get("events", 0),
            "history_digest": footer.get("history_digest"),
            "kinds": dict(sorted(kinds.items())),
            "profile": reader.header.get("profile"),
            "sha256": footer.get("sha256")}


def jsonable_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Render scenario params as plain JSON: ``FaultTimeline`` objects
    become their ``to_dict()`` events, tuples become lists.  Dict keys
    pass through ``json.dumps`` stringification (the sharded families
    already coerce shard keys back with ``int()``)."""
    def convert(value: Any) -> Any:
        if hasattr(value, "to_dict") and callable(value.to_dict):
            return convert(value.to_dict())
        if isinstance(value, dict):
            return {key: convert(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(item) for item in value]
        return value
    return {key: convert(value) for key, value in params.items()}


# re-exported for the doctest above
__all__ = ["FORMAT", "PROTOCOL_VERSION", "EVENT_KINDS", "CaptureError",
           "CaptureFormatError", "TruncatedCaptureError",
           "CorruptCaptureError", "ReplayMismatchError", "CaptureSink",
           "CaptureReader", "load_capture", "verify_capture",
           "canonical_line", "encode_value", "decode_value",
           "encode_operation", "decode_operation", "jsonable_params"]
