"""Soak observability: periodic JSON-lines metrics + first-violation alert.

A :class:`MetricsEmitter` rides an
:class:`~repro.checkers.stream.ObservationStream` like any other online
checker and emits one snapshot line every ``every`` units of *simulated*
time: throughput (ops / ops-per-sim-second), per-register τ_stab read
off every attached :class:`~repro.checkers.online.OnlineTauTracker`,
live window occupancy (how many operations the streaming checkers are
holding — flat occupancy is the bounded-memory invariant made visible)
and the running violation count across
``OnlineTauTracker`` / ``OnlineInversionDetector`` /
``StreamingLinearizer`` sources.

The ``alert_on_violation`` callback fires **exactly once**, the moment
the total violation count first leaves zero, together with an
``"alert": true`` snapshot — so a soak's metrics file can be watched (or
grepped) for the instant a checker flipped.  A final snapshot
(``"final": true``) is always emitted when the stream closes.

Snapshots are plain JSON objects, one per line, with sorted keys and
monotonically non-decreasing ``t`` — greppable and ``tail``-able:

>>> from repro.checkers.history import Operation
>>> from repro.checkers.online import OnlineTauTracker
>>> from repro.checkers.stream import ObservationStream
>>> emitter = MetricsEmitter(every=5.0)
>>> stream = ObservationStream(checkers=[OnlineTauTracker("regular"),
...                                      emitter])
>>> _ = emitter.bind(stream)
>>> for i in range(4):
...     _ = stream.observe(Operation("write", "w", f"w{i}",
...                                  1.0 + 3 * i, 2.0 + 3 * i))
>>> stream.close()
>>> [snap["ops"] for snap in emitter.snapshots]
[3, 4]
>>> emitter.snapshots[-1]["final"]
True
"""

from __future__ import annotations

import json
import os
from typing import (Any, Callable, Dict, IO, List, Optional, Union)

from ..checkers.online import (OnlineChecker, OnlineInversionDetector,
                               OnlineRegularityChecker, OnlineTauTracker,
                               StreamingLinearizer)
from ..checkers.history import Operation

#: Snapshot cadence (simulated time units) when only an output path was
#: configured.
DEFAULT_EVERY = 100.0


def _violations_of(checker: Any) -> int:
    if isinstance(checker, OnlineTauTracker):
        return checker.violation_count
    if isinstance(checker, OnlineRegularityChecker):
        return checker.violation_count
    if isinstance(checker, OnlineInversionDetector):
        return checker.inversion_count
    if isinstance(checker, StreamingLinearizer):
        return sum(1 for ok in checker.verdicts().values() if not ok)
    return 0


def _occupancy_of(checker: Any) -> int:
    return int(getattr(checker, "window_occupancy", 0))


class MetricsEmitter(OnlineChecker):
    """Periodic metrics snapshots over a live observation stream."""

    def __init__(self, every: Optional[float] = None,
                 out: Union[str, os.PathLike, IO[str], None] = None,
                 alert_on_violation: Optional[
                     Callable[[Dict[str, Any]], None]] = None):
        if every is not None and not every > 0:
            raise ValueError(f"metrics cadence must be positive: {every}")
        self.every = float(every) if every is not None else DEFAULT_EVERY
        if isinstance(out, (str, os.PathLike)):
            self._file: Optional[IO[str]] = open(out, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = out
            self._owns_file = out is not None
        self.alert_on_violation = alert_on_violation
        #: every snapshot emitted, in order (also written to ``out``).
        self.snapshots: List[Dict[str, Any]] = []
        #: how many times the alert fired (0 or 1 by construction).
        self.alerts = 0
        self._sources: List[Any] = []
        self._stream = None
        self._t: Optional[float] = None
        self._next: Optional[float] = None
        self._ops = 0
        self._writes = 0
        self._reads = 0
        self._last_t = 0.0
        self._last_ops = 0
        self._finished = False

    # -- wiring ------------------------------------------------------------
    def bind(self, stream) -> "MetricsEmitter":
        """Read violation/occupancy sources off ``stream``'s checkers."""
        self._stream = stream
        return self

    def add_source(self, checker: Any) -> None:
        """Watch an extra checker that is not attached to the stream."""
        if checker not in self._sources:
            self._sources.append(checker)

    def _iter_sources(self):
        seen = []
        if self._stream is not None:
            for checker in self._stream.checkers:
                if checker is not self:
                    seen.append(checker)
        for checker in self._sources:
            if checker not in seen:
                seen.append(checker)
        return seen

    # -- aggregation -------------------------------------------------------
    def _violations(self) -> int:
        return sum(_violations_of(c) for c in self._iter_sources())

    def _window(self) -> int:
        return sum(_occupancy_of(c) for c in self._iter_sources())

    def _taus(self) -> List[Dict[str, Any]]:
        taus = []
        for checker in self._iter_sources():
            if isinstance(checker, OnlineTauTracker):
                taus.append({"register": checker.register or "reg",
                             "tau_stab": checker.tau_stab()})
        return taus

    # -- OnlineChecker hooks -----------------------------------------------
    def observe(self, op: Operation) -> None:
        t = float(op.response)
        self._t = t if self._t is None else max(self._t, t)
        self._ops += 1
        if op.kind == "write":
            self._writes += 1
        elif op.kind == "read":
            self._reads += 1
        if self._next is None:
            self._next = self._t + self.every
        self._check_alert()
        if self._t >= self._next:
            while self._t >= self._next:
                self._next += self.every
            self._snapshot()

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._check_alert()
        self._snapshot(final=True)
        if self._owns_file and self._file is not None:
            self._file.close()
            self._file = None

    # -- emission ----------------------------------------------------------
    def _check_alert(self) -> None:
        if self.alerts:
            return
        if self._violations() > 0:
            self.alerts = 1
            snap = self._snapshot(alert=True)
            if self.alert_on_violation is not None:
                self.alert_on_violation(snap)

    def _snapshot(self, alert: bool = False,
                  final: bool = False) -> Dict[str, Any]:
        t = self._t if self._t is not None else 0.0
        dt = t - self._last_t
        dops = self._ops - self._last_ops
        snap = {
            "alert": alert,
            "final": final,
            "ops": self._ops,
            "ops_per_sec": round(dops / dt, 3) if dt > 0 else 0.0,
            "reads": self._reads,
            "t": t,
            "taus": self._taus(),
            "violations": self._violations(),
            "window": self._window(),
            "writes": self._writes,
        }
        self._last_t, self._last_ops = t, self._ops
        self.snapshots.append(snap)
        if self._file is not None:
            self._file.write(json.dumps(snap, sort_keys=True) + "\n")
            self._file.flush()
        return snap
