"""Replay: re-drive a sealed capture and hard-assert it reproduces.

Two modes cover the two halves of the determinism claim:

* **re-simulate** — rebuild the originating
  :class:`~repro.workloads.spec.ScenarioSpec` from the header and run
  it again; the fresh run's ``history_digest`` *and entire*
  ``summarize()`` must equal the footer byte-for-byte.  This checks the
  whole simulator, not just the checkers.  ``workers=`` re-runs
  families with a parallel runner (``kv``/``soak``) under that worker
  count — the digest must not care.
* **re-check** — stream the recorded operations straight through fresh
  online checkers (rebuilt from the footer's ``check`` configuration:
  τ-tracker mode/initial, or the linearizer's sealed cutoffs) without
  any simulation: O(events) time, memory bounded by the checker
  windows.  Digest, counters and verdicts must match the footer.

Service captures (``profile: "service"``) are re-driven through a fresh
:class:`~repro.service.server.KVService` — every recorded frame is
re-submitted in recorded (execution) order, drain windows are replayed
so rejected operations reproduce as rejections, and the final
``history_digest`` / ``response_digest`` must equal the footer's.

Any divergence raises :class:`~repro.capture.format.ReplayMismatchError`
(``strict=False`` returns the report with ``ok=False`` instead); a
damaged log never gets this far — the reader fails it with a typed
error first.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..checkers.online import OnlineTauTracker, StreamingLinearizer
from ..checkers.stream import ObservationStream
from ..workloads.spec import ScenarioSpec
from .format import (CaptureFormatError, CaptureReader,
                     ReplayMismatchError, canonical_line,
                     decode_operation, decode_value)
from .session import ServiceCaptureSession, decode_initial


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    mode: str                      #: "resimulate" | "recheck" | "service"
    profile: str                   #: header profile replayed
    events: int                    #: events the capture holds
    ok: bool                       #: everything reproduced
    history_digest: Optional[str]  #: digest the replay computed
    expected_digest: Optional[str]  #: digest the footer promised
    mismatches: List[str] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None   #: replay-side summary

    def to_dict(self) -> Dict[str, Any]:
        return {"events": self.events,
                "expected_digest": self.expected_digest,
                "history_digest": self.history_digest,
                "mismatches": list(self.mismatches), "mode": self.mode,
                "ok": self.ok, "profile": self.profile,
                "summary": self.summary}


def record_scenario(spec, path, *, metrics_out=None, metrics_every=None,
                    **params):
    """Run a scenario with capture enabled; returns the run's result.

    ``spec`` is a family name, mapping or :class:`ScenarioSpec`;
    ``params`` overlay its parameters.
    """
    if not isinstance(spec, ScenarioSpec):
        spec = (ScenarioSpec.from_dict(spec) if isinstance(spec, dict)
                else ScenarioSpec(spec))
    if params:
        spec = spec.with_params(**params)
    spec = ScenarioSpec(spec.family, spec.params, capture=path,
                        metrics_out=metrics_out,
                        metrics_every=metrics_every)
    return spec.run()


def _finish_report(report: ReplayReport, strict: bool) -> ReplayReport:
    report.ok = not report.mismatches
    if strict and not report.ok:
        raise ReplayMismatchError(
            f"replay ({report.mode}) diverged from the capture: "
            + "; ".join(report.mismatches))
    return report


def _diff_summaries(expected: Dict[str, Any],
                    actual: Dict[str, Any]) -> List[str]:
    """Byte-level comparison, reported per key for readability."""
    mismatches = []
    for key in sorted(set(expected) | set(actual)):
        want = canonical_line({key: expected.get(key)})
        got = canonical_line({key: actual.get(key)})
        if want != got:
            mismatches.append(f"summary[{key!r}]: expected "
                              f"{expected.get(key)!r}, got "
                              f"{actual.get(key)!r}")
    return mismatches


def replay_capture(source, mode: str = "resimulate",
                   workers: Optional[int] = None,
                   strict: bool = True) -> ReplayReport:
    """Replay one capture file; see the module docstring for modes."""
    reader = CaptureReader(source)
    profile = reader.header.get("profile")
    if profile == "service":
        if workers is not None:
            raise ValueError("service replays are inherently serial")
        return replay_service_capture(source, strict=strict)
    if profile != "scenario":
        raise CaptureFormatError(
            f"cannot replay profile {profile!r} here (fuzz-replay "
            f"captures re-run through repro.fuzz)")
    if mode == "resimulate":
        return _resimulate(reader, workers, strict)
    if mode == "recheck":
        if workers is not None:
            raise ValueError("re-check mode has no workers (no sim)")
        return _recheck(reader, strict)
    raise ValueError(f"unknown replay mode {mode!r}")


def _resimulate(reader: CaptureReader, workers: Optional[int],
                strict: bool) -> ReplayReport:
    footer = reader.read_footer()
    spec = ScenarioSpec.from_dict(reader.header["spec"])
    if workers is not None:
        if "parallel" not in spec.defaults():
            raise ValueError(
                f"family {spec.family!r} has no parallel runner")
        spec = spec.with_params(parallel=int(workers))
    summary = spec.run().summarize().to_dict()
    expected = footer.get("summary") or {}
    report = ReplayReport(
        mode="resimulate", profile="scenario",
        events=footer.get("events", 0), ok=False,
        history_digest=summary.get("history_digest"),
        expected_digest=footer.get("history_digest"),
        mismatches=_diff_summaries(expected, summary), summary=summary)
    return _finish_report(report, strict)


def _recheck(reader: CaptureReader, strict: bool) -> ReplayReport:
    # first pass: full structural validation, and the footer (the check
    # configuration lives there — it is only known once a run ends).
    footer = reader.read_footer()
    expected = footer.get("summary") or {}
    check = footer.get("check") or {"kind": "none"}
    tracker: Optional[OnlineTauTracker] = None
    linearizer: Optional[StreamingLinearizer] = None
    checkers: List[Any] = []
    if check.get("kind") == "tau":
        tracker = OnlineTauTracker(
            mode=check["mode"], register=check.get("register"),
            initial=decode_initial(check.get("initial")))
        checkers.append(tracker)
    elif check.get("kind") == "linearizer":
        linearizer = StreamingLinearizer(
            initial=decode_value(check.get("initial")))
        for register, cutoff in sorted(check.get("cutoffs",
                                                 {}).items()):
            linearizer.seal(register, cutoff)
        checkers.append(linearizer)
    # second pass: stream the operations through the fresh checkers —
    # no simulation, O(events), memory bounded by the checker windows.
    stream = ObservationStream(checkers=checkers, keep_history=False)
    for event in reader.events():
        if event["kind"] == "op":
            stream.observe(decode_operation(event["op"]))
    stream.close()
    mismatches = []
    digest = stream.digest()
    if digest != footer.get("history_digest"):
        mismatches.append(f"history_digest: expected "
                          f"{footer.get('history_digest')}, got {digest}")
    for key, got in (("ops", stream.ops), ("writes", stream.writes),
                     ("reads", stream.reads)):
        if expected.get(key) != got:
            mismatches.append(f"{key}: expected {expected.get(key)}, "
                              f"got {got}")
    replayed: Dict[str, Any] = {"ops": stream.ops,
                                "writes": stream.writes,
                                "reads": stream.reads,
                                "history_digest": digest}
    if tracker is not None:
        verdict = tracker.report(float(expected.get("tau_no_tr", 0.0)))
        for key, got in (("stable", verdict.stable),
                         ("tau_1w", verdict.tau_1w),
                         ("tau_stab", verdict.tau_stab),
                         ("dirty_reads", verdict.dirty_reads),
                         ("total_reads", verdict.total_reads)):
            if expected.get(key) != got:
                mismatches.append(f"{key}: expected "
                                  f"{expected.get(key)}, got {got}")
            replayed[key] = got
    if linearizer is not None:
        verdicts = linearizer.verdicts()
        stable = bool(expected.get("completed")) and all(verdicts.values())
        if expected.get("stable") != stable:
            mismatches.append(f"stable: expected "
                              f"{expected.get('stable')}, got {stable} "
                              f"(verdicts {verdicts})")
        replayed["stable"] = stable
        replayed["verdicts"] = verdicts
    report = ReplayReport(
        mode="recheck", profile="scenario",
        events=footer.get("events", 0), ok=False,
        history_digest=digest,
        expected_digest=footer.get("history_digest"),
        mismatches=mismatches, summary=replayed)
    return _finish_report(report, strict)


def replay_service_capture(source, strict: bool = True) -> ReplayReport:
    """Re-drive a captured service session through a fresh KVService."""
    from ..service.protocol import Request
    from ..service.server import KVService
    reader = CaptureReader(source)
    if reader.header.get("profile") != "service":
        raise CaptureFormatError(
            f"not a service capture: {reader.header.get('profile')!r}")
    store_config = dict(reader.header.get("store") or {})
    max_events = int(reader.header.get("max_events") or 2_000_000)
    service = KVService(max_events=max_events, **store_config)
    mismatches: List[str] = []

    async def drive() -> None:
        for event in reader.events():
            kind = event["kind"]
            if kind == "drain":
                if event["drain"] == "begin":
                    service.begin_drain()
                else:
                    service.end_drain()
            elif kind == "frame":
                frame = event["frame"]
                request = Request.from_payload(dict(frame["request"]))
                response = await service.handle(request)
                got = response.to_payload()
                want = frame["response"]
                if canonical_line(got) != canonical_line(want):
                    mismatches.append(
                        f"frame seq {event['seq']} "
                        f"(request {request.request_id}): expected "
                        f"{want!r}, got {got!r}")

    asyncio.run(drive())
    footer = reader.footer or {}
    check = footer.get("check") or {}
    if service.history_digest != footer.get("history_digest"):
        mismatches.append(
            f"history_digest: expected {footer.get('history_digest')}, "
            f"got {service.history_digest}")
    if service.response_digest != check.get("response_digest"):
        mismatches.append(
            f"response_digest: expected {check.get('response_digest')}, "
            f"got {service.response_digest}")
    report = ReplayReport(
        mode="service", profile="service",
        events=footer.get("events", 0), ok=False,
        history_digest=service.history_digest,
        expected_digest=footer.get("history_digest"),
        mismatches=mismatches, summary=service.stats())
    return _finish_report(report, strict)


def capture_service(path, *, store: Dict[str, Any],
                    max_events: int = 2_000_000) -> ServiceCaptureSession:
    """Open a service capture session (hand it to ``KVService``)."""
    return ServiceCaptureSession(path, store=store, max_events=max_events)
