"""``python -m repro.capture`` — same surface as ``repro-capture``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
