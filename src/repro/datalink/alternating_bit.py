"""Footnote-3 self-stabilizing data link (alternating bit, cap+1 acks).

Quoting the paper: *"when a message m send operation is invoked by a correct
process pi to a correct process pj, pi repeatedly sends the packet (0, m) to
pj until receiving (cap + 1) packets from pj (where cap is the maximal
number of packets in transit from pi to pj and back).  Then pi repeatedly
sends the packets (1, m) to pj until receiving (cap + 1) packets from pj.
Process pj sends (bit, ack) only when receiving (bit, m), and executes
ss_deliver(m) when receiving the packet (1, m) immediately after receiving
the packet (0, m)."*

Receiving ``cap + 1`` acknowledgements for the current bit guarantees that
at least one of them was generated *after* the current packet was first
received, because at most ``cap`` stale packets (including arbitrary initial
garbage) can be in transit on the round trip.  That is what makes the
protocol self-stabilizing: arbitrary initial channel content is flushed
within one bit phase.

:class:`AlternatingBitSender` additionally queues messages so a stream can
be pushed through one at a time, preserving the FIFO *order delivery*
property of ss-broadcast.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from ..sim.scheduler import Scheduler
from .bounded_link import BoundedCapacityLink
from .packets import AckPacket, DataPacket


class AlternatingBitSender:
    """Reliable FIFO sender over a bounded-capacity lossy channel.

    ``round_trip_cap`` is the paper's ``cap``: the maximal number of packets
    in transit *from pi to pj and back*.  With per-direction channels of
    capacity ``c`` each that is ``2c`` (the default).  Requiring
    ``round_trip_cap + 1`` acknowledgements of the current bit guarantees at
    least one of them was generated after the current packet was received:
    at most ``round_trip_cap`` stale packets (data or ack) can sit anywhere
    on the loop when a bit phase starts.
    """

    def __init__(self, scheduler: Scheduler, link: BoundedCapacityLink,
                 retry_interval: float = 0.25,
                 round_trip_cap: int = None):
        self.scheduler = scheduler
        self.link = link
        self.retry_interval = retry_interval
        self.cap = (round_trip_cap if round_trip_cap is not None
                    else 2 * link.cap)
        self._queue: Deque[Tuple[Any, Optional[Callable[[], None]]]] = deque()
        self._current: Optional[Tuple[Any, Optional[Callable[[], None]]]] = None
        self._bit = 0
        self._acks_for_bit = 0
        self._timer = None
        self.completed_sends = 0
        # bounded per-message stream tag (see packets.DataPacket.tag)
        self._tag = 0
        self._tag_modulus = 2 * self.cap + 4

    # -- public API -------------------------------------------------------
    def enqueue(self, body: Any,
                on_complete: Optional[Callable[[], None]] = None) -> None:
        """Queue ``body`` for reliable delivery; FIFO w.r.t. earlier sends."""
        self._queue.append((body, on_complete))
        if self._current is None:
            self._start_next()

    def on_ack(self, ack: AckPacket) -> None:
        """Feed an acknowledgement packet arriving on the reverse channel."""
        if self._current is None:
            return  # stale or garbage ack outside any send: ignore
        if ack.bit != self._bit or getattr(ack, "tag", 0) != self._tag:
            return  # ack of another bit phase or message: stale, ignore
        self._acks_for_bit += 1
        if self._acks_for_bit >= self.cap + 1:
            if self._bit == 0:
                self._bit = 1
                self._acks_for_bit = 0
                self._transmit()
            else:
                self._finish_current()

    @property
    def idle(self) -> bool:
        return self._current is None and not self._queue

    # -- internals -------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            self._current = None
            self._cancel_timer()
            return
        self._current = self._queue.popleft()
        self._bit = 0
        self._acks_for_bit = 0
        self._tag = (self._tag + 1) % self._tag_modulus
        self._transmit()

    def _finish_current(self) -> None:
        current = self._current
        self._current = None
        self.completed_sends += 1
        self._cancel_timer()
        # Start the next queued message *before* running the completion
        # callback: the callback may wake a client coroutine that enqueues
        # further messages re-entrantly, and must observe consistent state.
        self._start_next()
        if current is not None and current[1] is not None:
            current[1]()

    def _transmit(self) -> None:
        if self._current is None:
            return
        body = self._current[0]
        self.link.send(DataPacket(self._bit, body, self._tag))
        self._cancel_timer()
        self._timer = self.scheduler.schedule(
            self.retry_interval, self._transmit, label="ab-retry")

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class AlternatingBitReceiver:
    """Receiver half: acks every data packet, delivers on a 0 -> 1 edge."""

    def __init__(self, ack_link: BoundedCapacityLink,
                 deliver: Callable[[Any], None]):
        self.ack_link = ack_link
        self.deliver = deliver
        # Previous data-packet (bit, tag); arbitrary initial value is
        # tolerated (worst case: one spurious or one missed delivery of
        # initial garbage, both allowed by the Validity property).
        self.prev: Optional[tuple] = None
        self.deliveries = 0

    def on_packet(self, packet: DataPacket) -> None:
        tag = getattr(packet, "tag", 0)
        self.ack_link.send(AckPacket(packet.bit, tag))
        if packet.bit == 1 and self.prev == (0, tag):
            self.deliveries += 1
            self.deliver(packet.body)
        self.prev = (packet.bit, tag)
