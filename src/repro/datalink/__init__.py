"""Self-stabilizing communication substrate.

* bounded-capacity lossy raw channels (:mod:`~repro.datalink.bounded_link`),
* the footnote-3 alternating-bit stabilizing data link
  (:mod:`~repro.datalink.alternating_bit`),
* the ss-broadcast abstraction with two interchangeable transports
  (:mod:`~repro.datalink.ss_broadcast`).
"""

from .alternating_bit import AlternatingBitReceiver, AlternatingBitSender
from .bounded_link import BoundedCapacityLink
from .packets import AckPacket, DataPacket, SSConfirm, SSMsg, SSReply
from .ss_broadcast import (BroadcastHandle, ClientTransport,
                           DataLinkClientTransport, DirectClientTransport,
                           DirectServerTransport)

__all__ = [
    "AckPacket", "AlternatingBitReceiver", "AlternatingBitSender",
    "BoundedCapacityLink", "BroadcastHandle", "ClientTransport",
    "DataLinkClientTransport", "DataPacket", "DirectClientTransport",
    "DirectServerTransport", "SSConfirm", "SSMsg", "SSReply",
]
