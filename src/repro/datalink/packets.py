"""Wire formats of the communication substrate.

Two layers:

* **ss-broadcast layer** (client <-> server, over the reliable FIFO links of
  the basic model): :class:`SSMsg` carries a broadcast payload with its
  substrate *phase token*; :class:`SSConfirm` is the substrate-level delivery
  confirmation that lets the broadcaster satisfy the abstraction's
  *termination* / *synchronized delivery* properties; :class:`SSReply`
  carries an algorithm-level acknowledgement (ACK_WRITE / ACK_READ) echoing
  the phase token of the broadcast it answers (see DESIGN.md §2.5 on why the
  token lives in the substrate, mirroring the paper's FIFO-matching remark).

* **data-link layer** (footnote 3): :class:`DataPacket` / :class:`AckPacket`
  with an alternating ``bit``, exchanged over bounded-capacity raw channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class SSMsg:
    """A broadcast payload in transit from a client to one server."""

    phase: int
    sender: str
    payload: Any


@dataclass(frozen=True, slots=True)
class SSConfirm:
    """Substrate-level confirmation that one server ss-delivered a phase."""

    phase: int


@dataclass(frozen=True, slots=True)
class SSReply:
    """An algorithm-level acknowledgement correlated to a broadcast phase."""

    phase: int
    payload: Any


@dataclass(frozen=True, slots=True)
class DataPacket:
    """Alternating-bit data packet ``(bit, m)`` of the footnote-3 protocol.

    ``tag`` is a bounded per-message stream counter (the footnote's protocol
    implicitly serialises one message at a time; the explicit tag makes ack
    matching robust to stale packets straddling a message boundary, in the
    spirit of the token-circulation data links of [6, 7]).
    """

    bit: int
    body: Any
    tag: int = 0


@dataclass(frozen=True, slots=True)
class AckPacket:
    """Alternating-bit acknowledgement ``(bit, ack)``, echoing the tag."""

    bit: int
    tag: int = 0
