"""The ss-broadcast communication abstraction (Section 2.1).

Properties provided to the register algorithms: Termination, Eventual
delivery, Synchronized delivery (at least ``n - 2t`` correct servers deliver
within the invocation interval), No duplication, Validity, Order delivery.

Two interchangeable client-side transports:

* :class:`DirectClientTransport` — property-faithful fast model over the
  reliable FIFO links of the basic model.  Each broadcast sends one
  ``SSMsg`` per server; the server's substrate confirms delivery with one
  ``SSConfirm``; the invocation *terminates* once ``n - t`` servers
  confirmed, hence at least ``n - 2t`` correct servers delivered within the
  invocation interval (synchronized delivery).

* :class:`DataLinkClientTransport` — the real thing: one footnote-3
  alternating-bit sender per server over bounded-capacity lossy channels
  (``repro.datalink.alternating_bit``).  A broadcast completes when the
  data-link handshake finished towards ``n - t`` servers; handshake
  completion implies the receiver delivered, giving the same guarantee from
  weaker channels.

Both carry a substrate *phase token* used to correlate algorithm-level
acknowledgements with the broadcast they answer (DESIGN.md §2.5).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Set

from ..sim.network import DelayModel, FixedDelay
from ..sim.process import Process
from ..sim.random_source import RandomSource
from ..sim.scheduler import Scheduler
from ..sim.trace import BROADCAST
from .alternating_bit import AlternatingBitReceiver, AlternatingBitSender
from .bounded_link import BoundedCapacityLink
from .packets import AckPacket, DataPacket, SSConfirm, SSMsg


class BroadcastHandle:
    """Tracks substrate-level delivery confirmations for one broadcast."""

    __slots__ = ("phase", "needed", "confirmed")

    def __init__(self, phase: int, needed: int):
        self.phase = phase
        self.needed = needed
        self.confirmed: Set[str] = set()

    def confirm(self, server: str) -> None:
        self.confirmed.add(server)

    def completed(self) -> bool:
        """Termination condition of the ss_broadcast invocation."""
        return len(self.confirmed) >= self.needed


class ClientTransport:
    """Interface of the client-side ss-broadcast endpoint."""

    def begin(self, payload: Any) -> BroadcastHandle:
        raise NotImplementedError

    def on_network_message(self, src: str, msg: Any) -> bool:
        """Consume substrate messages; return True if handled."""
        raise NotImplementedError

    def retire(self, phase: int) -> None:
        """Forget bookkeeping for a finished broadcast."""


class DirectClientTransport(ClientTransport):
    """Fast, property-faithful transport over the reliable FIFO links."""

    def __init__(self, process: Process, servers: List[str], quorum: int):
        self.process = process
        self.servers = list(servers)
        self.quorum = quorum
        self._phases = itertools.count(1)
        self._handles: Dict[int, BroadcastHandle] = {}

    def begin(self, payload: Any) -> BroadcastHandle:
        phase = next(self._phases)
        handle = BroadcastHandle(phase, self.quorum)
        self._handles[phase] = handle
        self.process.trace.emit(self.process.scheduler.now, BROADCAST,
                                self.process.pid, phase=phase, payload=payload)
        # one frozen SSMsg shared across all servers (n-1 allocations
        # saved), dispatched straight to the fused per-link closures
        process = self.process
        message = SSMsg(phase, process.pid, payload)
        fast_out = process._fast_out
        for server in self.servers:
            fast = fast_out.get(server)
            if fast is not None:
                fast(message)
            else:
                process.network._send_slow(process.pid, server, message)
        return handle

    def on_network_message(self, src: str, msg: Any) -> bool:
        if isinstance(msg, SSConfirm):
            handle = self._handles.get(msg.phase)
            if handle is not None:
                handle.confirm(src)
            return True
        return False

    def retire(self, phase: int) -> None:
        self._handles.pop(phase, None)


class DirectServerTransport:
    """Server-side counterpart of :class:`DirectClientTransport`."""

    def __init__(self, server: "Process"):
        self.server = server

    def on_network_message(self, src: str, msg: Any) -> bool:
        if isinstance(msg, SSMsg):
            # Substrate-level confirmation: sent before the (possibly
            # Byzantine) automaton runs, unless the strategy suppresses it.
            if self.server.confirm_enabled:
                self.server.send(src, SSConfirm(msg.phase))
            # Reply "by return" to the physical link peer (``src``), not to
            # whatever sender a (possibly garbage) message claims: link
            # garbage may carry arbitrary sender fields.
            self.server.ss_deliver(src, msg.payload, msg.phase)
            return True
        return False


class DataLinkClientTransport(ClientTransport):
    """Packet-level transport: alternating-bit data links per server.

    ``server_processes`` maps server id to the actual process object so the
    receiver half can be wired to its ``ss_deliver`` method.
    """

    def __init__(self, process: Process, server_processes: Dict[str, Process],
                 quorum: int, scheduler: Scheduler,
                 randomness: RandomSource, cap: int = 2,
                 retry_interval: float = 0.25,
                 delay_model: Optional[DelayModel] = None):
        self.process = process
        self.quorum = quorum
        self._phases = itertools.count(1)
        self._handles: Dict[int, BroadcastHandle] = {}
        self.senders: Dict[str, AlternatingBitSender] = {}
        self.forward_links: Dict[str, BoundedCapacityLink] = {}
        self.reverse_links: Dict[str, BoundedCapacityLink] = {}
        delay = delay_model or FixedDelay(0.05)
        for server_id, server in server_processes.items():
            fwd_rng = randomness.stream(f"dl:{process.pid}->{server_id}")
            rev_rng = randomness.stream(f"dl:{server_id}->{process.pid}")
            sender_holder: List[AlternatingBitSender] = []

            def make_receiver_deliver(server=server, client_id=process.pid):
                def deliver(body: Any) -> None:
                    # body is (phase, payload); garbage bodies from preloaded
                    # channel content may have any shape -> Validity allows
                    # delivering them; guard the unpack.
                    if isinstance(body, tuple) and len(body) == 2:
                        server.ss_deliver(client_id, body[1], body[0])
                return deliver

            reverse = BoundedCapacityLink(
                scheduler, server_id, process.pid, cap,
                deliver=lambda pkt, holder=sender_holder: self._on_ack(holder, pkt),
                delay_model=delay, rng=rev_rng)
            receiver = AlternatingBitReceiver(reverse, make_receiver_deliver())
            forward = BoundedCapacityLink(
                scheduler, process.pid, server_id, cap,
                deliver=lambda pkt, recv=receiver: self._on_data(recv, pkt),
                delay_model=delay, rng=fwd_rng)
            sender = AlternatingBitSender(scheduler, forward, retry_interval)
            sender_holder.append(sender)
            self.senders[server_id] = sender
            self.forward_links[server_id] = forward
            self.reverse_links[server_id] = reverse

    @staticmethod
    def _on_data(receiver: AlternatingBitReceiver, packet: Any) -> None:
        if isinstance(packet, DataPacket):
            receiver.on_packet(packet)
        # non-DataPacket garbage on the raw channel is silently dropped

    def _on_ack(self, holder: List[AlternatingBitSender], packet: Any) -> None:
        if holder and isinstance(packet, AckPacket):
            holder[0].on_ack(packet)
            self.process.poll()

    def begin(self, payload: Any) -> BroadcastHandle:
        phase = next(self._phases)
        handle = BroadcastHandle(phase, self.quorum)
        self._handles[phase] = handle
        self.process.trace.emit(self.process.scheduler.now, BROADCAST,
                                self.process.pid, phase=phase, payload=payload)
        for server_id, sender in self.senders.items():
            def confirm(server_id=server_id, handle=handle):
                handle.confirm(server_id)
                self.process.poll()
            sender.enqueue((phase, payload), on_complete=confirm)
        return handle

    def on_network_message(self, src: str, msg: Any) -> bool:
        # Data-link packets never travel over the Network; SSConfirm unused.
        return isinstance(msg, SSConfirm)

    def retire(self, phase: int) -> None:
        self._handles.pop(phase, None)

    def total_packets(self) -> int:
        """Raw packets offered on all channels (bench P3 statistic)."""
        forward = sum(link.offered for link in self.forward_links.values())
        reverse = sum(link.offered for link in self.reverse_links.values())
        return forward + reverse
