"""Bounded-capacity raw channels.

The self-stabilizing data link of footnote 3 is defined over channels that
can hold at most ``cap`` packets in transit (Dolev [5], §4.2).  Such a
channel may *lose* packets offered beyond its capacity and may start with
arbitrary content (transient failures), but does not corrupt, duplicate or
create packets after the last transient failure.

:class:`BoundedCapacityLink` implements exactly that over the simulator's
scheduler.  It is deliberately *not* a :class:`repro.sim.network.Link`:
the reliable FIFO links of the basic model are what the ss-broadcast
abstraction *provides on top of* these weaker channels.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, List

from ..sim.network import DelayModel, FixedDelay
from ..sim.scheduler import Scheduler


class BoundedCapacityLink:
    """A lossy, bounded-capacity, FIFO packet channel.

    Packets offered while ``cap`` packets are already in flight are dropped
    (counted in :attr:`dropped`).  Use :meth:`preload` to model arbitrary
    initial channel content.
    """

    def __init__(self, scheduler: Scheduler, src: str, dst: str, cap: int,
                 deliver: Callable[[Any], None],
                 delay_model: DelayModel = None,
                 rng: random.Random = None):
        if cap < 1:
            raise ValueError("capacity must be at least 1")
        self.scheduler = scheduler
        self.src = src
        self.dst = dst
        self.cap = cap
        self.deliver = deliver
        self.delay_model = delay_model or FixedDelay(0.05)
        self.rng = rng or random.Random(0)
        self.in_flight = 0
        self.dropped = 0
        self.delivered = 0
        self.offered = 0
        self._last_delivery = 0.0

    def send(self, packet: Any) -> bool:
        """Offer a packet; returns False if the channel was full (dropped)."""
        self.offered += 1
        if self.in_flight >= self.cap:
            self.dropped += 1
            return False
        self.in_flight += 1
        delay = self.delay_model.sample(self.src, self.dst, packet, self.rng)
        delivery_time = max(self.scheduler.now + delay, self._last_delivery)
        self._last_delivery = delivery_time
        self.scheduler.schedule_at(delivery_time, self._arrive, packet,
                                   label=f"dl:{self.src}->{self.dst}")
        return True

    def preload(self, packets: Iterable[Any]) -> int:
        """Fill the channel with arbitrary initial content (up to ``cap``).

        Returns how many packets were actually placed.
        """
        placed = 0
        for packet in packets:
            if self.in_flight >= self.cap:
                break
            self.send(packet)
            # send() counted it as offered; undo the double count of drops
            placed += 1
        return placed

    def _arrive(self, packet: Any) -> None:
        self.in_flight -= 1
        self.delivered += 1
        self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BoundedCapacityLink({self.src}->{self.dst}, cap={self.cap}, "
                f"in_flight={self.in_flight}, dropped={self.dropped})")
