"""Failure models: transient corruption and Byzantine server strategies."""

from .byzantine import (ByzantineStrategy, CollusionCoordinator,
                        CrashStrategy, EquivocateStrategy,
                        FabricatedQuorumStrategy, FlipFlopStrategy,
                        InversionAttackStrategy, MobileByzantineController,
                        RandomGarbageStrategy, STRATEGY_FACTORIES,
                        SilentStrategy, StaleReplyStrategy,
                        rotate_byzantine_set, strategy_factory)
from .schedule import (EVENT_KINDS, FaultAction, FaultPlan, FaultTimeline,
                       TimelineEvent, transient_burst_plan)
from .transient import (TransientFaultInjector, garbage_message,
                        garbage_value)

__all__ = [
    "ByzantineStrategy", "CollusionCoordinator", "CrashStrategy",
    "EVENT_KINDS", "EquivocateStrategy", "FabricatedQuorumStrategy",
    "FaultAction",
    "FaultPlan", "FaultTimeline", "FlipFlopStrategy",
    "InversionAttackStrategy",
    "MobileByzantineController", "TimelineEvent",
    "RandomGarbageStrategy", "STRATEGY_FACTORIES", "SilentStrategy",
    "StaleReplyStrategy", "TransientFaultInjector", "garbage_message",
    "garbage_value", "rotate_byzantine_set", "strategy_factory",
    "transient_burst_plan",
]
