"""Failure models: transient corruption and Byzantine server strategies."""

from .byzantine import (ByzantineStrategy, CollusionCoordinator,
                        CrashStrategy, EquivocateStrategy,
                        FabricatedQuorumStrategy, FlipFlopStrategy,
                        InversionAttackStrategy, MobileByzantineController,
                        RandomGarbageStrategy, STRATEGY_FACTORIES,
                        SilentStrategy, StaleReplyStrategy, strategy_factory)
from .schedule import FaultAction, FaultPlan, transient_burst_plan
from .transient import (TransientFaultInjector, garbage_message,
                        garbage_value)

__all__ = [
    "ByzantineStrategy", "CollusionCoordinator", "CrashStrategy",
    "EquivocateStrategy", "FabricatedQuorumStrategy", "FaultAction",
    "FaultPlan", "FlipFlopStrategy", "InversionAttackStrategy",
    "MobileByzantineController",
    "RandomGarbageStrategy", "STRATEGY_FACTORIES", "SilentStrategy",
    "StaleReplyStrategy", "TransientFaultInjector", "garbage_message",
    "garbage_value", "strategy_factory", "transient_burst_plan",
]
