"""Byzantine server strategies (Section 2.1 failure model, footnote 1).

A Byzantine server *"behaves arbitrarily ... sending erroneous values, not
sending a message when this should be done, stopping its execution"*.  Each
strategy below is one concrete adversary; a cluster installs them with
``cluster.make_byzantine(ids, factory)``.  ``strategy = None`` means the
server is correct.

The strategies receive every ss-delivered payload (the channel still
delivers — Byzantine servers own their behaviour, not the network) and
decide what, if anything, to reply.  :class:`MobileByzantineController`
implements the *mobile* failures of footnote 1: the Byzantine set moves
between operations, and a server leaving the set re-joins the correct ones
with an arbitrary (corrupted) state.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from ..registers.base import ServerProcess
from ..registers.messages import BOT, AckRead, AckWrite, NewHelpVal, Read, Write
from .transient import TransientFaultInjector, garbage_value


class ByzantineStrategy:
    """Base class; subclasses override :meth:`on_deliver`."""

    name = "byzantine"

    def attach(self, server: ServerProcess) -> None:
        """Hook run when installed on ``server``."""

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        raise NotImplementedError


class SilentStrategy(ByzantineStrategy):
    """Never replies (and suppresses substrate confirmations): a mute or

    crashed server.  Exercises the ``n - t`` waits: operations must
    terminate without it.
    """

    name = "silent"

    def __init__(self, suppress_confirm: bool = True):
        self.suppress_confirm = suppress_confirm

    def attach(self, server: ServerProcess) -> None:
        if self.suppress_confirm:
            server.confirm_enabled = False

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        return None


class CrashStrategy(SilentStrategy):
    """Alias of :class:`SilentStrategy` (a stopped server)."""

    name = "crash"


class RandomGarbageStrategy(ByzantineStrategy):
    """Replies to every request with freshly fabricated random values."""

    name = "random-garbage"

    def __init__(self, rng: random.Random):
        self.rng = rng

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        if isinstance(payload, Write):
            server.reply(client,
                         AckWrite(payload.reg_id, garbage_value(self.rng)),
                         phase)
        elif isinstance(payload, Read):
            server.reply(client,
                         AckRead(payload.reg_id, garbage_value(self.rng),
                                 garbage_value(self.rng)),
                         phase)
        # NEW_HELP_VAL needs no reply; silently dropped.


class StaleReplyStrategy(ByzantineStrategy):
    """Pretends to be stuck in the past: answers from a frozen snapshot.

    The snapshot of each register's state is taken lazily the first time
    the register is queried and never updated, so the server keeps
    acknowledging writes while advertising ancient values to reads.
    """

    name = "stale"

    def __init__(self):
        self._snapshot: Dict[str, Any] = {}

    def _frozen(self, server: ServerProcess, reg_id: str) -> Any:
        if reg_id not in self._snapshot:
            automaton = server.automatons.get(reg_id)
            if automaton is None:
                self._snapshot[reg_id] = (None, BOT)
            else:
                self._snapshot[reg_id] = (automaton.last_val,
                                          automaton.helping_val)
        return self._snapshot[reg_id]

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        reg_id = getattr(payload, "reg_id", None)
        if reg_id is None:
            return
        last_val, helping_val = self._frozen(server, reg_id)
        if isinstance(payload, Write):
            server.reply(client, AckWrite(reg_id, helping_val), phase)
        elif isinstance(payload, Read):
            server.reply(client, AckRead(reg_id, last_val, helping_val), phase)


class EquivocateStrategy(ByzantineStrategy):
    """Keeps honest *state* (so it can lie credibly) but poisons reads.

    Writes are applied to the real automaton (which acknowledges honestly);
    every read gets a unique fabricated value, so this server can never
    contribute to a read quorum — maximally unhelpful without being silent.
    """

    name = "equivocate"

    def __init__(self, rng: random.Random):
        self.rng = rng
        self._counter = 0

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        if isinstance(payload, (Write, NewHelpVal)):
            server.dispatch(client, payload, phase)
            return
        if isinstance(payload, Read):
            self._counter += 1
            unique = f"equivocal#{server.pid}#{self._counter}"
            server.reply(client,
                         AckRead(payload.reg_id, unique, unique), phase)


class InversionAttackStrategy(ByzantineStrategy):
    """Actively pushes new/old inversions: tracks the write stream and

    answers every read with the *previous* value instead of the latest one
    (with ⊥ as helping value, denying the helping mechanism too).
    """

    name = "inversion-attack"

    def __init__(self):
        self._history: Dict[str, List[Any]] = {}

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        if isinstance(payload, Write):
            self._history.setdefault(payload.reg_id, []).append(payload.value)
            server.dispatch(client, payload, phase)  # honest ack, fresh state
            return
        if isinstance(payload, NewHelpVal):
            return  # refuse to help
        if isinstance(payload, Read):
            values = self._history.get(payload.reg_id, [])
            stale = values[-2] if len(values) >= 2 else \
                (values[-1] if values else None)
            server.reply(client, AckRead(payload.reg_id, stale, BOT), phase)


class FlipFlopStrategy(ByzantineStrategy):
    """Answers alternate reads with the newest and the oldest value.

    This is the adversary of the deterministic Figure-1 reproduction
    (``repro.experiments.figure1``): with a write stalled half-way through
    the server set, ``t`` flip-flopping servers swing the majority between
    the new and the old value across two successive reads, producing a
    new/old inversion on the *regular* register.  State is tracked honestly
    (writes are applied and acknowledged) so the lies are credible.
    """

    name = "flip-flop"

    def __init__(self):
        self._history: Dict[str, List[Any]] = {}
        self._read_count = 0

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        if isinstance(payload, Write):
            self._history.setdefault(payload.reg_id, []).append(payload.value)
            server.dispatch(client, payload, phase)
            return
        if isinstance(payload, NewHelpVal):
            return
        if isinstance(payload, Read):
            values = self._history.get(payload.reg_id, [])
            if not values:
                automaton = server.automatons.get(payload.reg_id)
                fallback = automaton.last_val if automaton else None
                server.reply(client, AckRead(payload.reg_id, fallback, BOT),
                             phase)
                return
            self._read_count += 1
            # odd reads: newest value; even reads: oldest value.
            value = values[-1] if self._read_count % 2 == 1 else values[0]
            server.reply(client, AckRead(payload.reg_id, value, BOT), phase)


class CollusionCoordinator:
    """Shared blackboard letting several Byzantine servers tell one lie."""

    def __init__(self, fabricated_value: Any = "evil"):
        self.fabricated_value = fabricated_value


class FabricatedQuorumStrategy(ByzantineStrategy):
    """All colluding servers answer reads with the same fabricated value,

    attempting to assemble a ``2t + 1`` quorum for a value that was never
    written (only possible when the resilience bound is violated and/or
    enough correct servers are stale).
    """

    name = "fabricated-quorum"

    def __init__(self, coordinator: CollusionCoordinator):
        self.coordinator = coordinator

    def on_deliver(self, server: ServerProcess, client: str, payload: Any,
                   phase: int) -> None:
        lie = self.coordinator.fabricated_value
        if isinstance(payload, Write):
            server.reply(client, AckWrite(payload.reg_id, lie), phase)
        elif isinstance(payload, Read):
            server.reply(client, AckRead(payload.reg_id, lie, lie), phase)


STRATEGY_FACTORIES = {
    "silent": lambda cluster: (lambda server: SilentStrategy()),
    "crash": lambda cluster: (lambda server: CrashStrategy()),
    "random-garbage": lambda cluster: (lambda server: RandomGarbageStrategy(
        cluster.randomness.stream(f"byz:{server.pid}"))),
    "stale": lambda cluster: (lambda server: StaleReplyStrategy()),
    "equivocate": lambda cluster: (lambda server: EquivocateStrategy(
        cluster.randomness.stream(f"byz:{server.pid}"))),
    "inversion-attack": lambda cluster: (lambda server: InversionAttackStrategy()),
    "flip-flop": lambda cluster: (lambda server: FlipFlopStrategy()),
}


def strategy_factory(name: str, cluster):
    """Look up a named strategy factory bound to ``cluster`` randomness."""
    try:
        return STRATEGY_FACTORIES[name](cluster)
    except KeyError:
        raise ValueError(f"unknown Byzantine strategy {name!r}") from None


def rotate_byzantine_set(cluster, injector: TransientFaultInjector,
                         new_set: Sequence[str], strategy_factory,
                         frozen: Sequence[str] = ()) -> List[str]:
    """Move the Byzantine set to ``new_set``; returns the recovered pids.

    Servers leaving the set become correct again with *arbitrary* local
    state (corrupted through ``injector``) — the mobile-failure semantics
    of footnote 1, shared by :class:`MobileByzantineController` and the
    ``byzantine`` events of :class:`~repro.faults.schedule.FaultTimeline`.
    ``frozen`` pids are left untouched even if currently faulty (e.g.
    servers a timeline crashed, which only its ``recover`` event revives).
    """
    recovering = [pid for pid in cluster.byzantine_ids
                  if pid not in new_set and pid not in frozen]
    cluster.make_byzantine(recovering, None)
    for pid in recovering:
        injector.corrupt_process(cluster.server(pid))
    cluster.make_byzantine(new_set, strategy_factory)
    return recovering


class MobileByzantineController:
    """Mobile Byzantine failures (footnote 1).

    Rotates the Byzantine set through ``server_ids`` (at most ``t`` at a
    time) at the given times.  A server leaving the Byzantine set becomes
    correct again but with *arbitrary* local state — we corrupt it through
    the transient injector, which is exactly the situation the paper's
    stabilization property is about.
    """

    def __init__(self, cluster, injector: TransientFaultInjector,
                 strategy_factory, rotation: Sequence[Sequence[str]],
                 times: Sequence[float]):
        if len(rotation) != len(times):
            raise ValueError("need one Byzantine set per rotation time")
        self.cluster = cluster
        self.injector = injector
        self.strategy_factory = strategy_factory
        for byz_set, time in zip(rotation, times):
            if len(byz_set) > cluster.params.t:
                raise ValueError(
                    f"Byzantine set {byz_set} exceeds t={cluster.params.t}")
            cluster.scheduler.schedule_at(
                time, self._rotate, list(byz_set), label="mobile-byz")

    def _rotate(self, new_set: List[str]) -> None:
        rotate_byzantine_set(self.cluster, self.injector, new_set,
                             self.strategy_factory)
