"""Declarative fault timelines: what goes wrong, when — as data.

Two layers live here:

* :class:`FaultPlan` — the original imperative list of ``(time, callable)``
  pairs, kept for hand-built experiments.
* :class:`FaultTimeline` — a *declarative, serializable* adversary
  description.  Every entry is a :class:`TimelineEvent` (time, kind,
  JSON-able args); the timeline round-trips through ``to_dict`` /
  ``from_dict`` so a :class:`~repro.runner.SweepSpec` can grid over
  adversary shapes exactly like it grids over ``n`` or seeds.

Supported event kinds
---------------------
``burst``           transient state corruption (Section 2.1): corrupt a
                    fraction of the registered variables of the targets
                    (``"servers"``, ``"clients"``, ``"all"`` or a pid list).
``link-garbage``    arbitrary initial link content: ``per_link`` garbage
                    messages on every client<->server link.
``partition``       take every link between ``group`` and the rest down
                    (messages sent meanwhile are dropped and counted).
``heal``            bring those links back up.
``crash``           the listed servers stop responding (crash faults).
``recover``         crashed servers come back — with *arbitrary* local
                    state unless ``corrupt`` is false, which is exactly
                    the situation the stabilization property covers.
``byzantine``       *mobile* Byzantine failures (footnote 1): the
                    Byzantine set moves to ``servers`` (at most ``t``),
                    running ``strategy``; servers leaving the set re-join
                    the correct ones with corrupted state.
``reshard_split``   live resharding: split ``shard`` in two (a joined
                    pool takes half its vnode slots, keys migrate).
``reshard_merge``   retire ``source`` into ``into`` (all its slots and
                    keys move there).
``migrate_vnodes``  move ``count`` vnode slots ``source`` → ``dest``.

The three ``reshard_*``/``migrate_vnodes`` kinds are **store-scoped**:
they reshape the whole :class:`~repro.kvstore.sharded.ShardedKVStore`,
not one cluster, so :meth:`FaultTimeline.install` (cluster-scoped)
rejects them — the :class:`~repro.kvstore.rebalance.Rebalancer` applies
them instead, between pipelined batches, composing with the per-shard
cluster-scoped events around them.

τ timeline
----------
``tau_no_tr`` is the last instant of any *transient-style* event (burst,
link garbage, partition/heal, crash/recover) — after it the paper's
assumption "no more transient failures" holds.  Mobile Byzantine rotation
is deliberately excluded: a moving Byzantine set of size ≤ t is a
*permanent* adversary the constructions must tolerate, not a transient
one.  ``last_event_time`` covers everything, for scenarios that want to
judge reads only after the adversary stopped moving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .byzantine import (CrashStrategy, rotate_byzantine_set,
                        strategy_factory)
from .transient import TransientFaultInjector

#: event kinds a timeline may contain (anything else is a spec error).
EVENT_KINDS = ("burst", "link-garbage", "partition", "heal", "crash",
               "recover", "byzantine", "reshard_split", "reshard_merge",
               "migrate_vnodes")

#: store-scoped rebalance kinds — applied by the Rebalancer, never
#: schedulable on a single cluster (see module docstring).
RESHARD_KINDS = frozenset({"reshard_split", "reshard_merge",
                           "migrate_vnodes"})

#: kinds that count towards τ_no_tr (see module docstring).  A rebalance
#: is a transient disturbance like a burst: ownership moves, then the
#: system must re-converge.
_TRANSIENT_KINDS = frozenset(EVENT_KINDS) - {"byzantine"}

#: Timeline taps: ``tap(t, label, event)`` fires after each timeline
#: event executes.  ``burst`` / ``link-garbage`` are excluded — the
#: injector-level tap (:func:`repro.faults.transient.register_fault_tap`)
#: already sees those, with their effect counts.
_TAPPED_KINDS = frozenset(EVENT_KINDS) - {"burst", "link-garbage"}
_TIMELINE_TAPS: List = []


def register_timeline_tap(tap) -> None:
    """Register a timeline-firing observer (idempotent)."""
    if tap not in _TIMELINE_TAPS:
        _TIMELINE_TAPS.append(tap)


class _TimelineCrash(CrashStrategy):
    """Marker strategy for servers crashed by a ``crash`` event.

    Only the matching ``recover`` event revives them: ``byzantine``
    rotation events must not mistake a crashed server for a rotation
    leaver and un-crash it early.
    """


@dataclass(frozen=True)
class TimelineEvent:
    """One declarative fault occurrence: plain data, JSON-able args."""

    time: float
    kind: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown timeline event kind {self.kind!r} "
                             f"(expected one of {EVENT_KINDS})")

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind,
                "args": {key: self.args[key] for key in sorted(self.args)}}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimelineEvent":
        return cls(time=float(data["time"]), kind=data["kind"],
                   args=dict(data.get("args") or {}))


class FaultTimeline:
    """A serializable adversary: an ordered list of fault events.

    Build fluently::

        timeline = (FaultTimeline()
                    .burst(2.0, fraction=0.5)
                    .partition(10.0, 25.0, ["s1", "s2"])
                    .byzantine(0.0, ["s1"], "random-garbage")
                    .byzantine(30.0, ["s2"], "random-garbage"))

    then ``timeline.install(cluster, injector)`` schedules every event on
    the cluster's scheduler, or ``timeline.to_dict()`` ships it through a
    sweep spec.
    """

    def __init__(self, events: Optional[Iterable[TimelineEvent]] = None):
        self.events: List[TimelineEvent] = list(events or [])

    # -- building ----------------------------------------------------------
    def add(self, time: float, kind: str, **args: Any) -> "FaultTimeline":
        self.events.append(TimelineEvent(time, kind, args))
        return self

    def burst(self, time: float, fraction: float = 1.0,
              targets: Any = "all") -> "FaultTimeline":
        return self.add(time, "burst", fraction=fraction, targets=targets)

    def link_garbage(self, time: float, per_link: int = 1) -> "FaultTimeline":
        return self.add(time, "link-garbage", per_link=per_link)

    def partition(self, start: float, end: float,
                  group: Sequence[str]) -> "FaultTimeline":
        """Cut ``group`` off from the rest between ``start`` and ``end``."""
        if end <= start:
            raise ValueError(f"partition must heal after it starts "
                             f"({start} .. {end})")
        self.add(start, "partition", group=list(group))
        return self.add(end, "heal", group=list(group))

    def crash_recovery(self, start: float, end: float,
                       servers: Sequence[str],
                       corrupt: bool = True) -> "FaultTimeline":
        """Crash ``servers`` at ``start``; recover them at ``end``."""
        if end <= start:
            raise ValueError(f"recovery must follow the crash "
                             f"({start} .. {end})")
        self.add(start, "crash", servers=list(servers))
        return self.add(end, "recover", servers=list(servers),
                        corrupt=corrupt)

    def byzantine(self, time: float, servers: Sequence[str],
                  strategy: str = "random-garbage") -> "FaultTimeline":
        """Move the Byzantine set to ``servers`` at ``time`` (mobile)."""
        return self.add(time, "byzantine", servers=list(servers),
                        strategy=strategy)

    def rotation(self, times: Sequence[float],
                 sets: Sequence[Sequence[str]],
                 strategy: str = "random-garbage") -> "FaultTimeline":
        """One ``byzantine`` event per (time, server set) pair."""
        if len(times) != len(sets):
            raise ValueError("need one Byzantine set per rotation time")
        for time, byz_set in zip(times, sets):
            self.byzantine(time, byz_set, strategy)
        return self

    def reshard_split(self, time: float, shard: int) -> "FaultTimeline":
        """Split ``shard`` at ``time`` (a freshly joined pool takes every
        other one of its vnode slots)."""
        return self.add(time, "reshard_split", shard=int(shard))

    def reshard_merge(self, time: float, source: int,
                      into: int) -> "FaultTimeline":
        """Retire ``source`` into ``into`` at ``time``."""
        if source == into:
            raise ValueError("cannot merge a shard into itself")
        return self.add(time, "reshard_merge", source=int(source),
                        into=int(into))

    def migrate_vnodes(self, time: float, source: int, dest: int,
                       count: int = 1) -> "FaultTimeline":
        """Move ``count`` vnode slots from ``source`` to ``dest``."""
        if source == dest:
            raise ValueError("cannot migrate vnodes onto their own shard")
        if count < 1:
            raise ValueError("must migrate at least one vnode")
        return self.add(time, "migrate_vnodes", source=int(source),
                        dest=int(dest), count=int(count))

    def shifted(self, offset: float) -> "FaultTimeline":
        """A copy with every event time moved by ``offset``.

        Lets a *relative* timeline (authored as "burst 2 time units in")
        be installed on a cluster whose clock has already advanced — the
        sharded KV scenarios anchor per-shard timelines this way.

        >>> timeline = FaultTimeline().burst(2.0, fraction=0.5)
        >>> [event.time for event in timeline.shifted(10.0).events]
        [12.0]
        """
        return FaultTimeline(
            TimelineEvent(event.time + offset, event.kind, dict(event.args))
            for event in self.events)

    # -- τ timeline --------------------------------------------------------
    @property
    def tau_no_tr(self) -> float:
        """Last transient-style event (mobile Byzantine excluded)."""
        times = [event.time for event in self.events
                 if event.kind in _TRANSIENT_KINDS]
        return max(times) if times else 0.0

    @property
    def last_event_time(self) -> float:
        return max((event.time for event in self.events), default=0.0)

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultTimeline":
        return cls(TimelineEvent.from_dict(entry)
                   for entry in (data.get("events") or []))

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultTimeline)
                and self.events == other.events)

    # -- installation ------------------------------------------------------
    def install(self, cluster, injector: TransientFaultInjector) -> None:
        """Schedule every event on ``cluster``'s scheduler.

        Interpretation is deferred to fire time (targets are resolved
        against the then-current cluster membership), so a timeline can be
        installed before clients attach.
        """
        # validate everything *before* scheduling anything: a rejected
        # timeline must not leave a partial install behind on the live
        # scheduler.
        now = cluster.scheduler.now
        for event in self.events:
            if event.kind in RESHARD_KINDS:
                raise ValueError(
                    f"timeline event {event.kind!r} is store-scoped: it "
                    f"reshapes the whole sharded store, not one cluster — "
                    f"drive it through repro.kvstore.rebalance.Rebalancer "
                    f"(the reshard scenario family does this)")
            if event.time < now:
                raise ValueError(
                    f"timeline event {event.kind!r} at t={event.time} is "
                    f"in the cluster's past (now={now}); anchor the "
                    f"timeline (shifted()/anchor='now') before installing")
            if event.kind == "byzantine" \
                    and len(event.args.get("servers", ())) > cluster.params.t:
                raise ValueError(
                    f"Byzantine set {event.args['servers']} exceeds "
                    f"t={cluster.params.t}")
        # the scheduler's (time, seq) order already runs these in time
        # order, same-time events in declaration order.
        for event in self.events:
            cluster.scheduler.schedule_at(
                event.time, self._fire, cluster, injector, event,
                label=f"timeline:{event.kind}")

    # one dispatcher rather than per-kind closures: keeps installation
    # allocation-light and the timeline trivially picklable.
    @staticmethod
    def _fire(cluster, injector: TransientFaultInjector,
              event: TimelineEvent) -> None:
        kind, args = event.kind, event.args
        if kind == "burst":
            targets = _resolve_targets(cluster, args.get("targets", "all"))
            injector.corrupt_all(targets, float(args.get("fraction", 1.0)))
        elif kind == "link-garbage":
            injector.garbage_everywhere(
                [client.pid for client in cluster.clients],
                cluster.server_ids,
                per_link=int(args.get("per_link", 1)))
        elif kind == "partition":
            cluster.network.set_partition(args["group"], up=False)
        elif kind == "heal":
            cluster.network.set_partition(args["group"], up=True)
        elif kind == "crash":
            cluster.make_byzantine(args["servers"],
                                   lambda server: _TimelineCrash())
        elif kind == "recover":
            cluster.make_byzantine(args["servers"], None)
            if args.get("corrupt", True):
                for pid in args["servers"]:
                    injector.corrupt_process(cluster.server(pid))
        elif kind == "byzantine":
            new_set = list(args["servers"])
            strategy = args.get("strategy", "random-garbage")
            crashed = [pid for pid in cluster.byzantine_ids
                       if isinstance(cluster.server(pid).strategy,
                                     _TimelineCrash)]
            rotate_byzantine_set(cluster, injector, new_set,
                                 strategy_factory(strategy, cluster),
                                 frozen=crashed)
        if kind in _TAPPED_KINDS:
            for tap in _TIMELINE_TAPS:
                tap(cluster.scheduler.now, injector.label, event)


def _resolve_targets(cluster, spec: Any) -> List:
    """Burst targets: a group name or an explicit pid list."""
    if spec == "servers":
        return list(cluster.servers)
    if spec == "clients":
        return list(cluster.clients)
    if spec == "all":
        return list(cluster.servers) + list(cluster.clients)
    by_pid = {process.pid: process
              for process in list(cluster.servers) + list(cluster.clients)}
    try:
        return [by_pid[pid] for pid in spec]
    except KeyError as missing:
        raise ValueError(f"unknown burst target {missing}") from None


# ----------------------------------------------------------------------
# the original imperative layer
# ----------------------------------------------------------------------
@dataclass
class FaultAction:
    """One scheduled injection."""

    time: float
    action: Callable[[], None]
    label: str = "fault"


@dataclass
class FaultPlan:
    """An ordered list of fault actions with a declared τ_no_tr."""

    actions: List[FaultAction] = field(default_factory=list)
    tau_no_tr: float = 0.0

    def add(self, time: float, action: Callable[[], None],
            label: str = "fault") -> "FaultPlan":
        self.actions.append(FaultAction(time, action, label))
        self.tau_no_tr = max(self.tau_no_tr, time)
        return self

    def apply(self, scheduler) -> None:
        """Schedule every action on the cluster's scheduler."""
        for entry in self.actions:
            scheduler.schedule_at(entry.time, entry.action, label=entry.label)


def transient_burst_plan(injector: TransientFaultInjector, processes,
                         times: Sequence[float], fraction: float = 1.0,
                         link_garbage: Optional[dict] = None) -> FaultPlan:
    """Bursts of state corruption (plus optional link garbage) at ``times``.

    ``link_garbage``, if given, maps ``(src, dst)`` pairs to message counts
    preloaded at the *first* burst (arbitrary initial link state).
    """
    plan = FaultPlan()
    process_list = list(processes)
    for time in times:
        plan.add(time,
                 lambda procs=process_list: injector.corrupt_all(procs, fraction),
                 label="transient-burst")
    if link_garbage and times:
        first = min(times)
        for (src, dst), count in link_garbage.items():
            plan.add(first,
                     lambda s=src, d=dst, c=count:
                     injector.preload_link_garbage(s, d, c),
                     label="link-garbage")
    return plan
