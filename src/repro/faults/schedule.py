"""Declarative fault plans: what gets corrupted, when.

A :class:`FaultPlan` bundles the τ-timeline of an experiment: transient
bursts before ``tau_no_tr`` and nothing after, matching the paper's
assumption that transient failures stop at a finite (unknown to the
processes) time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .transient import TransientFaultInjector


@dataclass
class FaultAction:
    """One scheduled injection."""

    time: float
    action: Callable[[], None]
    label: str = "fault"


@dataclass
class FaultPlan:
    """An ordered list of fault actions with a declared τ_no_tr."""

    actions: List[FaultAction] = field(default_factory=list)
    tau_no_tr: float = 0.0

    def add(self, time: float, action: Callable[[], None],
            label: str = "fault") -> "FaultPlan":
        self.actions.append(FaultAction(time, action, label))
        self.tau_no_tr = max(self.tau_no_tr, time)
        return self

    def apply(self, scheduler) -> None:
        """Schedule every action on the cluster's scheduler."""
        for entry in self.actions:
            scheduler.schedule_at(entry.time, entry.action, label=entry.label)


def transient_burst_plan(injector: TransientFaultInjector, processes,
                         times: Sequence[float], fraction: float = 1.0,
                         link_garbage: Optional[dict] = None) -> FaultPlan:
    """Bursts of state corruption (plus optional link garbage) at ``times``.

    ``link_garbage``, if given, maps ``(src, dst)`` pairs to message counts
    preloaded at the *first* burst (arbitrary initial link state).
    """
    plan = FaultPlan()
    process_list = list(processes)
    for time in times:
        plan.add(time,
                 lambda procs=process_list: injector.corrupt_all(procs, fraction),
                 label="transient-burst")
    if link_garbage and times:
        first = min(times)
        for (src, dst), count in link_garbage.items():
            plan.add(first,
                     lambda s=src, d=dst, c=count:
                     injector.preload_link_garbage(s, d, c),
                     label="link-garbage")
    return plan
