"""Transient-failure injection (Section 2.1).

*"The local variables of any process (writer, reader, servers) can suffer
transient failures.  This means that their values can be arbitrarily
modified.  It is nevertheless assumed that there is a finite time τ_no_tr
after which there are no more transient failures."*

The injector overwrites exactly the variables processes registered as
corruptible (a domain-respecting arbitrary value each — the standard
self-stabilization convention that a variable always holds *some* value of
its type), and places arbitrary garbage messages on links (the arbitrary
initial link state of the configuration definition).

Everything is driven by the cluster's named randomness, so a corruption
burst is part of the reproducible execution.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional

from ..datalink.packets import SSConfirm, SSMsg, SSReply
from ..registers.messages import BOT, AckRead, AckWrite, NewHelpVal, Read, Write
from ..sim.process import Process
from ..sim.trace import FAULT

#: Injection taps: ``tap(t, label, fault, detail)`` fires after each
#: burst / link-garbage injection (``repro.capture`` records through
#: this without the injector knowing about capture files).
_FAULT_TAPS: List = []


def register_fault_tap(tap) -> None:
    """Register an injection observer (idempotent)."""
    if tap not in _FAULT_TAPS:
        _FAULT_TAPS.append(tap)


def _notify_fault(t: float, label: str, fault: str, detail: dict) -> None:
    for tap in _FAULT_TAPS:
        tap(t, label, fault, detail)


def garbage_value(rng: random.Random) -> Any:
    """An arbitrary value for message fields."""
    roll = rng.random()
    if roll < 0.2:
        return BOT
    if roll < 0.4:
        return rng.randrange(1_000_000)
    return f"garbage#{rng.randrange(1_000_000)}"


def garbage_message(rng: random.Random, reg_id: str = "reg") -> Any:
    """An arbitrary protocol-shaped message for link preloading."""
    phase = rng.randrange(1, 50)
    kind = rng.randrange(5)
    if kind == 0:
        return SSReply(phase, AckRead(reg_id, garbage_value(rng),
                                      garbage_value(rng)))
    if kind == 1:
        return SSReply(phase, AckWrite(reg_id, garbage_value(rng)))
    if kind == 2:
        return SSMsg(phase, f"ghost{rng.randrange(100)}",
                     Write(reg_id, garbage_value(rng)))
    if kind == 3:
        return SSMsg(phase, f"ghost{rng.randrange(100)}",
                     Read(reg_id, bool(rng.randrange(2))))
    return SSConfirm(phase)


class TransientFaultInjector:
    """Corrupts registered process state and link contents.

    Construct it from a cluster::

        injector = TransientFaultInjector.for_cluster(cluster)
        injector.corrupt_all(cluster.servers)           # now
        injector.at(5.0, lambda: injector.corrupt_process(reader))
    """

    def __init__(self, rng: random.Random, trace, scheduler, network=None):
        self.rng = rng
        self.trace = trace
        self.scheduler = scheduler
        self.network = network
        self.corruptions = 0
        #: capture lane name; sharded stores override per shard.
        self.label = "cluster"

    @classmethod
    def for_cluster(cls, cluster) -> "TransientFaultInjector":
        return cls(cluster.randomness.stream("transient"), cluster.trace,
                   cluster.scheduler, cluster.network)

    # -- state corruption -----------------------------------------------------
    def corrupt_var(self, process: Process, name: str) -> Any:
        """Overwrite one registered variable with an arbitrary value."""
        var = process.corruptible[name]
        value = var.fuzz(self.rng)
        var.setter(value)
        self.corruptions += 1
        self.trace.emit(self.scheduler.now, FAULT, process.pid,
                        var=name, value=value)
        return value

    def corrupt_process(self, process: Process, fraction: float = 1.0,
                        prefix: Optional[str] = None) -> List[str]:
        """Corrupt (a sampled subset of) a process's corruptible variables.

        ``prefix`` restricts corruption to variables of one register
        instance (their names are ``<reg_id>.<var>``).
        """
        corrupted = []
        for name in sorted(process.corruptible):
            if prefix is not None and not name.startswith(prefix):
                continue
            if self.rng.random() <= fraction:
                self.corrupt_var(process, name)
                corrupted.append(name)
        return corrupted

    def corrupt_all(self, processes: Iterable[Process],
                    fraction: float = 1.0) -> int:
        """Corrupt many processes at once; returns variables touched."""
        touched = 0
        targets = 0
        for process in processes:
            touched += len(self.corrupt_process(process, fraction))
            targets += 1
        _notify_fault(self.scheduler.now, self.label, "burst",
                      {"corrupted": touched, "targets": targets})
        return touched

    # -- link corruption ---------------------------------------------------------
    def preload_link_garbage(self, src: str, dst: str, count: int = 2,
                             reg_id: str = "reg") -> None:
        """Place ``count`` arbitrary messages on the link ``src -> dst``."""
        if self.network is None:
            raise ValueError("injector built without a network")
        messages = [garbage_message(self.rng, reg_id) for _ in range(count)]
        self.network.preload(src, dst, messages)
        self.trace.emit(self.scheduler.now, FAULT, src,
                        link=f"{src}->{dst}", garbage=count)

    def garbage_everywhere(self, client_pids: Iterable[str],
                           server_pids: Iterable[str], per_link: int = 1,
                           reg_id: str = "reg") -> None:
        """Garbage on every client<->server link (arbitrary initial state)."""
        servers = list(server_pids)
        links = 0
        for client in client_pids:
            for server in servers:
                self.preload_link_garbage(client, server, per_link, reg_id)
                self.preload_link_garbage(server, client, per_link, reg_id)
                links += 2
        _notify_fault(self.scheduler.now, self.label, "link-garbage",
                      {"links": links, "per_link": per_link})

    # -- scheduling -------------------------------------------------------------
    def at(self, time: float, action) -> None:
        """Run an injection action at an absolute virtual time."""
        self.scheduler.schedule_at(time, action, label="fault")

    def burst(self, times: Iterable[float], processes: List[Process],
              fraction: float = 1.0) -> None:
        """Schedule corruption bursts; the last burst time is τ_no_tr."""
        for time in times:
            self.at(time, lambda processes=list(processes):
                    self.corrupt_all(processes, fraction))
