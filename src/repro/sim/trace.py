"""Structured execution traces with pluggable backends.

Every interesting occurrence in a run — message send/delivery, operation
invocation/response, fault injection, timer expiry — is *emitted* to a
trace backend.  How much of it is retained is the backend's choice:

* :class:`FullTrace` — records :class:`TraceEvent` objects (optionally
  filtered by kind) *and* counts every kind; the debugging backend.
* :class:`CountingTrace` — per-kind counters only, no event objects; what
  benches use when they need message statistics but not the log.
* :class:`NullTrace` — retains nothing; the fastest possible substrate for
  throughput-bound sweeps.

The consistency checkers in ``repro.checkers`` consume operation events
from a :class:`FullTrace`; everything that feeds verdicts and summaries
(operation histories, message counters) lives outside the trace, so runs
under the three backends produce identical results — see
``tests/test_trace_backends.py``.

Hot-path protocol
-----------------
``emit(time, kind, process, **detail)`` allocates a kwargs dict at the
call site, which is fine on cold paths (operations, faults) but not per
message.  Hot emitters (the network) consult :meth:`TraceBackend.wants`
once and then call either ``emit`` (details wanted) or the constant-cost
:meth:`TraceBackend.tick` (count + running max timestamp, no allocation).
Backends with :attr:`TraceBackend.counting` false need neither.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


# Event kinds (module-level constants rather than an Enum: traces are large
# and string comparison keeps them cheap and printable).
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
OP_INVOKE = "op_invoke"
OP_RESPONSE = "op_response"
FAULT = "fault"
TIMER = "timer"
BROADCAST = "broadcast"
NOTE = "note"


@dataclass
class TraceEvent:
    """One timestamped occurrence in a simulated execution."""

    time: float
    kind: str
    process: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.time:.4f}] {self.kind} @{self.process} {inner}"


class TraceBackend:
    """The trace protocol: what a simulation substrate emits into.

    Subclasses decide retention.  The query API is uniform so checkers and
    tests can run against any backend (non-recording backends simply
    return empty results).
    """

    #: whether :meth:`tick` maintains information (False lets hot paths
    #: skip the call entirely).
    counting: bool = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._max_time = 0.0

    # -- emission ------------------------------------------------------
    def wants(self, kind: str) -> bool:
        """Would :meth:`emit` retain the detail of a ``kind`` event?

        Hot paths cache this per kind and route to :meth:`tick` when it is
        false, skipping all per-event allocation.
        """
        return False

    def emit(self, time: float, kind: str, process: str,
             **detail: Any) -> None:
        """Record (or at least account for) one event."""
        raise NotImplementedError

    def tick(self, time: float, kind: str) -> None:
        """Constant-cost accounting for an event whose detail is unwanted."""
        if time > self._max_time:
            self._max_time = time

    # -- queries -------------------------------------------------------
    def count(self, kind: str) -> int:
        """Total number of events of ``kind`` (counted even if unrecorded)."""
        return 0

    def last_time(self) -> float:
        """Virtual time of the last event this backend *observed*.

        Counting backends observe every emission (recorded or not).  For
        :class:`NullTrace` the network's fused path bypasses the trace
        entirely, so only cold-path events (operations, faults) register
        here — use ``scheduler.now`` for durations on that backend.
        """
        return self._max_time

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.kind == kind)

    def by_process(self, process: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.process == process)

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [event for event in self.events if predicate(event)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (a prefix of) the trace."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [repr(event) for event in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)


class NullTrace(TraceBackend):
    """Retains nothing: the fast path for throughput-bound sweeps.

    ``emit`` still tracks the running max timestamp of the cold-path
    events that reach it; hot paths see ``counting`` false and skip even
    :meth:`tick`, so message events never register — ``last_time()`` on
    this backend is not a run duration (use ``scheduler.now``).
    """

    counting = False

    def emit(self, time: float, kind: str, process: str,
             **detail: Any) -> None:
        if time > self._max_time:
            self._max_time = time


class CountingTrace(TraceBackend):
    """Per-kind counters without event objects.

    Equivalent statistics to :class:`FullTrace` at a fraction of the
    allocation cost; the backend behind ``record_kinds=set()`` call sites.
    """

    def __init__(self) -> None:
        super().__init__()
        self.counts: Dict[str, int] = {}

    def emit(self, time: float, kind: str, process: str,
             **detail: Any) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if time > self._max_time:
            self._max_time = time

    def tick(self, time: float, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if time > self._max_time:
            self._max_time = time

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)


class FullTrace(TraceBackend):
    """An append-only log of :class:`TraceEvent` records.

    Recording can be filtered by kind to keep long debugging runs cheap:
    ``FullTrace(record_kinds={OP_INVOKE, OP_RESPONSE, FAULT})`` drops
    per-message events while still counting them.  ``last_time()`` reports
    the last *emitted* event's time even when filtering drops it.
    """

    def __init__(self, record_kinds: Optional[set] = None):
        super().__init__()
        self.counts: Dict[str, int] = {}
        self._record_kinds = record_kinds

    def wants(self, kind: str) -> bool:
        return self._record_kinds is None or kind in self._record_kinds

    def emit(self, time: float, kind: str, process: str,
             **detail: Any) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if time > self._max_time:
            self._max_time = time
        if self._record_kinds is None or kind in self._record_kinds:
            self.events.append(TraceEvent(time, kind, process, detail))

    def tick(self, time: float, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if time > self._max_time:
            self._max_time = time

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)


#: Backwards-compatible alias: the original ``Trace`` recorded events with
#: optional kind filtering, which is exactly :class:`FullTrace`.
Trace = FullTrace

#: Named backend registry (``ClusterConfig.trace_backend`` / scenario
#: ``trace_backend=`` parameters resolve through this).
BACKENDS = ("full", "counting", "null")


def build_trace(backend: str = "full",
                record_kinds: Optional[set] = None) -> TraceBackend:
    """Construct a trace backend by name.

    ``record_kinds`` only applies to the ``full`` backend (the others
    retain no events by construction).
    """
    if backend == "full":
        return FullTrace(record_kinds=record_kinds)
    if backend == "counting":
        return CountingTrace()
    if backend == "null":
        return NullTrace()
    raise ValueError(f"unknown trace backend {backend!r} "
                     f"(expected one of {BACKENDS})")
