"""Structured execution traces.

Every interesting occurrence in a run — message send/delivery, operation
invocation/response, fault injection, timer expiry — is appended to a
:class:`Trace` as a :class:`TraceEvent`.  The consistency checkers in
``repro.checkers`` consume operation events; the remaining events exist for
debugging and for the message-count statistics reported by the benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


# Event kinds (module-level constants rather than an Enum: traces are large
# and string comparison keeps them cheap and printable).
SEND = "send"
DELIVER = "deliver"
OP_INVOKE = "op_invoke"
OP_RESPONSE = "op_response"
FAULT = "fault"
TIMER = "timer"
BROADCAST = "broadcast"
NOTE = "note"


@dataclass
class TraceEvent:
    """One timestamped occurrence in a simulated execution."""

    time: float
    kind: str
    process: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.time:.4f}] {self.kind} @{self.process} {inner}"


class Trace:
    """An append-only log of :class:`TraceEvent` records.

    Recording can be filtered by kind to keep long benchmark runs cheap:
    ``Trace(record_kinds={OP_INVOKE, OP_RESPONSE, FAULT})`` drops per-message
    events while still counting them.
    """

    def __init__(self, record_kinds: Optional[set] = None):
        self.events: List[TraceEvent] = []
        self.counts: Dict[str, int] = {}
        self._record_kinds = record_kinds

    def emit(self, time: float, kind: str, process: str, **detail: Any) -> None:
        """Record (or at least count) an event."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._record_kinds is None or kind in self._record_kinds:
            self.events.append(TraceEvent(time, kind, process, detail))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.kind == kind)

    def by_process(self, process: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.process == process)

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [event for event in self.events if predicate(event)]

    def count(self, kind: str) -> int:
        """Total number of events of ``kind`` (counted even if not recorded)."""
        return self.counts.get(kind, 0)

    def last_time(self) -> float:
        return self.events[-1].time if self.events else 0.0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (a prefix of) the trace."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [repr(event) for event in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
