"""Exceptions raised by the simulation substrate."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-level errors."""


class SchedulerError(SimulationError):
    """Misuse of the event scheduler (e.g. scheduling in the past)."""


class SimulationLimitReached(SimulationError):
    """The run loop hit its event or time budget before finishing.

    This is how the harness surfaces *non-termination*: register operations
    that never complete (a behaviour the paper only rules out under its
    resilience assumptions) show up as this exception rather than a hang.
    """

    def __init__(self, message: str, events_processed: int, now: float):
        super().__init__(message)
        self.events_processed = events_processed
        self.now = now


class UnknownProcessError(SimulationError):
    """A message was addressed to a process id the network does not know."""


class LinkError(SimulationError):
    """Misconfigured or missing communication link."""


class OperationError(SimulationError):
    """Misuse of client operations (e.g. two concurrent ops on a

    sequential client, or reading the result of an unfinished operation).
    """
