"""Directed, reliable, FIFO message-passing network.

The paper's basic model (Section 2.1): ``4n`` directed asynchronous links
connecting each server to the writer and the reader, each link FIFO and
reliable (no loss, corruption, duplication or creation) — except that
transient failures may place arbitrary *initial* content on links, which we
support via :meth:`Network.preload`, and that fault timelines may take a
link *down* (a partition): messages sent over a down link are dropped and
counted, messages already in flight still arrive.

Delay models
------------
* :class:`AsyncDelay` — arbitrary finite delays (no bound known to the
  processes); default model for Theorems 1, 3, 4.
* :class:`SyncDelay` — delays bounded by a constant known to the processes;
  model for the Appendix-A variant (Theorem 2).
* :class:`FixedDelay` — handy in unit tests and hand-built schedules.
* :class:`ScriptedDelay` — fully adversarial: a callable chooses each delay,
  used to build the Figure-1 new/old-inversion schedule and the
  quorum-attack experiments.

Every model implements ``sample(src, dst, msg, rng)``; the endpoint and
message arguments let adversarial models build exact interleavings, and
the uniform signature keeps the per-message path free of type dispatch.

Fast path
---------
``send`` consults the trace backend once at construction: when message
details are recorded (a :class:`~repro.sim.trace.FullTrace` debugging
run), deliveries go through the labelled, cancellable scheduler path so
the trace and the event queue stay inspectable; otherwise delivery is
scheduled through the fused calendar-queue insert — no kwargs dict, no
detail dict, no :class:`EventHandle`.  Both paths consume identical
``(time, seq)`` pairs, so executions are bit-identical across backends.

On non-counting backends the per-link work is *fused*: the first send
over an up link compiles a bound closure capturing the link, its delay
model's ``sample`` method, its RNG stream and the scheduler internals,
so every later send runs one dict hit plus straight-line arithmetic —
no attribute chases, no property calls, no intermediate method frames —
and allocates only the delivery tuple.  The closure self-checks
``down_votes`` (so a partition can never be raced past) and is dropped
whenever the link's delay model is swapped.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from .errors import LinkError, SchedulerError, UnknownProcessError
from .process import Process
from .random_source import RandomSource
from .scheduler import Scheduler
from .trace import DELIVER, DROP, SEND, TraceBackend


# ----------------------------------------------------------------------
# delay models
# ----------------------------------------------------------------------
class DelayModel:
    """Strategy deciding the transfer delay of each message on a link.

    ``sample`` sees the link endpoints and the message so adversarial
    models can choose delays per message; plain models ignore the extras.
    """

    #: Upper bound on delays known to the processes, or None (asynchronous).
    bound: Optional[float] = None

    def sample(self, src: str, dst: str, msg: Any,
               rng: random.Random) -> float:
        raise NotImplementedError


class FixedDelay(DelayModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise LinkError("delay must be positive")
        self.delay = delay
        self.bound = delay

    def sample(self, src: str, dst: str, msg: Any,
               rng: random.Random) -> float:
        return self.delay


class AsyncDelay(DelayModel):
    """Unbounded-looking random delays (asynchronous links).

    Delays are drawn uniformly from ``[lo, hi]`` but the *processes* are
    given no bound (``bound is None``): algorithms relying on timeouts
    cannot be run over this model, exactly as in the paper's asynchronous
    setting.
    """

    def __init__(self, lo: float = 0.1, hi: float = 10.0):
        if not 0 < lo <= hi:
            raise LinkError("need 0 < lo <= hi")
        self.lo = lo
        self.hi = hi
        self.bound = None

    def sample(self, src: str, dst: str, msg: Any,
               rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)


class SyncDelay(DelayModel):
    """Delays in ``(0, bound]`` with the bound known to the processes."""

    def __init__(self, bound: float = 1.0):
        if bound <= 0:
            raise LinkError("bound must be positive")
        self.bound = bound

    def sample(self, src: str, dst: str, msg: Any,
               rng: random.Random) -> float:
        return rng.uniform(1e-6, self.bound)


class ScriptedDelay(DelayModel):
    """Adversarial delays chosen by a callable ``chooser(src, dst, msg, rng)``.

    The chooser sees the endpoints and the message, so integration tests can
    build exact interleavings (e.g. the Figure-1 inversion schedule).
    """

    def __init__(self, chooser, bound: Optional[float] = None):
        self.chooser = chooser
        self.bound = bound

    def sample(self, src: str, dst: str, msg: Any,
               rng: random.Random) -> float:
        return self.chooser(src, dst, msg, rng)


# ----------------------------------------------------------------------
# links and network
# ----------------------------------------------------------------------
class Link:
    """One directed FIFO reliable link.

    Downtime is *vote-counted*, not boolean: each cut adds a vote, each
    heal removes one, and the link is up only at zero votes.  That way
    two overlapping partitions that both cover this link keep it down
    until **both** have healed (a plain flag would let the first heal
    silently reopen the other partition's cut).
    """

    __slots__ = ("src", "dst", "delay_model", "rng", "last_delivery",
                 "messages_sent", "messages_dropped", "down_votes")

    def __init__(self, src: str, dst: str, delay_model: DelayModel,
                 rng: random.Random):
        self.src = src
        self.dst = dst
        self.delay_model = delay_model
        self.rng = rng
        self.last_delivery = 0.0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.down_votes = 0

    @property
    def up(self) -> bool:
        return self.down_votes == 0

    def cut(self) -> None:
        self.down_votes += 1

    def heal(self) -> None:
        if self.down_votes > 0:
            self.down_votes -= 1

    def next_delivery_time(self, now: float, message: Any) -> float:
        """FIFO-respecting delivery instant for a message sent at ``now``."""
        candidate = now + self.delay_model.sample(self.src, self.dst,
                                                 message, self.rng)
        # FIFO: never deliver before a previously sent message on this link.
        if candidate < self.last_delivery:
            candidate = self.last_delivery
        else:
            self.last_delivery = candidate
        return candidate


class Network:
    """The set of all links plus process registry and delivery machinery."""

    def __init__(self, scheduler: Scheduler, randomness: RandomSource,
                 trace: TraceBackend, default_delay: Optional[DelayModel] = None):
        self.scheduler = scheduler
        self.randomness = randomness
        self.trace = trace
        self.default_delay = default_delay or AsyncDelay()
        self.processes: Dict[str, Process] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Cache the backend's appetite once: these decide, per message,
        # between the recording path and the fused constant-cost path.
        self._rec_send = trace.wants(SEND)
        self._rec_deliver = trace.wants(DELIVER)
        self._rec_drop = trace.wants(DROP)
        self._counting = trace.counting
        # Fused per-link send closures (compiled lazily on first send when
        # the backend records nothing per message; see module docstring).
        self._fast_path = not self._rec_send and not self._counting
        self._fast_sends: Dict[Tuple[str, str], Callable[[Any], None]] = {}
        if not self._rec_deliver and not self._counting:
            scheduler.bind_delivery(self._deliver_fast)
        else:
            scheduler.bind_delivery(self._deliver)

    # -- topology ---------------------------------------------------------
    def register(self, process: Process) -> Process:
        self.processes[process.pid] = process
        process.network = self
        return process

    def link(self, src: str, dst: str,
             delay_model: Optional[DelayModel] = None) -> Link:
        """Get or create the directed link ``src -> dst``."""
        key = (src, dst)
        existing = self.links.get(key)
        if existing is not None:
            if delay_model is not None:
                existing.delay_model = delay_model
                # the fused closure captured the old model's sample method
                self._fast_sends.pop(key, None)
                sender = self.processes.get(src)
                if sender is not None:
                    sender._fast_out.pop(dst, None)
            return existing
        model = delay_model or self.default_delay
        rng = self.randomness.stream(f"link:{src}->{dst}")
        created = Link(src, dst, model, rng)
        self.links[key] = created
        return created

    def connect_all(self, clients: Iterable[str], servers: Iterable[str],
                    delay_model: Optional[DelayModel] = None) -> None:
        """Create the paper's 4n-link topology (both directions)."""
        server_list = list(servers)
        for client in clients:
            for server in server_list:
                self.link(client, server, delay_model)
                self.link(server, client, delay_model)

    # -- partitions -------------------------------------------------------
    def set_link_up(self, src: str, dst: str, up: bool = True) -> None:
        """Vote one directed link down (drop its traffic) or back up.

        Votes are counted (see :class:`Link`): pair every down with an
        up, as the partition/heal timeline events do.
        """
        link = self.link(src, dst)
        if up:
            link.heal()
        else:
            link.cut()

    def set_partition(self, group: Sequence[str], up: bool = False) -> None:
        """Cut (``up=False``) or heal (``up=True``) every link between

        ``group`` and the rest of the registered processes, both
        directions.  Messages already in flight still arrive; messages
        sent while a link is down are dropped and counted.  Cuts are
        vote-counted per link, so overlapping partitions compose: a link
        covered by two partitions stays down until both heal.
        """
        members = set(group)
        unknown = [pid for pid in group if pid not in self.processes]
        if unknown:
            # a typo'd group would otherwise cut nothing and pass vacuously
            raise UnknownProcessError(
                f"cannot partition unregistered process(es) {unknown}")
        others = [pid for pid in self.processes if pid not in members]
        for inside in group:
            for outside in others:
                self.set_link_up(inside, outside, up)
                self.set_link_up(outside, inside, up)

    # -- transport ----------------------------------------------------------
    def send(self, src: str, dst: str, message: Any) -> None:
        fast = self._fast_sends.get((src, dst))
        if fast is not None:
            fast(message)
        else:
            self._send_slow(src, dst, message)

    def _send_slow(self, src: str, dst: str, message: Any) -> None:
        """The general send path: validation, partitions, trace recording.

        Also the fused path's compiler — an eligible ``(src, dst)`` pair
        gets its closure installed here, so the very next send over the
        link skips straight to it.
        """
        if dst not in self.processes:
            raise UnknownProcessError(f"no process {dst!r} registered")
        link = self.links.get((src, dst))
        if link is None:
            link = self.link(src, dst)
        now = self.scheduler.now
        if not link.up:
            # partitioned: the message is lost, visibly.
            link.messages_dropped += 1
            self.messages_dropped += 1
            if self._rec_drop:
                self.trace.emit(now, DROP, src, dst=dst, msg=message)
            elif self._counting:
                self.trace.tick(now, DROP)
            return
        if self._fast_path:
            self._fast_sends[(src, dst)] = fast = self._compile_fast_send(link)
            sender = self.processes.get(src)
            if sender is not None:
                # mirror into the sender's string-keyed cache so
                # Process.send dispatches without building a key tuple
                sender._fast_out[dst] = fast
            fast(message)
            return
        link.messages_sent += 1
        self.messages_sent += 1
        delivery_time = link.next_delivery_time(now, message)
        if self._rec_send:
            self.trace.emit(now, SEND, src, dst=dst, msg=message)
            self.scheduler.schedule_at(delivery_time, self._deliver, src, dst,
                                       message, label=f"{src}->{dst}")
        else:
            if self._counting:
                self.trace.tick(now, SEND)
            self.scheduler.schedule_delivery(delivery_time, src, dst, message)

    def _compile_fast_send(self, link: Link) -> Callable[[Any], None]:
        """Compile the per-link fused send closure.

        Everything immutable is captured at compile time (endpoints, the
        delay model's bound ``sample``, the link RNG, the scheduler's
        calendar geometry); mutable scheduler state (clock, cursor, base,
        overflow heap) is read through the scheduler each call.  The
        closure performs exactly the slow path's effects for an up link —
        same counters, same FIFO clamp, same ``(time, seq)`` consumption —
        and bails back to :meth:`_send_slow` whenever the link has down
        votes, so partitions behave identically.
        """
        sched = self.scheduler
        src, dst = link.src, link.dst
        model = link.delay_model
        rng = link.rng
        seq = sched._seq
        # Inline the delay draw for the stock uniform models: both are
        # ``rng.uniform(lo, hi)``, i.e. ``lo + (hi - lo) * rng.random()``
        # — reproduced bit-for-bit below (one RNG draw, same arithmetic),
        # just without the two Python frames.
        model_type = type(model)
        if model_type is AsyncDelay:
            lo, span = model.lo, model.hi - model.lo
        elif model_type is SyncDelay:
            lo, span = 1e-6, model.bound - 1e-6
        else:
            lo = span = None
        sample = model.sample
        rand = rng.random
        if type(sched) is Scheduler:  # calendar kernel: inline the insert
            buckets = sched._buckets
            invw = sched._inv_width
            nb = sched._nb

            def fast_send(message: Any, _link: Link = link,
                          _slow: Callable = self._send_slow) -> None:
                if _link.down_votes:
                    _slow(src, dst, message)
                    return
                _link.messages_sent += 1
                self.messages_sent += 1
                now = sched.now
                if lo is not None:
                    time = now + (lo + span * rand())
                else:
                    time = now + sample(src, dst, message, rng)
                if time < _link.last_delivery:
                    time = _link.last_delivery
                else:
                    _link.last_delivery = time
                if time < now:
                    raise SchedulerError(
                        f"cannot schedule at {time}, current time is {now}")
                entry = (time, next(seq), src, dst, message)
                # inlined Scheduler._insert
                idx = int((time - sched._base) * invw)
                cur = sched._cur
                if idx <= cur:
                    heappush(buckets[cur], entry)
                elif idx < nb:
                    buckets[idx].append(entry)
                else:
                    heappush(sched._far, entry)
                sched._live += 1
        else:
            insert = sched._insert

            def fast_send(message: Any, _link: Link = link,
                          _slow: Callable = self._send_slow) -> None:
                if _link.down_votes:
                    _slow(src, dst, message)
                    return
                _link.messages_sent += 1
                self.messages_sent += 1
                now = sched.now
                if lo is not None:
                    time = now + (lo + span * rand())
                else:
                    time = now + sample(src, dst, message, rng)
                if time < _link.last_delivery:
                    time = _link.last_delivery
                else:
                    _link.last_delivery = time
                if time < now:
                    raise SchedulerError(
                        f"cannot schedule at {time}, current time is {now}")
                insert(time, (time, next(seq), src, dst, message))

        return fast_send

    def preload(self, src: str, dst: str, messages: Iterable[Any],
                spread: float = 0.5) -> None:
        """Place arbitrary initial content on a link (transient failures).

        The garbage messages are delivered FIFO ahead of anything sent
        later, within ``spread`` time units of the current instant.  They
        count as sent messages (per link and globally) and emit SEND
        events, so message statistics are consistent with normal traffic.
        """
        link = self.link(src, dst)
        now = self.scheduler.now
        garbage = list(messages)
        for index, message in enumerate(garbage):
            offset = spread * (index + 1) / (len(garbage) + 1)
            delivery_time = max(now + offset, link.last_delivery)
            link.last_delivery = delivery_time
            link.messages_sent += 1
            self.messages_sent += 1
            if self._rec_send:
                self.trace.emit(now, SEND, src, dst=dst, msg=message,
                                preload=True)
                self.scheduler.schedule_at(delivery_time, self._deliver,
                                           src, dst, message,
                                           label=f"preload:{src}->{dst}")
            else:
                if self._counting:
                    self.trace.tick(now, SEND)
                self.scheduler.schedule_delivery(delivery_time, src, dst,
                                                 message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        process = self.processes.get(dst)
        if process is None:  # pragma: no cover - defensive
            raise UnknownProcessError(f"process {dst!r} vanished")
        self.messages_delivered += 1
        if self._rec_deliver:
            self.trace.emit(self.scheduler.now, DELIVER, dst, src=src,
                            msg=message)
        elif self._counting:
            self.trace.tick(self.scheduler.now, DELIVER)
        process.deliver(src, message)

    def _deliver_fast(self, src: str, dst: str, message: Any) -> None:
        """Delivery with ``Process.deliver`` inlined (non-recording runs).

        ``deliver`` is pinned as "do not override", so expanding it here
        (``on_message`` + ``poll``, with ``poll``'s no-coroutine early
        exit hoisted) drops frames per message without changing
        behaviour.
        """
        try:
            process = self.processes[dst]
        except KeyError:  # pragma: no cover - defensive
            raise UnknownProcessError(f"process {dst!r} vanished") from None
        self.messages_delivered += 1
        process.on_message(src, message)
        if process._current_gen is not None:
            # ``poll`` returns immediately while its wait condition is
            # unsatisfied — pre-check it here (conditions are pure) and
            # skip the frame for the common no-progress delivery.
            condition = process._current_cond
            if condition is None or condition.satisfied():
                process.poll()
