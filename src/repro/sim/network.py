"""Directed, reliable, FIFO message-passing network.

The paper's basic model (Section 2.1): ``4n`` directed asynchronous links
connecting each server to the writer and the reader, each link FIFO and
reliable (no loss, corruption, duplication or creation) — except that
transient failures may place arbitrary *initial* content on links, which we
support via :meth:`Link.preload`.

Delay models
------------
* :class:`AsyncDelay` — arbitrary finite delays (no bound known to the
  processes); default model for Theorems 1, 3, 4.
* :class:`SyncDelay` — delays bounded by a constant known to the processes;
  model for the Appendix-A variant (Theorem 2).
* :class:`FixedDelay` — handy in unit tests and hand-built schedules.
* :class:`ScriptedDelay` — fully adversarial: a callable chooses each delay,
  used to build the Figure-1 new/old-inversion schedule and the
  quorum-attack experiments.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .errors import LinkError, UnknownProcessError
from .process import Process
from .random_source import RandomSource
from .scheduler import Scheduler
from .trace import DELIVER, SEND, Trace


# ----------------------------------------------------------------------
# delay models
# ----------------------------------------------------------------------
class DelayModel:
    """Strategy deciding the transfer delay of each message on a link."""

    #: Upper bound on delays known to the processes, or None (asynchronous).
    bound: Optional[float] = None

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


class FixedDelay(DelayModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise LinkError("delay must be positive")
        self.delay = delay
        self.bound = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay


class AsyncDelay(DelayModel):
    """Unbounded-looking random delays (asynchronous links).

    Delays are drawn uniformly from ``[lo, hi]`` but the *processes* are
    given no bound (``bound is None``): algorithms relying on timeouts
    cannot be run over this model, exactly as in the paper's asynchronous
    setting.
    """

    def __init__(self, lo: float = 0.1, hi: float = 10.0):
        if not 0 < lo <= hi:
            raise LinkError("need 0 < lo <= hi")
        self.lo = lo
        self.hi = hi
        self.bound = None

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)


class SyncDelay(DelayModel):
    """Delays in ``(0, bound]`` with the bound known to the processes."""

    def __init__(self, bound: float = 1.0):
        if bound <= 0:
            raise LinkError("bound must be positive")
        self.bound = bound

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(1e-6, self.bound)


class ScriptedDelay(DelayModel):
    """Adversarial delays chosen by a callable ``chooser(src, dst, msg, rng)``.

    The chooser sees the endpoints and the message, so integration tests can
    build exact interleavings (e.g. the Figure-1 inversion schedule).
    """

    def __init__(self, chooser: Callable[[str, str, Any, random.Random], float],
                 bound: Optional[float] = None):
        self.chooser = chooser
        self.bound = bound
        self._src = ""
        self._dst = ""
        self._msg: Any = None

    def bind(self, src: str, dst: str, msg: Any) -> None:
        self._src, self._dst, self._msg = src, dst, msg

    def sample(self, rng: random.Random) -> float:
        return self.chooser(self._src, self._dst, self._msg, rng)


# ----------------------------------------------------------------------
# links and network
# ----------------------------------------------------------------------
class Link:
    """One directed FIFO reliable link."""

    __slots__ = ("src", "dst", "delay_model", "rng", "last_delivery",
                 "messages_sent", "up")

    def __init__(self, src: str, dst: str, delay_model: DelayModel,
                 rng: random.Random):
        self.src = src
        self.dst = dst
        self.delay_model = delay_model
        self.rng = rng
        self.last_delivery = 0.0
        self.messages_sent = 0
        self.up = True

    def next_delivery_time(self, now: float, message: Any) -> float:
        """FIFO-respecting delivery instant for a message sent at ``now``."""
        model = self.delay_model
        if isinstance(model, ScriptedDelay):
            model.bind(self.src, self.dst, message)
        candidate = now + model.sample(self.rng)
        # FIFO: never deliver before a previously sent message on this link.
        delivery = max(candidate, self.last_delivery)
        self.last_delivery = delivery
        return delivery


class Network:
    """The set of all links plus process registry and delivery machinery."""

    def __init__(self, scheduler: Scheduler, randomness: RandomSource,
                 trace: Trace, default_delay: Optional[DelayModel] = None):
        self.scheduler = scheduler
        self.randomness = randomness
        self.trace = trace
        self.default_delay = default_delay or AsyncDelay()
        self.processes: Dict[str, Process] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.messages_sent = 0
        self.messages_delivered = 0

    # -- topology ---------------------------------------------------------
    def register(self, process: Process) -> Process:
        self.processes[process.pid] = process
        process.network = self
        return process

    def link(self, src: str, dst: str,
             delay_model: Optional[DelayModel] = None) -> Link:
        """Get or create the directed link ``src -> dst``."""
        key = (src, dst)
        existing = self.links.get(key)
        if existing is not None:
            if delay_model is not None:
                existing.delay_model = delay_model
            return existing
        model = delay_model or self.default_delay
        rng = self.randomness.stream(f"link:{src}->{dst}")
        created = Link(src, dst, model, rng)
        self.links[key] = created
        return created

    def connect_all(self, clients: Iterable[str], servers: Iterable[str],
                    delay_model: Optional[DelayModel] = None) -> None:
        """Create the paper's 4n-link topology (both directions)."""
        server_list = list(servers)
        for client in clients:
            for server in server_list:
                self.link(client, server, delay_model)
                self.link(server, client, delay_model)

    # -- transport ----------------------------------------------------------
    def send(self, src: str, dst: str, message: Any) -> None:
        if dst not in self.processes:
            raise UnknownProcessError(f"no process {dst!r} registered")
        link = self.link(src, dst)
        self.messages_sent += 1
        link.messages_sent += 1
        self.trace.emit(self.scheduler.now, SEND, src, dst=dst, msg=message)
        delivery_time = link.next_delivery_time(self.scheduler.now, message)
        self.scheduler.schedule_at(delivery_time, self._deliver, src, dst,
                                   message, label=f"{src}->{dst}")

    def preload(self, src: str, dst: str, messages: Iterable[Any],
                spread: float = 0.5) -> None:
        """Place arbitrary initial content on a link (transient failures).

        The garbage messages are delivered FIFO ahead of anything sent later,
        within ``spread`` time units of the current instant.
        """
        link = self.link(src, dst)
        garbage = list(messages)
        for index, message in enumerate(garbage):
            offset = spread * (index + 1) / (len(garbage) + 1)
            delivery_time = max(self.scheduler.now + offset, link.last_delivery)
            link.last_delivery = delivery_time
            self.scheduler.schedule_at(delivery_time, self._deliver, src, dst,
                                       message, label=f"preload:{src}->{dst}")

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        process = self.processes.get(dst)
        if process is None:  # pragma: no cover - defensive
            raise UnknownProcessError(f"process {dst!r} vanished")
        self.messages_delivered += 1
        self.trace.emit(self.scheduler.now, DELIVER, dst, src=src, msg=message)
        process.deliver(src, message)
