"""Named, deterministic random streams.

Every stochastic component of the simulator (each link's delay model, the
fault injector, each Byzantine strategy, workload generators) draws from its
own named stream derived from a single root seed.  Two runs with the same
root seed and the same component names therefore produce identical
executions, regardless of the order in which components are created or
queried.  This is the property that makes stabilization times exactly
reproducible (see DESIGN.md §2.1).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a component ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """A factory of independent, reproducible ``random.Random`` streams.

    >>> src = RandomSource(seed=42)
    >>> a = src.stream("link:w->s1")
    >>> b = src.stream("link:w->s2")
    >>> a is src.stream("link:w->s1")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomSource":
        """Return a child source whose streams are independent of ours."""
        return RandomSource(derive_seed(self.seed, "spawn:" + name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomSource(seed={self.seed}, streams={len(self._streams)})"
