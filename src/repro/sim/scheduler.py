"""Virtual-time discrete-event scheduler.

The scheduler is the heart of the deterministic substrate: every message
delivery, timer expiry and fault injection is an event on a single
priority queue ordered by ``(time, sequence-number)``.  The secondary key
makes the execution order total and deterministic even for simultaneous
events — events scheduled earlier run earlier.

The paper's model assumes processing takes zero time and only message
transfers take time; we mirror that by running each event callback
atomically at its scheduled instant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from .errors import SchedulerError, SimulationLimitReached


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label")

    def __init__(self, time: float, callback: Callable[..., Any],
                 args: tuple, label: str = ""):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time}, {self.label!r}, {state})"


class Scheduler:
    """A deterministic virtual-time event loop.

    Typical use::

        sched = Scheduler()
        sched.schedule(1.5, callback, arg1, arg2)
        sched.run()          # until the queue drains
        sched.now            # -> 1.5
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self.events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule at {time}, current time is {self.now}")
        handle = EventHandle(time, callback, args, label=label)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), handle))
        return handle

    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for entry in self._queue if not entry.handle.cancelled)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        while self._queue and self._queue[0].handle.cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                continue
            self.now = entry.time
            handle.fired = True
            self.events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is passed, or the
        event budget is exhausted.

        ``max_events`` exhaustion raises :class:`SimulationLimitReached`;
        reaching ``until`` or draining the queue returns normally.
        """
        budget = max_events
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            if budget is not None:
                if budget <= 0:
                    raise SimulationLimitReached(
                        f"event budget exhausted at t={self.now}",
                        self.events_processed, self.now)
                budget -= 1
            self.step()

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 1_000_000) -> None:
        """Run until ``predicate()`` is true (checked after every event).

        Raises :class:`SimulationLimitReached` if the queue drains or the
        budget runs out while the predicate is still false.
        """
        if predicate():
            return
        budget = max_events
        while budget > 0:
            if not self.step():
                raise SimulationLimitReached(
                    f"event queue drained at t={self.now} with predicate unmet",
                    self.events_processed, self.now)
            budget -= 1
            if predicate():
                return
        raise SimulationLimitReached(
            f"event budget exhausted at t={self.now} with predicate unmet",
            self.events_processed, self.now)
