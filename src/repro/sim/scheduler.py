"""Virtual-time discrete-event scheduler — the calendar-queue kernel.

The scheduler is the heart of the deterministic substrate: every message
delivery, timer expiry and fault injection is an event ordered by
``(time, sequence-number)``.  The secondary key makes the execution order
total and deterministic even for simultaneous events — events scheduled
earlier run earlier.

The paper's model assumes processing takes zero time and only message
transfers take time; we mirror that by running each event callback
atomically at its scheduled instant.

Two kinds of queue entry share the structure (plain tuples, so ordering
comparisons run at C speed and never look past the unique ``seq``):

* ``(time, seq, handle)`` — a generic, cancellable event carrying an
  :class:`EventHandle` (timers, fault injections, drivers);
* ``(time, seq, src, dst, message)`` — a fused message-delivery event.
  The network registers its delivery callback once via
  :meth:`Scheduler.bind_delivery`; per-message scheduling then allocates
  nothing but the tuple itself.  Deliveries are not cancellable — exactly
  the property that makes the fast path safe.

Both kinds consume sequence numbers from the same counter, so the
``(time, seq)`` total order — and therefore every simulated execution —
is identical whichever path scheduled an event.

Calendar queue
--------------
Event times cluster: delay models draw from narrow ranges around ``now``,
so most pending events live within a few time units of the clock.  The
kernel exploits that with a *calendar queue* (a bucketed ladder): the
near future is an array of buckets of fixed ``bucket_width``; an event is
filed by quantized time with a plain ``list.append`` (no heap discipline
until its bucket becomes *active*).  Only the active bucket — the one the
clock is currently draining — is kept as a binary heap, so push/pop costs
scale with the handful of imminent events, not the whole pending set.
Events beyond the calendar horizon (far-future timers, fault timelines)
fall back to an overflow heap and are redistributed when the calendar
rolls forward.  Bucket routing is monotone in event time (IEEE multiply
and ``int`` truncation both preserve order), so the pop order is exactly
the global ``(time, seq)`` order — property-tested against the reference
single-heap kernel in ``tests/test_sim_scheduler.py``.

:class:`HeapScheduler` keeps the seed single-heap kernel alive as the
executable reference model: :func:`build_scheduler` (used by ``Cluster``)
selects the kernel via ``DEFAULT_KERNEL`` / the ``REPRO_SIM_KERNEL``
environment variable, and ``tests/test_trace_backends.py`` pins one cell
per scenario family to an identical ``history_digest`` under both.
"""

from __future__ import annotations

import itertools
import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from .errors import SchedulerError, SimulationLimitReached

#: Kernel picked by :func:`build_scheduler` when none is requested.
#: ``"calendar"`` is the production kernel; ``"heap"`` is the seed
#: single-heap reference (kept for cross-kernel determinism tests and
#: ``repro-profile --kernel heap`` comparisons).
KERNELS = ("calendar", "heap")
DEFAULT_KERNEL = os.environ.get("REPRO_SIM_KERNEL", "calendar")


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label",
                 "_scheduler")

    def __init__(self, time: float, callback: Callable[..., Any],
                 args: tuple, label: str = ""):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        self._scheduler: Optional["Scheduler"] = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time}, {self.label!r}, {state})"


class Scheduler:
    """A deterministic virtual-time event loop (calendar-queue kernel).

    Typical use::

        sched = Scheduler()
        sched.schedule(1.5, callback, arg1, arg2)
        sched.run()          # until the queue drains
        sched.now            # -> 1.5

    ``bucket_width`` / ``bucket_count`` size the calendar (defaults cover
    128 time units at 0.5 per bucket); they affect only constant factors,
    never execution order.
    """

    def __init__(self, bucket_width: float = 0.5, bucket_count: int = 256):
        if bucket_width <= 0 or bucket_count < 2:
            raise SchedulerError(
                f"invalid calendar shape (width={bucket_width}, "
                f"count={bucket_count})")
        self.now: float = 0.0
        self._seq = itertools.count()
        self.events_processed: int = 0
        #: not-yet-fired, not-cancelled entries (kept O(1)-queryable).
        self._live = 0
        self._deliver_fn: Optional[Callable[[str, str, Any], None]] = None
        # calendar state: buckets[_cur] is the active bucket and is always
        # in heap order; buckets past _cur are plain appended lists;
        # entries at or beyond the horizon wait in the _far overflow heap.
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        self._nb = bucket_count
        self._buckets: List[List[Tuple]] = [[] for _ in range(bucket_count)]
        self._base = 0.0
        self._cur = 0
        self._far: List[Tuple] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule at {time}, current time is {self.now}")
        handle = EventHandle(time, callback, args, label=label)
        handle._scheduler = self
        self._insert(time, (time, next(self._seq), handle))
        return handle

    def bind_delivery(self, deliver: Callable[[str, str, Any], None]) -> None:
        """Register the message-delivery callback used by the fused path.

        Called once by the network; :meth:`schedule_delivery` events route
        through it.
        """
        self._deliver_fn = deliver

    def schedule_delivery(self, time: float, src: str, dst: str,
                          message: Any) -> None:
        """Fast path: schedule a non-cancellable message delivery.

        Skips :class:`EventHandle` allocation entirely — the queue entry is
        the event.  Requires :meth:`bind_delivery` to have been called.
        Delivery times come from delay models that never go backwards, so
        the past-check is an assertion of substrate correctness, same as in
        :meth:`schedule_at`.
        """
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule at {time}, current time is {self.now}")
        if self._deliver_fn is None:
            raise SchedulerError("no delivery callback bound "
                                 "(Scheduler.bind_delivery)")
        self._insert(time, (time, next(self._seq), src, dst, message))

    def _insert(self, time: float, entry: Tuple) -> None:
        """File one entry by quantized time.

        Entries whose natural bucket is at or before the active one join
        the active heap (callbacks scheduling at the current tick land
        here); later in-calendar entries are plain appends; beyond-horizon
        entries go to the overflow heap.  The routing is monotone in
        ``time``, which is what keeps pops globally ordered.
        """
        idx = int((time - self._base) * self._inv_width)
        if idx <= self._cur:
            heappush(self._buckets[self._cur], entry)
        elif idx < self._nb:
            self._buckets[idx].append(entry)
        else:
            heappush(self._far, entry)
        self._live += 1

    # ------------------------------------------------------------------
    # calendar maintenance
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Move the active cursor to the next non-empty bucket.

        Heapifies the bucket it lands on.  Rolls the calendar forward from
        the overflow heap when the bucket array is exhausted; returns
        False only when no live entries remain anywhere (and realigns the
        empty calendar at ``now`` so later inserts start dense again).
        """
        buckets, nb = self._buckets, self._nb
        cur = self._cur + 1
        while True:
            while cur < nb:
                bucket = buckets[cur]
                if bucket:
                    heapify(bucket)
                    self._cur = cur
                    return True
                cur += 1
            if self._far:
                self._rebuild()
                return True
            self._base = self.now
            self._cur = 0
            return False

    def _rebuild(self) -> None:
        """Roll the calendar: re-anchor at the earliest overflow entry and
        redistribute everything now inside the horizon."""
        far = self._far
        base = far[0][0]
        self._base = base
        inv_width, nb = self._inv_width, self._nb
        buckets = self._buckets
        keep: List[Tuple] = []
        for entry in far:
            idx = int((entry[0] - base) * inv_width)
            if idx < nb:
                buckets[idx].append(entry)
            else:
                keep.append(entry)
        heapify(keep)
        self._far = keep
        self._cur = 0
        heapify(buckets[0])
        if not buckets[0]:  # pragma: no cover - base is far[0]'s bucket
            self._advance()

    def _peek_entry(self) -> Optional[Tuple]:
        """The next live entry (cancelled entries are dropped), or None.

        Leaves the entry at the head of the active bucket.
        """
        buckets = self._buckets
        while True:
            bucket = buckets[self._cur]
            while bucket:
                entry = bucket[0]
                if len(entry) == 3 and entry[2].cancelled:
                    heappop(bucket)
                    continue
                return entry
            if not self._advance():
                return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue (O(1))."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        entry = self._peek_entry()
        return None if entry is None else entry[0]

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        entry = self._peek_entry()
        if entry is None:
            return False
        heappop(self._buckets[self._cur])
        self.now = entry[0]
        self.events_processed += 1
        self._live -= 1
        if len(entry) == 5:
            self._deliver_fn(entry[2], entry[3], entry[4])
        else:
            handle = entry[2]
            handle.fired = True
            handle.callback(*handle.args)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is passed, or the
        event budget is exhausted.

        ``max_events`` exhaustion raises :class:`SimulationLimitReached`;
        reaching ``until`` or draining the queue returns normally.

        Same-tick runs are drained in one batched pass over the active
        bucket without re-entering the peek loop (the hot-loop
        optimisation for message storms, where many deliveries share a
        timestamp); execution order, ``until`` semantics and the per-event
        budget are byte-identical to the one-``step``-per-event loop
        (property-tested in ``tests/test_sim_scheduler.py``).
        """
        budget = max_events
        buckets = self._buckets
        while True:
            entry = self._peek_entry()
            if entry is None:
                return
            tick = entry[0]
            if until is not None and tick > until:
                self.now = until
                return
            # Batched same-tick drain: every event at exactly `tick` lives
            # in the active bucket (same-tick children join it on insert),
            # so the whole run pops here without re-peeking the calendar.
            bucket = buckets[self._cur]
            deliver = self._deliver_fn
            while True:
                if budget is not None:
                    if budget <= 0:
                        raise SimulationLimitReached(
                            f"event budget exhausted at t={self.now}",
                            self.events_processed, self.now)
                    budget -= 1
                heappop(bucket)
                self.now = tick
                self.events_processed += 1
                self._live -= 1
                if len(entry) == 5:
                    deliver(entry[2], entry[3], entry[4])
                else:
                    handle = entry[2]
                    handle.fired = True
                    handle.callback(*handle.args)
                entry = None
                while bucket:
                    head = bucket[0]
                    if len(head) == 3 and head[2].cancelled:
                        heappop(bucket)
                        continue
                    if head[0] == tick:
                        entry = head
                    break
                if entry is None:
                    break

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 1_000_000) -> None:
        """Run until ``predicate()`` is true (checked after every event).

        Raises :class:`SimulationLimitReached` if the queue drains or the
        budget runs out while the predicate is still false.
        """
        if predicate():
            return
        budget = max_events
        buckets = self._buckets
        deliver = self._deliver_fn
        while budget > 0:
            # inline pop of the next live entry (the per-event hot loop of
            # every scenario run — one function call saved per event pays
            # for itself at hundreds of thousands of events/sec)
            bucket = buckets[self._cur]
            while True:
                if bucket:
                    entry = bucket[0]
                    if len(entry) == 3 and entry[2].cancelled:
                        heappop(bucket)
                        continue
                    break
                if not self._advance():
                    raise SimulationLimitReached(
                        f"event queue drained at t={self.now} with predicate unmet",
                        self.events_processed, self.now)
                bucket = buckets[self._cur]
            heappop(bucket)
            self.now = entry[0]
            self.events_processed += 1
            self._live -= 1
            if len(entry) == 5:
                deliver(entry[2], entry[3], entry[4])
            else:
                handle = entry[2]
                handle.fired = True
                handle.callback(*handle.args)
            budget -= 1
            if predicate():
                return
        raise SimulationLimitReached(
            f"event budget exhausted at t={self.now} with predicate unmet",
            self.events_processed, self.now)


class HeapScheduler(Scheduler):
    """The seed single-heap kernel, kept as the executable reference model.

    Everything lives on one global binary heap; semantics are identical to
    :class:`Scheduler` (same ``(time, seq)`` order, same error contract).
    The property tests in ``tests/test_sim_scheduler.py`` drive both
    kernels with identical event soups and assert event-for-event
    equality, and one cell per scenario family is pinned to an identical
    ``history_digest`` across kernels.
    """

    def __init__(self):
        super().__init__()
        self._queue: List[Tuple] = []

    def _insert(self, time: float, entry: Tuple) -> None:
        heappush(self._queue, entry)
        self._live += 1

    def _peek_entry(self) -> Optional[Tuple]:
        queue = self._queue
        while queue:
            entry = queue[0]
            if len(entry) == 3 and entry[2].cancelled:
                heappop(queue)
                continue
            return entry
        return None

    def step(self) -> bool:
        entry = self._peek_entry()
        if entry is None:
            return False
        heappop(self._queue)
        self.now = entry[0]
        self.events_processed += 1
        self._live -= 1
        if len(entry) == 5:
            self._deliver_fn(entry[2], entry[3], entry[4])
        else:
            handle = entry[2]
            handle.fired = True
            handle.callback(*handle.args)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        budget = max_events
        queue = self._queue
        deliver = self._deliver_fn
        while True:
            entry = self._peek_entry()
            if entry is None:
                return
            tick = entry[0]
            if until is not None and tick > until:
                self.now = until
                return
            while True:
                if budget is not None:
                    if budget <= 0:
                        raise SimulationLimitReached(
                            f"event budget exhausted at t={self.now}",
                            self.events_processed, self.now)
                    budget -= 1
                heappop(queue)
                self.now = tick
                self.events_processed += 1
                self._live -= 1
                if len(entry) == 5:
                    deliver(entry[2], entry[3], entry[4])
                else:
                    handle = entry[2]
                    handle.fired = True
                    handle.callback(*handle.args)
                entry = None
                while queue:
                    head = queue[0]
                    if len(head) == 3 and head[2].cancelled:
                        heappop(queue)
                        continue
                    if head[0] == tick:
                        entry = head
                    break
                if entry is None:
                    break

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 1_000_000) -> None:
        if predicate():
            return
        budget = max_events
        while budget > 0:
            if not self.step():
                raise SimulationLimitReached(
                    f"event queue drained at t={self.now} with predicate unmet",
                    self.events_processed, self.now)
            budget -= 1
            if predicate():
                return
        raise SimulationLimitReached(
            f"event budget exhausted at t={self.now} with predicate unmet",
            self.events_processed, self.now)


def build_scheduler(kernel: Optional[str] = None) -> Scheduler:
    """Construct a scheduler kernel by name.

    ``None`` resolves through :data:`DEFAULT_KERNEL` (settable via the
    ``REPRO_SIM_KERNEL`` environment variable), which is how the
    cross-kernel determinism tests run whole scenarios on the reference
    heap kernel without touching any call site.
    """
    name = kernel or DEFAULT_KERNEL
    if name == "calendar":
        return Scheduler()
    if name == "heap":
        return HeapScheduler()
    raise SchedulerError(f"unknown scheduler kernel {name!r} "
                         f"(expected one of {KERNELS})")
