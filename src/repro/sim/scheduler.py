"""Virtual-time discrete-event scheduler.

The scheduler is the heart of the deterministic substrate: every message
delivery, timer expiry and fault injection is an event on a single
priority queue ordered by ``(time, sequence-number)``.  The secondary key
makes the execution order total and deterministic even for simultaneous
events — events scheduled earlier run earlier.

The paper's model assumes processing takes zero time and only message
transfers take time; we mirror that by running each event callback
atomically at its scheduled instant.

Two kinds of heap entry share the queue (plain tuples, so ordering
comparisons run at C speed and never look past the unique ``seq``):

* ``(time, seq, handle)`` — a generic, cancellable event carrying an
  :class:`EventHandle` (timers, fault injections, drivers);
* ``(time, seq, src, dst, message)`` — a fused message-delivery event.
  The network registers its delivery callback once via
  :meth:`Scheduler.bind_delivery`; per-message scheduling then allocates
  nothing but the tuple itself.  Deliveries are not cancellable — exactly
  the property that makes the fast path safe.

Both kinds consume sequence numbers from the same counter, so the
``(time, seq)`` total order — and therefore every simulated execution —
is identical whichever path scheduled an event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .errors import SchedulerError, SimulationLimitReached


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label",
                 "_scheduler")

    def __init__(self, time: float, callback: Callable[..., Any],
                 args: tuple, label: str = ""):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        self._scheduler: Optional["Scheduler"] = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time}, {self.label!r}, {state})"


class Scheduler:
    """A deterministic virtual-time event loop.

    Typical use::

        sched = Scheduler()
        sched.schedule(1.5, callback, arg1, arg2)
        sched.run()          # until the queue drains
        sched.now            # -> 1.5
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[Tuple] = []
        self._seq = itertools.count()
        self.events_processed: int = 0
        self._running = False
        #: not-yet-fired, not-cancelled entries (kept O(1)-queryable).
        self._live = 0
        self._deliver_fn: Optional[Callable[[str, str, Any], None]] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule at {time}, current time is {self.now}")
        handle = EventHandle(time, callback, args, label=label)
        handle._scheduler = self
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        self._live += 1
        return handle

    def bind_delivery(self, deliver: Callable[[str, str, Any], None]) -> None:
        """Register the message-delivery callback used by the fused path.

        Called once by the network; :meth:`schedule_delivery` events route
        through it.
        """
        self._deliver_fn = deliver

    def schedule_delivery(self, time: float, src: str, dst: str,
                          message: Any) -> None:
        """Fast path: schedule a non-cancellable message delivery.

        Skips :class:`EventHandle` allocation entirely — the heap entry is
        the event.  Requires :meth:`bind_delivery` to have been called.
        Delivery times come from delay models that never go backwards, so
        the past-check is an assertion of substrate correctness, same as in
        :meth:`schedule_at`.
        """
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule at {time}, current time is {self.now}")
        if self._deliver_fn is None:
            raise SchedulerError("no delivery callback bound "
                                 "(Scheduler.bind_delivery)")
        heapq.heappush(self._queue, (time, next(self._seq), src, dst, message))
        self._live += 1

    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue (O(1))."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if len(entry) == 3 and entry[2].cancelled:
                heapq.heappop(queue)
                continue
            return entry[0]
        return None

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 5:
                self.now = entry[0]
                self.events_processed += 1
                self._live -= 1
                self._deliver_fn(entry[2], entry[3], entry[4])
                return True
            handle = entry[2]
            if handle.cancelled:
                continue
            self.now = entry[0]
            handle.fired = True
            self.events_processed += 1
            self._live -= 1
            handle.callback(*handle.args)
            return True
        return False

    def _drain_tick(self, tick: float,
                    allowance: Optional[int]) -> int:
        """Run the full run of events scheduled at exactly ``tick``.

        The same-tick batch drain: instead of one ``peek_time`` +
        ``step`` round-trip per event, the whole run of equal-timestamp
        entries (delivery tuples and generic handles alike) is popped in
        one pass.  Events a callback schedules *at* ``tick`` join the run
        (the heap is re-examined each iteration, so the ``(time, seq)``
        total order is exactly the unbatched one).  ``allowance`` caps how
        many events may fire; the count actually fired is returned so the
        caller's budget accounting stays event-exact.
        """
        queue = self._queue
        deliver = self._deliver_fn
        processed = 0
        while queue and (allowance is None or processed < allowance):
            entry = queue[0]
            if entry[0] != tick:
                break
            heapq.heappop(queue)
            if len(entry) == 5:
                self.now = tick
                self.events_processed += 1
                self._live -= 1
                deliver(entry[2], entry[3], entry[4])
            else:
                handle = entry[2]
                if handle.cancelled:
                    continue
                self.now = tick
                handle.fired = True
                self.events_processed += 1
                self._live -= 1
                handle.callback(*handle.args)
            processed += 1
        return processed

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is passed, or the
        event budget is exhausted.

        ``max_events`` exhaustion raises :class:`SimulationLimitReached`;
        reaching ``until`` or draining the queue returns normally.

        Same-tick runs are drained in one :meth:`_drain_tick` pass (the
        hot-loop optimisation for message storms, where many deliveries
        share a timestamp); execution order, ``until`` semantics and the
        per-event budget are byte-identical to the one-``step``-per-event
        loop (property-tested in ``tests/test_sim_scheduler.py``).
        """
        budget = max_events
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            if budget is not None and budget <= 0:
                raise SimulationLimitReached(
                    f"event budget exhausted at t={self.now}",
                    self.events_processed, self.now)
            processed = self._drain_tick(next_time, budget)
            if budget is not None:
                budget -= processed

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 1_000_000) -> None:
        """Run until ``predicate()`` is true (checked after every event).

        Raises :class:`SimulationLimitReached` if the queue drains or the
        budget runs out while the predicate is still false.
        """
        if predicate():
            return
        budget = max_events
        while budget > 0:
            if not self.step():
                raise SimulationLimitReached(
                    f"event queue drained at t={self.now} with predicate unmet",
                    self.events_processed, self.now)
            budget -= 1
            if predicate():
                return
        raise SimulationLimitReached(
            f"event budget exhausted at t={self.now} with predicate unmet",
            self.events_processed, self.now)
