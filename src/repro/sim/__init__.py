"""Deterministic discrete-event simulation substrate.

Implements the paper's basic system model (Section 2.1): sequential
processes connected by reliable FIFO directed links with pluggable delay
(asynchrony) models, all driven by a single seeded virtual-time scheduler
so that runs are exactly reproducible and stabilization instants are exact.
"""

from .errors import (LinkError, OperationError, SchedulerError,
                     SimulationError, SimulationLimitReached,
                     UnknownProcessError)
from .network import (AsyncDelay, DelayModel, FixedDelay, Link, Network,
                      ScriptedDelay, SyncDelay)
from .process import (AllOf, AnyOf, Deadline, OperationHandle, Predicate,
                      Process, WaitCondition, join_all)
from .random_source import RandomSource, derive_seed
from .scheduler import (EventHandle, HeapScheduler, Scheduler,
                        build_scheduler)
from .trace import (BROADCAST, CountingTrace, DELIVER, DROP, FAULT, FullTrace,
                    NOTE, NullTrace, OP_INVOKE, OP_RESPONSE, SEND, TIMER,
                    Trace, TraceBackend, TraceEvent, build_trace)

__all__ = [
    "AllOf", "AnyOf", "AsyncDelay", "BROADCAST", "CountingTrace", "DELIVER",
    "DROP", "Deadline",
    "DelayModel", "EventHandle", "FAULT", "FixedDelay", "FullTrace", "Link",
    "LinkError",
    "HeapScheduler",
    "NOTE", "Network", "NullTrace", "OP_INVOKE", "OP_RESPONSE",
    "OperationError",
    "OperationHandle", "Predicate", "Process", "RandomSource", "SEND",
    "SchedulerError", "Scheduler", "ScriptedDelay", "SimulationError",
    "SimulationLimitReached", "SyncDelay", "TIMER", "Trace", "TraceBackend",
    "TraceEvent",
    "UnknownProcessError", "WaitCondition", "build_scheduler", "build_trace",
    "derive_seed", "join_all",
]
