"""Process abstraction and coroutine-style blocking operations.

The paper models each participant (writer, reader, servers) as a state
machine with ``send``/``receive``.  Servers are purely reactive, so they are
plain :class:`Process` subclasses overriding :meth:`Process.on_message`.

Writers and readers execute *blocking* operations ("wait until messages
ACK_WRITE received from (n-t) different servers...").  We express those as
generator coroutines that yield :class:`WaitCondition` objects; the hosting
:class:`Process` re-evaluates the pending condition after every delivered
message or timer and resumes the generator when it holds.  This keeps the
algorithm code visually close to the paper's pseudo-code (compare
``repro/registers/swsr_regular.py`` with Figure 2).

Corruptible state
-----------------
Transient failures may corrupt *any* local variable (Section 2.1).  Each
process registers its protocol variables in :attr:`Process.corruptible`
together with a fuzzing function; the fault injector in
``repro.faults.transient`` overwrites exactly those.  Substrate-level
bookkeeping (the event queue, phase tokens — see DESIGN.md §2.5) is not
registered and hence not corrupted, mirroring the paper's reliance on a
self-stabilizing data link.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Generator, List, Optional)

from .errors import OperationError
from .scheduler import Scheduler
from .trace import OP_INVOKE, OP_RESPONSE, Trace


# ----------------------------------------------------------------------
# wait conditions
# ----------------------------------------------------------------------
class WaitCondition:
    """Base class for things a client coroutine can block on."""

    def arm(self, process: "Process") -> None:
        """Hook called when a coroutine starts waiting on this condition."""

    def satisfied(self) -> bool:
        raise NotImplementedError


class Predicate(WaitCondition):
    """Blocks until an arbitrary zero-argument callable returns true."""

    def __init__(self, fn: Callable[[], bool], label: str = ""):
        self._fn = fn
        self.label = label

    def satisfied(self) -> bool:
        return bool(self._fn())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Predicate({self.label or self._fn!r})"


class Deadline(WaitCondition):
    """Blocks until virtual time reaches ``at``.

    Arms a wake-up event so the hosting process re-checks its pending
    condition exactly when the deadline passes (used by the synchronous-link
    variant's timeouts, Figure 5 lines 02.M/11.M).
    """

    def __init__(self, at: float):
        self.at = at
        self._armed = False

    def arm(self, process: "Process") -> None:
        if not self._armed:
            self._armed = True
            scheduler = process.scheduler
            if self.at > scheduler.now:
                scheduler.schedule_at(self.at, process.poll, label="deadline")

    def satisfied(self) -> bool:
        return self._scheduler_now is not None and self._scheduler_now() >= self.at

    # Deadline needs access to the clock; bound during arm via the process.
    _scheduler_now: Optional[Callable[[], float]] = None

    def bind_clock(self, now_fn: Callable[[], float]) -> None:
        self._scheduler_now = now_fn


class AnyOf(WaitCondition):
    """Satisfied when any child condition is satisfied."""

    def __init__(self, *children: WaitCondition):
        self.children = list(children)

    def arm(self, process: "Process") -> None:
        for child in self.children:
            if isinstance(child, Deadline):
                child.bind_clock(lambda: process.scheduler.now)
            child.arm(process)

    def satisfied(self) -> bool:
        return any(child.satisfied() for child in self.children)


class AllOf(WaitCondition):
    """Satisfied when every child condition is satisfied."""

    def __init__(self, *children: WaitCondition):
        self.children = list(children)

    def arm(self, process: "Process") -> None:
        for child in self.children:
            if isinstance(child, Deadline):
                child.bind_clock(lambda: process.scheduler.now)
            child.arm(process)

    def satisfied(self) -> bool:
        return all(child.satisfied() for child in self.children)


# ----------------------------------------------------------------------
# operations
# ----------------------------------------------------------------------
class OperationHandle:
    """Future-like result of a client operation."""

    def __init__(self, name: str, process_id: str, invoke_time: float):
        self.name = name
        self.process_id = process_id
        self.invoke_time = invoke_time
        self.response_time: Optional[float] = None
        self.done = False
        self._result: Any = None
        self.callbacks: List[Callable[["OperationHandle"], None]] = []
        #: free-form annotations (operation kind, written value, register id)
        #: used to build checker histories; see repro.checkers.history.
        self.meta: Dict[str, Any] = {}

    @property
    def result(self) -> Any:
        if not self.done:
            raise OperationError(f"operation {self.name} has not completed")
        return self._result

    def _complete(self, result: Any, time: float) -> None:
        self._result = result
        self.response_time = time
        self.done = True
        for callback in self.callbacks:
            callback(self)

    def on_done(self, callback: Callable[["OperationHandle"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = f"done={self._result!r}" if self.done else "pending"
        return f"Op({self.name} @{self.process_id}, {status})"


OpGenerator = Generator[WaitCondition, None, Any]


def join_all(*generators: OpGenerator) -> OpGenerator:
    """Run several operation coroutines concurrently; return their results.

    Used by the SWMR construction (write the same value to every reader's
    copy, §5.1) and the MWMR scan (read all ``m`` SWMR registers, Figure 4
    lines 01/09).  Yields :class:`AnyOf` over the children's pending
    conditions and advances whichever child became runnable.
    """
    pending: Dict[int, WaitCondition] = {}
    live: Dict[int, OpGenerator] = {}
    results: List[Any] = [None] * len(generators)

    for index, generator in enumerate(generators):
        try:
            pending[index] = generator.send(None)
            live[index] = generator
        except StopIteration as stop:
            results[index] = stop.value

    while live:
        runnable = [i for i, cond in pending.items() if cond.satisfied()]
        if not runnable:
            yield AnyOf(*pending.values())
            continue
        for index in runnable:
            generator = live.get(index)
            if generator is None:
                continue
            try:
                pending[index] = generator.send(None)
            except StopIteration as stop:
                results[index] = stop.value
                del live[index]
                del pending[index]
    return results


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------
class CorruptibleVar:
    """Descriptor record for one transient-failure-corruptible variable."""

    __slots__ = ("getter", "setter", "fuzz")

    def __init__(self, getter: Callable[[], Any], setter: Callable[[Any], None],
                 fuzz: Callable[[Any], Any]):
        self.getter = getter
        self.setter = setter
        self.fuzz = fuzz


class Process:
    """A participant of the simulated system.

    Subclasses implement :meth:`on_message`.  Client subclasses start
    blocking operations with :meth:`start_operation`.
    """

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace):
        self.pid = pid
        self.scheduler = scheduler
        self.trace = trace
        self.network = None  # bound by Network.register
        #: per-destination fused send closures, installed by the network
        #: (string-keyed twin of ``Network._fast_sends`` — saves the
        #: tuple build + tuple hash on every send from this process)
        self._fast_out: Dict[str, Callable[[Any], None]] = {}
        self.corruptible: Dict[str, CorruptibleVar] = {}
        self._current_op: Optional[OperationHandle] = None
        self._current_gen: Optional[OpGenerator] = None
        self._current_cond: Optional[WaitCondition] = None
        self._advancing = False

    # -- messaging ------------------------------------------------------
    def send(self, dst: str, message: Any) -> None:
        """Send ``message`` over the (FIFO, reliable) link to ``dst``.

        Dispatches straight to the network's fused per-link closure when
        one is installed (see ``Network.send``) — same semantics, one
        frame less on the per-message hot path.
        """
        fast = self._fast_out.get(dst)
        if fast is not None:
            fast(message)
        else:
            self.network._send_slow(self.pid, dst, message)

    def deliver(self, src: str, message: Any) -> None:
        """Called by the network when a message arrives; do not override."""
        self.on_message(src, message)
        self.poll()

    def on_message(self, src: str, message: Any) -> None:
        """Protocol reaction to a delivered message.  Override me."""

    # -- corruptible state ---------------------------------------------
    def register_corruptible(self, name: str,
                             fuzz: Callable[[Any], Any]) -> None:
        """Declare attribute ``name`` as transient-failure-corruptible.

        ``fuzz(rng)`` must return an arbitrary replacement value.
        """
        self.corruptible[name] = CorruptibleVar(
            getter=lambda: getattr(self, name),
            setter=lambda value: setattr(self, name, value),
            fuzz=fuzz,
        )

    def register_corruptible_var(self, name: str,
                                 getter: Callable[[], Any],
                                 setter: Callable[[Any], None],
                                 fuzz: Callable[[Any], Any]) -> None:
        """Like :meth:`register_corruptible` for state living on sub-objects

        (register roles and server automatons hosted by this process).
        """
        self.corruptible[name] = CorruptibleVar(getter, setter, fuzz)

    # -- blocking operations ---------------------------------------------
    def start_operation(self, name: str, generator: OpGenerator) -> OperationHandle:
        """Begin a blocking operation; processes are sequential (§2.1)."""
        if self._current_op is not None and not self._current_op.done:
            raise OperationError(
                f"{self.pid} is sequential: {self._current_op.name} still running")
        handle = OperationHandle(name, self.pid, self.scheduler.now)
        self._current_op = handle
        self._current_gen = generator
        self._current_cond = None
        self.trace.emit(self.scheduler.now, OP_INVOKE, self.pid, op=name)
        # Kick the coroutine on a fresh event so invocation time ordering is
        # consistent with message deliveries already queued at `now`.
        self.scheduler.schedule(0.0, self.poll, label=f"start:{name}")
        return handle

    def poll(self) -> None:
        """Re-evaluate the pending wait condition and advance the coroutine."""
        if self._advancing:
            return
        generator = self._current_gen
        if generator is None:
            return
        self._advancing = True
        try:
            while True:
                if self._current_cond is not None:
                    if not self._current_cond.satisfied():
                        return
                    self._current_cond = None
                try:
                    condition = generator.send(None)
                except StopIteration as stop:
                    handle = self._current_op
                    self._current_gen = None
                    self._current_cond = None
                    self.trace.emit(self.scheduler.now, OP_RESPONSE, self.pid,
                                    op=handle.name, result=stop.value)
                    handle._complete(stop.value, self.scheduler.now)
                    return
                if isinstance(condition, Deadline):
                    condition.bind_clock(lambda: self.scheduler.now)
                condition.arm(self)
                self._current_cond = condition
        finally:
            self._advancing = False

    @property
    def busy(self) -> bool:
        """True while a blocking operation is in progress."""
        return self._current_op is not None and not self._current_op.done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.pid!r})"
