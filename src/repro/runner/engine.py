"""The fan-out engine: cells → worker pool → deterministic results.

Each cell is an independent pure function of its parameters (the simulator
is fully seeded), so parallel execution cannot perturb results — the
engine only has to keep the *presentation* canonical: results are sorted
by cell id and serialized with sorted keys, making the output of
``--workers 1`` and ``--workers 8`` byte-identical.

Failure containment: a cell that raises returns a ``CellResult`` with the
exception recorded in ``error`` — one pathological parameter combination
cannot take down a thousand-cell sweep.  Simulation-budget exhaustion
inside a scenario (``Scheduler.run_until`` raising
``SimulationLimitReached``) is *data*, not an error: it surfaces as
``completed=False`` (the bound-tightness experiments rely on exactly
that).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from .adapters import ADAPTERS
from .results import CellResult, results_to_json
from .spec import Cell, SweepSpec, expand


def execute_cell(cell: Cell) -> CellResult:
    """Run one cell to a :class:`CellResult` (the worker entry point)."""
    started = time.perf_counter()
    try:
        adapter = ADAPTERS[cell.scenario]
        verdicts, counters, timings, digest = adapter(dict(cell.params))
        return CellResult(cell_id=cell.cell_id, scenario=cell.scenario,
                          params=cell.params, seed=cell.seed,
                          verdicts=verdicts, counters=counters,
                          timings=timings, history_digest=digest,
                          wall_seconds=time.perf_counter() - started)
    except Exception as exc:  # noqa: BLE001 - cells must not kill the sweep
        detail = traceback.format_exc(limit=3)
        return CellResult(cell_id=cell.cell_id, scenario=cell.scenario,
                          params=cell.params, seed=cell.seed,
                          verdicts={"completed": False, "ok": False},
                          error=f"{type(exc).__name__}: {exc}\n{detail}",
                          wall_seconds=time.perf_counter() - started)


@dataclass
class SweepResult:
    """All cells of a sweep, in canonical order."""

    specs: List[SweepSpec]
    cells: List[CellResult]
    workers: int = 1
    wall_seconds: float = 0.0

    # -- queries -----------------------------------------------------------
    def failures(self) -> List[CellResult]:
        """Cells that raised (distinct from legitimate ``completed=False``)."""
        return [cell for cell in self.cells if cell.error is not None]

    def not_ok(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def all_ok(self) -> bool:
        return not self.not_ok()

    def by_scenario(self) -> Dict[str, List[CellResult]]:
        grouped: Dict[str, List[CellResult]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.scenario, []).append(cell)
        return grouped

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        """Canonical sweep document: specs + cells + aggregate.

        Deliberately excludes worker count and wall-clock time so the
        rendering is bit-identical however the sweep was parallelized.
        """
        from .aggregate import aggregate
        import json
        document = {
            "specs": [spec.to_dict() for spec in self.specs],
            "cells": [cell.to_dict()
                      for cell in sorted(self.cells,
                                         key=lambda cell: cell.cell_id)],
            "aggregate": aggregate(self.cells),
        }
        return json.dumps(document, sort_keys=True, indent=2)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def render_tables(self) -> str:
        from .aggregate import render_report
        return render_report(self)

    def results_json(self) -> str:
        """Cells only (no specs/aggregate wrapper)."""
        return results_to_json(self.cells)


def run_sweep(specs: Union[SweepSpec, Iterable[SweepSpec]],
              workers: int = 1,
              max_cells: Optional[int] = None) -> SweepResult:
    """Expand ``specs`` and run every cell, fanning out over processes.

    ``workers <= 1`` runs inline (no pool, easiest to debug); ``workers >
    1`` uses a ``ProcessPoolExecutor``.  Either way the result list is
    sorted by cell id, so downstream output does not depend on the
    execution schedule.  ``max_cells`` truncates the expansion (smoke/CI
    budget guard); truncation is visible in the returned spec list count
    vs cell count, and the CLI reports it.
    """
    if isinstance(specs, SweepSpec):
        specs = [specs]
    specs = list(specs)
    cells = expand(specs)
    if max_cells is not None:
        cells = cells[:max_cells]
    started = time.perf_counter()
    if workers <= 1 or len(cells) <= 1:
        results = [execute_cell(cell) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(cells))) as pool:
            results = list(pool.map(execute_cell, cells))
    results.sort(key=lambda result: result.cell_id)
    return SweepResult(specs=specs, cells=results, workers=workers,
                       wall_seconds=time.perf_counter() - started)
