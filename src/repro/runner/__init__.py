"""Parallel experiment-sweep runner.

The paper's claims are statements over *families* of executions; this
package turns one-at-a-time scenario calls into declarative, parallel,
deterministic sweeps:

* :class:`~repro.runner.spec.SweepSpec` — a parameter grid over the
  scenario entry points (``run_swsr_scenario`` / ``run_mwmr_scenario`` /
  ``run_figure1``) with deterministic per-cell seed derivation;
* :func:`~repro.runner.engine.run_sweep` — fans the cells out over a
  ``ProcessPoolExecutor``; results are bit-identical regardless of worker
  count or completion order;
* :class:`~repro.runner.results.CellResult` — the compact, picklable
  per-cell record (verdicts / counters / sim-timings) built from the
  ``ScenarioResult.summarize()`` boundary;
* ``python -m repro.runner`` — the CLI (see :mod:`repro.runner.cli`).

Quickstart::

    from repro.runner import SweepSpec, run_sweep

    spec = SweepSpec(name="demo", scenario="swsr",
                     base={"n": 9, "t": 1, "num_writes": 3, "num_reads": 3},
                     grid={"kind": ["regular", "atomic"]},
                     seeds=[0, 1, 2])
    sweep = run_sweep(spec, workers=4)
    print(sweep.render_tables())
"""

from .engine import SweepResult, execute_cell, run_sweep
from .results import CellResult, results_to_json
from .spec import Cell, SweepSpec, derive_seed, smoke_specs

__all__ = [
    "Cell", "CellResult", "SweepResult", "SweepSpec", "derive_seed",
    "execute_cell", "results_to_json", "run_sweep", "smoke_specs",
]
