"""Declarative sweep specifications.

A :class:`SweepSpec` names a scenario family, a set of fixed base
parameters, a grid of varied parameters and a list of replicate seeds.
Expanding it yields :class:`Cell` objects — one scenario invocation each —
in a canonical order (sorted grid keys, values in declaration order,
replicates innermost), so the cell list is a pure function of the spec.

Seed derivation is the determinism keystone: each cell's simulation seed
is derived by hashing the spec name, scenario, the cell's full parameter
assignment and the replicate index.  Two consequences:

* the same spec always produces the same seeds — independent of worker
  count, scheduling order or Python hash randomization (``hashlib``, not
  ``hash()``);
* editing one grid axis only changes the seeds of cells whose parameters
  actually changed.

Specs serialize to/from JSON so sweeps can live in version control and be
replayed byte-for-byte (the accountability-by-replay posture of the CI
pipeline).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

#: scenario families the engine knows how to run (see ``adapters.py``).
SCENARIOS = ("swsr", "mwmr", "figure1", "partition", "mobile-byz", "soak",
             "fuzz", "kv", "reshard")


def derive_seed(name: str, scenario: str, params: Dict[str, Any],
                replicate: int) -> int:
    """Deterministic per-cell seed (stable across processes and runs)."""
    payload = json.dumps([name, scenario, params, replicate],
                         sort_keys=True, default=repr)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class Cell:
    """One scenario invocation of a sweep (picklable worker input)."""

    cell_id: str
    scenario: str
    params: Dict[str, Any]

    @property
    def seed(self) -> int:
        return int(self.params.get("seed", 0))


@dataclass
class SweepSpec:
    """A parameter grid over one scenario family.

    * ``base`` — keyword arguments applied to every cell;
    * ``grid`` — mapping of parameter name to the list of values to sweep
      (full cartesian product);
    * ``seeds`` — replicate seeds.  Each grid point is run once per entry,
      with the cell's simulation seed *derived* from (spec, params,
      replicate).  ``None`` disables derivation: cells run with whatever
      ``seed`` appears in ``base``/``grid`` (exact-reproduction mode, used
      by the benchmark harness to preserve historical seeds).

    Expansion is a pure function of the spec — same cells, same derived
    seeds, any process, any platform:

    >>> spec = SweepSpec(name="doc", scenario="swsr",
    ...                  base={"n": 9, "t": 1},
    ...                  grid={"kind": ["regular", "atomic"]},
    ...                  seeds=[0, 1])
    >>> [cell.cell_id for cell in spec.cells()]
    ['doc/swsr/0000', 'doc/swsr/0001', 'doc/swsr/0002', 'doc/swsr/0003']
    >>> spec.cells()[0].seed == spec.cells()[0].seed   # derived, stable
    True
    """

    name: str
    scenario: str
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    seeds: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r} "
                             f"(expected one of {SCENARIOS})")
        for key, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"grid axis {key!r} must be a non-empty list")

    # -- expansion ---------------------------------------------------------
    def grid_points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the grid, in canonical order."""
        if not self.grid:
            return [dict(self.base)]
        keys = sorted(self.grid)
        points = []
        for combo in itertools.product(*(self.grid[key] for key in keys)):
            params = dict(self.base)
            params.update(zip(keys, combo))
            points.append(params)
        return points

    def cells(self) -> List[Cell]:
        """Expand to the canonical cell list (replicates innermost)."""
        cells = []
        index = 0
        for params in self.grid_points():
            for replicate in (self.seeds if self.seeds is not None
                              else [None]):
                cell_params = dict(params)
                if replicate is not None:
                    cell_params["seed"] = derive_seed(
                        self.name, self.scenario, params, replicate)
                cell_id = f"{self.name}/{self.scenario}/{index:04d}"
                cells.append(Cell(cell_id=cell_id, scenario=self.scenario,
                                  params=cell_params))
                index += 1
        return cells

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "scenario": self.scenario,
                "base": self.base, "grid": self.grid, "seeds": self.seeds}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        return cls(name=data["name"], scenario=data["scenario"],
                   base=dict(data.get("base") or {}),
                   grid={key: list(values)
                         for key, values in (data.get("grid") or {}).items()},
                   seeds=(list(data["seeds"])
                          if data.get("seeds") is not None else None))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> List["SweepSpec"]:
        """Parse one spec or a list of specs from a JSON document."""
        data = json.loads(text)
        if isinstance(data, dict):
            data = [data]
        return [cls.from_dict(entry) for entry in data]

    @classmethod
    def load(cls, path: str) -> List["SweepSpec"]:
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def expand(specs: Union[SweepSpec, Iterable[SweepSpec]]) -> List[Cell]:
    """Cells of one or many specs, with duplicate-id protection."""
    if isinstance(specs, SweepSpec):
        specs = [specs]
    cells: List[Cell] = []
    seen = set()
    for spec in specs:
        for cell in spec.cells():
            if cell.cell_id in seen:
                raise ValueError(f"duplicate cell id {cell.cell_id!r} "
                                 "(spec names must be unique)")
            seen.add(cell.cell_id)
            cells.append(cell)
    return cells


def smoke_specs() -> List[SweepSpec]:
    """The CI smoke sweep: 100 cells covering every scenario family.

    Small enough to finish in seconds, broad enough to cross register
    kinds, Byzantine strategies, corruption schedules, both transports,
    sync/async timing, MWMR concurrency, the fault-timeline families
    (partition-during-write, mobile Byzantine rotation), the sharded
    KV service (1/2/4 shards, with and without bursts and a Byzantine
    server per shard), live resharding under traffic (``reshard``) and
    the streaming ``soak`` family (history-free, bounded-window
    checking).  Every cell is expected to terminate and satisfy its
    consistency condition (``--strict`` gates CI on that).
    """
    swsr = SweepSpec(
        name="smoke-swsr", scenario="swsr",
        base={"n": 9, "t": 1, "num_writes": 6, "num_reads": 6,
              "byzantine_count": 1, "max_events": 8_000_000},
        grid={
            "kind": ["regular", "atomic"],
            "byzantine_strategy": ["silent", "random-garbage"],
            "corruption_times": [[], [2.0, 5.0]],
            "transport": ["direct", "datalink"],
        },
        seeds=[0, 1],
    )
    sync = SweepSpec(
        name="smoke-swsr-sync", scenario="swsr",
        base={"n": 4, "t": 1, "synchronous": True, "num_writes": 3,
              "num_reads": 3, "byzantine_count": 1,
              "byzantine_strategy": "silent"},
        grid={"kind": ["regular"]},
        seeds=[0, 1],
    )
    mwmr = SweepSpec(
        name="smoke-mwmr", scenario="mwmr",
        base={"n": 9, "t": 1, "ops_per_process": 4},
        grid={"m": [3, 4, 5], "concurrent": [False, True]},
        seeds=[0, 1],
    )
    figure1 = SweepSpec(
        name="smoke-figure1", scenario="figure1",
        grid={"kind": ["regular", "atomic"]},
        seeds=None,
    )
    partition = SweepSpec(
        name="smoke-partition", scenario="partition",
        base={"n": 9, "t": 1, "num_writes": 6, "num_reads": 6},
        grid={
            "kind": ["regular", "atomic"],
            "corruption_times": [[], [2.0]],
        },
        seeds=[0, 1],
    )
    # rotation strategies here must keep confirming (see the
    # run_mobile_byzantine_scenario docstring: a broadcast in flight
    # across a rotation sees *two* non-responsive servers under a silent
    # set, which legitimately starves the n-t wait).
    mobile = SweepSpec(
        name="smoke-mobile-byz", scenario="mobile-byz",
        base={"n": 9, "t": 1, "num_writes": 8, "num_reads": 8,
              "rotations": 3},
        grid={
            "kind": ["regular", "atomic"],
            "rotation_strategy": ["random-garbage", "stale"],
        },
        seeds=[0, 1],
    )
    # the kv burst fraction stays at the family default (0.2, servers
    # only): heavier bursts can legitimately livelock the MWMR scan until
    # the owner rewrites (see run_kv_scenario's liveness caveat).
    kv = SweepSpec(
        name="smoke-kv", scenario="kv",
        base={"n": 9, "t": 1, "client_count": 2, "num_keys": 4,
              "rounds": 2},
        grid={
            "shard_count": [1, 2, 4],
            "corruption_times": [[], [2.0]],
            "byzantine_count": [0, 1],
        },
        seeds=[0, 1],
    )
    # the soak cells are deliberately longer than every other family's
    # workload (160 ops vs ≤ 20) yet retain no history: they smoke-test
    # the streaming pipeline end to end, including the worker-count
    # determinism of the stream digest.
    soak = SweepSpec(
        name="smoke-soak", scenario="soak",
        base={"n": 9, "t": 1, "num_writes": 80, "num_reads": 80,
              "op_gap": 4.0, "fault_bursts": 2, "fault_period": 3.0,
              "chunk_ops": 32, "write_window": 16, "read_window": 16},
        grid={"kind": ["regular", "atomic"]},
        seeds=[0, 1],
    )
    # resharding under traffic: the default plan splits shard 0 as soon
    # as clients issue; few vnodes keep per-slot key movement likely, so
    # state transfer actually runs in the smoke budget.  Strict cells:
    # per-key linearizability must hold straight across every handoff.
    reshard = SweepSpec(
        name="smoke-reshard", scenario="reshard",
        base={"n": 9, "t": 1, "client_count": 2, "num_keys": 4,
              "rounds": 2, "vnodes": 4},
        grid={
            "shard_count": [1, 2],
            "corruption_times": [[], [2.0]],
        },
        seeds=[0, 1],
    )
    return [swsr, sync, mwmr, figure1, partition, mobile, soak, kv,
            reshard]
