"""Aggregation of sweep cells into the existing ``analysis`` renderers.

Two consumers:

* :func:`aggregate` — the machine-readable roll-up embedded in the sweep
  JSON document (per-scenario verdict counts plus message/event
  statistics via :mod:`repro.analysis.summary`); deterministic, so it can
  live inside the canonical output.
* :func:`render_report` — the human-readable claims matrix built on
  :class:`repro.analysis.tables.Table`, the same renderer the benchmark
  harness prints into ``benchmarks/results.txt``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from ..analysis.summary import rate, summarize
from ..analysis.tables import Table, verdict
from .results import CellResult

#: grid-ish parameters worth a column in the rendered matrix, in order.
_PARAM_COLUMNS = ("kind", "n", "t", "m", "synchronous", "transport",
                  "byzantine_strategy", "byzantine_count", "concurrent",
                  "corruption_times")


def _stats_dict(values: Sequence[float]) -> Dict[str, float]:
    stats = summarize(values)
    if stats is None:
        return {}
    return {"count": stats.count, "mean": stats.mean, "stdev": stats.stdev,
            "min": stats.minimum, "max": stats.maximum}


def aggregate(cells: Iterable[CellResult]) -> Dict[str, Any]:
    """Deterministic per-scenario roll-up of a cell list."""
    grouped: Dict[str, List[CellResult]] = {}
    for cell in cells:
        grouped.setdefault(cell.scenario, []).append(cell)
    rollup: Dict[str, Any] = {}
    for scenario in sorted(grouped):
        members = grouped[scenario]
        completed = [cell for cell in members if cell.completed]
        ok = [cell for cell in members if cell.ok]
        errors = [cell for cell in members if cell.error is not None]
        messages = [cell.counters["messages_sent"] for cell in members
                    if "messages_sent" in cell.counters]
        events = [cell.counters["events_processed"] for cell in members
                  if "events_processed" in cell.counters]
        stab = [cell.timings["stabilization_time"] for cell in members
                if "stabilization_time" in cell.timings]
        rollup[scenario] = {
            "cells": len(members),
            "completed": len(completed),
            "ok": len(ok),
            "ok_rate": rate(len(ok), len(members)),
            "errors": len(errors),
            "messages_sent": _stats_dict(messages),
            "events_processed": _stats_dict(events),
            "stabilization_time": _stats_dict(stab),
        }
    return rollup


def _param_columns(cells: Sequence[CellResult]) -> List[str]:
    present = set()
    for cell in cells:
        present.update(cell.params)
    return [name for name in _PARAM_COLUMNS if name in present]


def verdict_table(title: str, cells: Sequence[CellResult]) -> Table:
    """One row per cell: varied params, key verdicts, HOLDS/VIOLATED."""
    params = _param_columns(cells)
    extra_verdicts = sorted({name for cell in cells for name in cell.verdicts
                             if name not in ("completed", "ok")})
    table = Table(title, ["cell", *params, "completed", *extra_verdicts,
                          "verdict"])
    for cell in sorted(cells, key=lambda cell: cell.cell_id):
        row = [cell.cell_id.rsplit("/", 1)[-1]]
        row += [cell.params.get(name, "-") for name in params]
        row.append(cell.completed)
        row += [cell.verdicts.get(name, "-") for name in extra_verdicts]
        row.append("ERROR" if cell.error is not None
                   else verdict(cell.ok))
        table.row(*row)
    return table


def render_report(sweep) -> str:
    """The full human-readable sweep report (tables + roll-up lines)."""
    sections = []
    for scenario, cells in sorted(sweep.by_scenario().items()):
        sections.append(verdict_table(
            f"sweep [{scenario}]  {len(cells)} cells", cells).render())
    rollup = aggregate(sweep.cells)
    lines = []
    for scenario in sorted(rollup):
        entry = rollup[scenario]
        lines.append(f"{scenario}: {entry['ok']}/{entry['cells']} ok, "
                     f"{entry['completed']}/{entry['cells']} completed, "
                     f"{entry['errors']} errors")
    sections.append("\n".join(lines))
    return "\n\n".join(sections)
