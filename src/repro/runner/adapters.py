"""Scenario adapters: cell parameters in, picklable result sections out.

One adapter per scenario family.  Each runs the underlying entry point,
immediately reduces the outcome through the ``summarize()`` boundary (the
full :class:`~repro.workloads.scenarios.ScenarioResult` never crosses a
process boundary) and normalizes three sections:

* ``verdicts`` — always includes ``completed`` and ``ok``, where ``ok``
  means *the paper-expected outcome for this cell held* (e.g. a Figure-1
  cell against the regular register is ``ok`` when the inversion **does**
  appear);
* ``counters`` / ``timings`` — deterministic counts and simulated-time
  instants.

Adding a scenario family = adding one adapter here plus its name in
``spec.SCENARIOS``; keep the returned sections picklable (plain scalars
only) so cells stay shippable across worker processes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from ..checkers.atomicity import check_linearizable, find_new_old_inversions
from ..experiments.figure1 import run_figure1
from ..workloads.scenarios import INITIAL
from ..workloads.spec import ScenarioSpec, run_scenario

Sections = Tuple[Dict[str, bool], Dict[str, int], Dict[str, float], str]

#: Spec-level I/O options a sweep cell may carry alongside the family
#: parameters (see ``repro.capture``); popped off before validation.
_IO_KEYS = ("capture", "metrics_every", "metrics_out")


def run_family(family: str, params: Dict[str, Any]) -> Any:
    """Run one family from cell params, honoring capture/metrics keys."""
    params = dict(params)
    io = {key: params.pop(key) for key in _IO_KEYS if key in params}
    if not io:
        return run_scenario(family, **params)
    return ScenarioSpec(family, params, **io).run()


def timings_from(summary) -> Dict[str, float]:
    timings = {"sim_end": summary.sim_end, "tau_no_tr": summary.tau_no_tr}
    for name in ("tau_1w", "tau_stab", "stabilization_time"):
        value = getattr(summary, name)
        if value is not None:
            timings[name] = float(value)
    return timings


def counters_from(summary) -> Dict[str, int]:
    counters = {
        "corruptions": summary.corruptions,
        "events_processed": summary.events_processed,
        "messages_sent": summary.messages_sent,
        "ops": summary.ops,
        "reads": summary.reads,
        "writes": summary.writes,
    }
    if summary.dirty_reads is not None:
        counters["dirty_reads"] = summary.dirty_reads
    return counters


def run_swsr_cell(params: Dict[str, Any]) -> Sections:
    """SWSR regular/atomic/synchronous cell: ``ok`` = terminates + stabilizes.

    Atomic cells additionally count (and must not show) new/old inversions
    after τ_no_tr — Theorem 3's headline; regular cells report the count as
    a fact only (regularity legally allows inversions, Figure 1's point).
    """
    result = run_family("swsr", params)
    return _stabilizing_sections(result, params)


def run_mwmr_cell(params: Dict[str, Any]) -> Sections:
    """MWMR cell: ``ok`` = terminates + the history linearizes."""
    result = run_family("mwmr", params)
    linearizable = bool(result.completed
                        and check_linearizable(result.history).ok)
    summary = result.summarize()
    verdicts = {
        "completed": summary.completed,
        "linearizable": linearizable,
        "ok": summary.completed and linearizable,
    }
    return (verdicts, counters_from(summary), timings_from(summary),
            summary.history_digest)


def _stabilizing_sections(result, params: Dict[str, Any]) -> Sections:
    """Shared verdict shape of the fault-timeline families.

    ``ok`` = terminates + stabilizes; atomic cells must additionally show
    no new/old inversion after the declared τ (Theorem 3's headline).
    The initial value participates as virtual write #-1, matching the
    stabilization report's judgement (see checkers.atomicity).

    Inversion counts come off the run's observation stream (the online
    detector saw every completed operation); the offline rescan remains
    only as a fallback for stream-less results.
    """
    inversions = result.inversions_after(result.tau_no_tr)
    if inversions is None:
        inversions = len(find_new_old_inversions(
            result.history, after=result.tau_no_tr,
            initial=params.get("initial", INITIAL)))
    summary = result.summarize()
    stable = summary.stable
    ok = summary.completed and (stable is None or bool(stable))
    if params.get("kind", "regular") == "atomic":
        ok = ok and inversions == 0
    verdicts = {
        "completed": summary.completed,
        "stable": bool(stable),
        "ok": ok,
    }
    counters = counters_from(summary)
    counters["new_old_inversions"] = inversions
    return (verdicts, counters, timings_from(summary),
            summary.history_digest)


def run_partition_cell(params: Dict[str, Any]) -> Sections:
    """Partition-during-write cell; also reports dropped-message counts."""
    result = run_family("partition", params)
    verdicts, counters, timings, digest = _stabilizing_sections(result,
                                                                params)
    counters["messages_dropped"] = result.cluster.network.messages_dropped
    return verdicts, counters, timings, digest


def run_mobile_byz_cell(params: Dict[str, Any]) -> Sections:
    """Mobile Byzantine rotation cell: ok = terminates + stabilizes."""
    result = run_family("mobile-byz", params)
    return _stabilizing_sections(result, params)


def run_soak_cell(params: Dict[str, Any]) -> Sections:
    """Long-horizon soak cell: ``ok`` = terminates + stabilizes + the
    bounded-window checkers stayed exact (no window overran).

    The cell retains no history: every verdict and counter is read off
    the observation stream, which is the point of the family.
    """
    result = run_family("soak", params)
    summary = result.summarize()
    tracker = result.extra.get("tracker")
    exact = bool(tracker.exact) if tracker is not None else True
    stable = summary.stable
    ok = summary.completed and (stable is None or bool(stable)) and exact
    # same judgement base as _stabilizing_sections: inversions after the
    # declared τ (pre-τ inversions during a rotation window are legal).
    inversions = result.inversions_after(result.tau_no_tr) or 0
    if params.get("kind", "regular") == "atomic":
        ok = ok and inversions == 0
    verdicts = {
        "completed": summary.completed,
        "stable": bool(stable),
        "exact": exact,
        "ok": ok,
    }
    counters = counters_from(summary)
    counters["new_old_inversions"] = inversions
    return (verdicts, counters, timings_from(summary),
            summary.history_digest)


def run_fuzz_cell(params: Dict[str, Any]) -> Sections:
    """Generated-case cell (``repro.fuzz``): ``ok`` = no violations.

    ``params["seed"]`` is the hash-derived replicate seed the campaign
    spec produced; the case itself is regenerated from it inside the
    worker (cases never cross the process boundary).  Runs on the
    NullTrace fast path; the campaign re-checks suspicious cells under
    FullTrace in the parent process.
    """
    # lazy import: repro.fuzz.campaign imports the runner engine, which
    # imports this module — binding at call time keeps the cycle open.
    from ..fuzz.gen import (FuzzProfile, generate_case, generate_kv_case,
                            generate_reshard_case)
    from ..fuzz.harness import run_case

    profile = FuzzProfile.from_dict(params.get("profile"))
    generate = {"kv": generate_kv_case,
                "reshard": generate_reshard_case}.get(
                    params.get("family"), generate_case)
    case = generate(int(params["seed"]), profile)
    outcome = run_case(case, backend="null")
    verdicts = {
        "completed": outcome.completed,
        "stable": bool(outcome.stable),
        "ok": outcome.ok,
    }
    return (verdicts, outcome.counters, outcome.timings,
            outcome.history_digest)


def run_kv_cell(params: Dict[str, Any]) -> Sections:
    """Sharded KV cell: ``ok`` = terminates + every key's post-τ history
    linearizes (each key judged against its own shard's τ)."""
    result = run_family("kv", params)
    summary = result.summarize()
    linearizable = bool(summary.completed and result.linearizable)
    verdicts = {
        "completed": summary.completed,
        "linearizable": linearizable,
        "ok": summary.completed and linearizable,
    }
    counters = counters_from(summary)
    counters["shards"] = result.store.shard_count
    counters["keys"] = len(result.per_key_linearizable)
    return (verdicts, counters, timings_from(summary),
            summary.history_digest)


def run_reshard_cell(params: Dict[str, Any]) -> Sections:
    """Live-resharding cell: ``ok`` = terminates + every key's post-τ
    history linearizes straight across every handoff + every migration
    epoch re-stabilizes (its aggregated τ exists)."""
    result = run_family("reshard", params)
    summary = result.summarize()
    linearizable = bool(summary.completed and result.linearizable)
    epochs = result.epoch_taus
    stable = all(entry["tau"] is not None for entry in epochs)
    verdicts = {
        "completed": summary.completed,
        "linearizable": linearizable,
        "stable": stable,
        "ok": summary.completed and linearizable and stable,
    }
    counters = counters_from(summary)
    counters["shards"] = result.store.shard_count
    counters["keys"] = len(result.per_key_linearizable)
    counters["rebalances"] = len(result.rebalances)
    counters["keys_moved"] = sum(len(report.moved_keys)
                                 for report in result.rebalances)
    counters["keys_transferred"] = sum(len(report.transferred)
                                       for report in result.rebalances)
    timings = timings_from(summary)
    for index, entry in enumerate(epochs):
        if entry["tau"] is not None:
            timings[f"epoch{index}_tau"] = float(entry["tau"])
    return (verdicts, counters, timings, summary.history_digest)


def run_figure1_cell(params: Dict[str, Any]) -> Sections:
    """Figure-1 cell: the regular register must invert, the atomic must not."""
    summary = run_figure1(**params).summarize()
    inverted = summary["inverted"]
    expected = inverted if params.get("kind", "regular") == "regular" \
        else not inverted
    verdicts = {"completed": True, "inverted": inverted, "ok": expected}
    counters = {"inversions": summary["inversions"], "ops": summary["ops"]}
    return verdicts, counters, {}, summary["history_digest"]


ADAPTERS: Dict[str, Callable[[Dict[str, Any]], Sections]] = {
    "swsr": run_swsr_cell,
    "mwmr": run_mwmr_cell,
    "figure1": run_figure1_cell,
    "partition": run_partition_cell,
    "mobile-byz": run_mobile_byz_cell,
    "soak": run_soak_cell,
    "fuzz": run_fuzz_cell,
    "kv": run_kv_cell,
    "reshard": run_reshard_cell,
}
