"""Command-line sweep runner.

Usage::

    python -m repro.runner --smoke --workers 2 --out results.json
    python -m repro.runner --spec sweeps/theorem1.json --workers 8 --strict
    repro-sweep --smoke --dry-run          # (installed console script)

The JSON written to ``--out`` is canonical: byte-identical for the same
spec regardless of ``--workers`` (wall-clock and worker count are printed
to stdout only).  ``--strict`` exits non-zero unless every cell's ``ok``
verdict holds — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import run_sweep
from .spec import SweepSpec, expand, smoke_specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel, deterministic experiment sweeps over the "
                    "paper's scenarios.")
    source = parser.add_argument_group("sweep source")
    source.add_argument("--spec", action="append", default=[],
                        metavar="PATH",
                        help="JSON sweep spec (object or list; repeatable)")
    source.add_argument("--smoke", action="store_true",
                        help="run the built-in CI smoke sweep "
                             "(SWSR + MWMR + Figure 1)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = inline)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the canonical sweep JSON here")
    parser.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="truncate the expansion after N cells")
    parser.add_argument("--table", action="store_true",
                        help="print the per-cell claims matrix")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero unless every cell is ok")
    parser.add_argument("--dry-run", action="store_true",
                        help="list the cells without running them")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary lines")
    return parser


def _load_specs(args: argparse.Namespace) -> List[SweepSpec]:
    specs: List[SweepSpec] = []
    if args.smoke:
        specs.extend(smoke_specs())
    for path in args.spec:
        specs.extend(SweepSpec.load(path))
    return specs


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        specs = _load_specs(args)
    except (OSError, ValueError, KeyError) as exc:
        # unreadable file, malformed JSON, unknown scenario, missing field
        print(f"bad sweep spec: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("nothing to run: pass --spec PATH and/or --smoke",
              file=sys.stderr)
        return 2

    try:
        if args.dry_run:
            cells = expand(specs)
            if args.max_cells is not None:
                cells = cells[:args.max_cells]
            for cell in cells:
                print(f"{cell.cell_id}  seed={cell.seed}  {cell.params}")
            if not args.quiet:
                print(f"{len(cells)} cells from {len(specs)} spec(s)")
            return 0
        sweep = run_sweep(specs, workers=args.workers,
                          max_cells=args.max_cells)
    except ValueError as exc:   # e.g. duplicate cell ids across specs
        print(f"bad sweep spec: {exc}", file=sys.stderr)
        return 2

    if args.out:
        sweep.write(args.out)
    if args.table:
        print(sweep.render_tables())
    if not args.quiet:
        ok = len(sweep.cells) - len(sweep.not_ok())
        print(f"{len(sweep.cells)} cells, {ok} ok, "
              f"{len(sweep.failures())} errors "
              f"[workers={args.workers}, "
              f"wall={sweep.wall_seconds:.2f}s]")
        for cell in sweep.not_ok():
            reason = "error" if cell.error is not None else \
                "verdict" if cell.completed else "incomplete"
            print(f"  NOT OK ({reason}): {cell.cell_id} "
                  f"verdicts={cell.verdicts}")
            if cell.error is not None:
                print("    " + cell.error.splitlines()[0])
        if args.out:
            print(f"wrote {args.out}")

    if sweep.failures():
        return 1
    if args.strict and not sweep.all_ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
