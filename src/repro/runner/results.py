"""Per-cell sweep results: compact, picklable, canonically serializable.

A :class:`CellResult` is everything the parent process needs to know about
one cell — never the cluster, never the history.  Its canonical dict/JSON
rendering deliberately excludes wall-clock time (``wall_seconds`` stays on
the object for operator reporting), so the serialized output of a sweep is
bit-identical regardless of worker count, hardware or load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class CellResult:
    """Outcome of one sweep cell.

    * ``verdicts`` — boolean claims about the execution.  Every scenario
      adapter emits ``completed`` (all operations terminated) and ``ok``
      (the paper-expected outcome for this cell held); scenario-specific
      facts (``stable``, ``linearizable``, ``inverted``) ride along.
    * ``counters`` — integer counts (messages, events, ops, corruptions).
    * ``timings`` — *simulated*-time instants/durations only (τ timeline,
      simulation end time); deterministic by construction.
    * ``error`` — exception summary if the cell raised (budget exhaustion
      inside a scenario is not an error: it surfaces as
      ``completed=False``).
    """

    cell_id: str
    scenario: str
    params: Dict[str, Any]
    seed: int
    verdicts: Dict[str, bool] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    history_digest: str = ""
    error: Optional[str] = None
    #: wall-clock cost of running the cell; excluded from the canonical
    #: rendering (it is the one nondeterministic measurement we keep).
    wall_seconds: float = 0.0

    @property
    def completed(self) -> bool:
        return bool(self.verdicts.get("completed", False))

    @property
    def ok(self) -> bool:
        """Did the cell behave as the paper predicts (and not crash)?"""
        return self.error is None and bool(self.verdicts.get("ok", False))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical (deterministic, JSON-ready) rendering."""
        return {
            "cell_id": self.cell_id,
            "counters": dict(sorted(self.counters.items())),
            "error": self.error,
            "history_digest": self.history_digest,
            "params": {key: self.params[key] for key in sorted(self.params)},
            "scenario": self.scenario,
            "seed": self.seed,
            "timings": dict(sorted(self.timings.items())),
            "verdicts": dict(sorted(self.verdicts.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        return cls(cell_id=data["cell_id"], scenario=data["scenario"],
                   params=dict(data.get("params") or {}),
                   seed=int(data.get("seed", 0)),
                   verdicts=dict(data.get("verdicts") or {}),
                   counters=dict(data.get("counters") or {}),
                   timings=dict(data.get("timings") or {}),
                   history_digest=data.get("history_digest", ""),
                   error=data.get("error"))


def results_to_json(results: Sequence[CellResult]) -> str:
    """Canonical JSON for a result list (sorted by cell id, sorted keys)."""
    ordered = sorted(results, key=lambda result: result.cell_id)
    return json.dumps([result.to_dict() for result in ordered],
                      sort_keys=True, indent=2)


def results_from_json(text: str) -> List[CellResult]:
    return [CellResult.from_dict(entry) for entry in json.loads(text)]
