"""Fuzz campaigns: runner-powered fan-out, confirmation, shrinking.

A campaign is a :class:`~repro.runner.SweepSpec` over the ``fuzz``
scenario family: one replicate per case index, each cell's seed *derived*
through the runner's hash-based scheme (spec name + params + replicate —
``hashlib``, never ``hash()``), so the case list is a pure function of
``(campaign_seed, cases, profile)`` and byte-identical for any worker
count or Python version.

Phases:

1. **fan-out** — every case runs on the NullTrace fast path across the
   worker pool (``repro.runner.engine.run_sweep``);
2. **confirm** — suspicious cells re-run inline under FullTrace, history
   digest cross-checked against the fast path, violations detailed;
3. **shrink** — confirmed failures are delta-debugged to minimal cases
   and written as replay artifacts (see :mod:`repro.fuzz.replay`).

The campaign JSON (``FuzzCampaignResult.to_json``) excludes wall-clock
measurements, so ``--workers 1`` and ``--workers 4`` renderings are
byte-identical — CI's fuzz determinism guard compares them with ``cmp``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..runner.engine import run_sweep
from ..runner.results import CellResult
from ..runner.spec import SweepSpec
from .gen import (DEFAULT_PROFILE, FuzzCase, FuzzProfile, generate_case,
                  generate_kv_case, generate_reshard_case)
from .harness import confirm_case, run_case
from .replay import ReplayArtifact, current_inject_env
from .shrink import shrink_case

#: case families the campaign can run (the CLI's ``--family``).
FAMILIES = ("swsr", "kv", "reshard")


def _generator(family: str):
    """The family's case generator, resolved at call time (tests
    monkeypatch the module-level names)."""
    if family not in FAMILIES:
        raise ValueError(f"unknown fuzz family {family!r} "
                         f"(expected one of {FAMILIES})")
    if family == "kv":
        return generate_kv_case
    if family == "reshard":
        return generate_reshard_case
    return generate_case


def spec_name(campaign_seed: int, family: str) -> str:
    """The campaign's sweep-spec name — one source of truth.

    The default family's name (and base) is frozen by the golden-seed
    tests; non-default families get their own namespace so their derived
    case seeds never collide with historical pins.
    """
    if family == "swsr":
        return f"fuzz-{campaign_seed}"
    return f"fuzz-{family}-{campaign_seed}"


def campaign_spec(campaign_seed: int, cases: int,
                  profile: FuzzProfile = DEFAULT_PROFILE,
                  family: str = "swsr") -> SweepSpec:
    """The sweep spec a campaign expands to (one replicate per case).

    The default family's spec (name *and* base parameters) is frozen by
    the golden-seed tests — the ``family`` key joins the base only for
    non-default families, so historical case seeds stay pinned.
    """
    _generator(family)          # validate the family name
    base: Dict[str, Any] = {"profile": profile.to_dict()}
    if family != "swsr":
        base["family"] = family
    return SweepSpec(name=spec_name(campaign_seed, family),
                     scenario="fuzz", base=base,
                     grid={}, seeds=list(range(cases)))


def campaign_cases(campaign_seed: int, cases: int,
                   profile: FuzzProfile = DEFAULT_PROFILE,
                   family: str = "swsr") -> List[Tuple[str, Any]]:
    """(cell id, generated case) pairs, without running anything."""
    spec = campaign_spec(campaign_seed, cases, profile, family=family)
    generate = _generator(family)
    return [(cell.cell_id, generate(cell.seed, profile))
            for cell in spec.cells()]


@dataclass
class CampaignFailure:
    """One confirmed (or crashed) case, after shrinking."""

    cell_id: str
    seed: int
    fast_signature: List[str]
    confirmed_signature: List[str]
    artifact_name: Optional[str]
    shrink: Dict[str, Any]
    shrunk_case: Dict[str, Any]
    #: worker/inline error summary when the failure was a crash rather
    #: than (or in addition to) an invariant violation.
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact_name": self.artifact_name,
            "cell_id": self.cell_id,
            "confirmed_signature": self.confirmed_signature,
            "error": self.error,
            "fast_signature": self.fast_signature,
            "seed": self.seed,
            "shrink": self.shrink,
            "shrunk_case": self.shrunk_case,
        }


@dataclass
class FuzzCampaignResult:
    """Everything a campaign produced, canonically serializable."""

    campaign_seed: int
    cases: int
    profile: FuzzProfile
    cells: List[CellResult]
    failures: List[CampaignFailure] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    family: str = "swsr"

    @property
    def all_ok(self) -> bool:
        return not self.failures

    def to_json(self) -> str:
        import json
        document = {
            "campaign": {
                "cases": self.cases,
                "family": self.family,
                "profile": self.profile.to_dict(),
                "seed": self.campaign_seed,
                "spec_name": spec_name(self.campaign_seed, self.family),
            },
            "cells": [cell.to_dict()
                      for cell in sorted(self.cells,
                                         key=lambda cell: cell.cell_id)],
            "failures": [failure.to_dict() for failure in self.failures],
        }
        return json.dumps(document, sort_keys=True, indent=2)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def _artifact_name(cell_id: str) -> str:
    return "replay-" + cell_id.replace("/", "-") + ".json"


def _shrink_failure(cell: CellResult, profile: FuzzProfile,
                    campaign_seed: int, shrink_budget: int,
                    artifacts_dir: Optional[str],
                    family: str = "swsr") -> CampaignFailure:
    """Confirm one suspicious cell inline, shrink it, emit the artifact.

    The FullTrace confirmation of the *original* case is what
    ``confirmed_signature`` reports (including any ``backend-divergence``
    the digest cross-check appends); shrinking runs on the fast-path
    oracle, and the shrunk case gets its own FullTrace confirmation —
    again digest-cross-checked — for the artifact.
    """
    case = _generator(family)(cell.seed, profile)
    fast = run_case(case, backend="null")
    full = confirm_case(case, fast)
    if not fast.ok and shrink_budget >= 1:
        result = shrink_case(case, max_oracle_calls=shrink_budget,
                             known_failure=fast)
        shrunk_case, shrunk_fast = result.case, result.outcome
        shrink_info: Dict[str, Any] = result.to_dict()
        # reuse the confirmation in hand when shrinking made no progress
        final = (full if shrunk_case == case
                 else confirm_case(shrunk_case, shrunk_fast))
    else:
        # nothing to shrink: either the fast run is ok although the
        # sweep cell failed (a cell error the inline re-run did not
        # reproduce, or a full-trace-only issue), or shrinking is
        # disabled (budget < 1) — record unshrunk, reusing the
        # confirmation already in hand.
        shrunk_case, shrunk_fast, shrink_info = case, fast, {}
        final = full
    # final is authoritative: executions are backend-deterministic and
    # any digest mismatch already surfaces as a backend-divergence entry.
    violations = final.violations
    artifact_name: Optional[str] = None
    if violations and artifacts_dir is not None:
        artifact = ReplayArtifact(
            case=shrunk_case,
            violations=violations,
            original_case=case,
            shrink=shrink_info,
            outcome=final.to_dict(),
            campaign={"cell_id": cell.cell_id, "seed": campaign_seed},
            requires_env=current_inject_env())
        artifact_name = _artifact_name(cell.cell_id)
        os.makedirs(artifacts_dir, exist_ok=True)
        artifact.write(os.path.join(artifacts_dir, artifact_name))
    confirmed = list(full.signature or fast.signature)
    if not confirmed and cell.error:
        # the failure exists only in the worker (the inline re-run was
        # clean): surface it instead of an empty, unactionable record.
        confirmed = ["worker-error"]
    return CampaignFailure(
        cell_id=cell.cell_id, seed=cell.seed,
        fast_signature=list(fast.signature),
        confirmed_signature=confirmed,
        artifact_name=artifact_name,
        shrink=shrink_info, shrunk_case=shrunk_case.to_dict(),
        error=(cell.error.splitlines()[0] if cell.error else None))


def run_campaign(campaign_seed: int, cases: int, workers: int = 1,
                 profile: FuzzProfile = DEFAULT_PROFILE,
                 artifacts_dir: Optional[str] = None,
                 shrink_budget: int = 200,
                 family: str = "swsr") -> FuzzCampaignResult:
    """Run a full campaign: fan out, confirm, shrink, emit artifacts."""
    started = time.perf_counter()
    spec = campaign_spec(campaign_seed, cases, profile, family=family)
    sweep = run_sweep(spec, workers=workers)
    failures = []
    for cell in sweep.cells:
        if cell.ok:
            continue
        try:
            failures.append(_shrink_failure(cell, profile, campaign_seed,
                                            shrink_budget, artifacts_dir,
                                            family=family))
        except Exception as exc:  # noqa: BLE001 - cells must not kill
            # the campaign: a generator/confirmation crash in the parent
            # still yields a failure record (and the other artifacts).
            failures.append(CampaignFailure(
                cell_id=cell.cell_id, seed=cell.seed, fast_signature=[],
                confirmed_signature=[f"error:{type(exc).__name__}"],
                artifact_name=None, shrink={}, shrunk_case={},
                error=f"{type(exc).__name__}: {exc}"))
    return FuzzCampaignResult(
        campaign_seed=campaign_seed, cases=cases, profile=profile,
        cells=sweep.cells, failures=failures, workers=workers,
        wall_seconds=time.perf_counter() - started, family=family)
