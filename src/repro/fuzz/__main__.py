"""``python -m repro.fuzz`` — see :mod:`repro.fuzz.cli`."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
