"""Command-line fuzzer.

Usage::

    python -m repro.fuzz --seed 7 --cases 100 --workers 4 --out fuzz.json
    python -m repro.fuzz --smoke --workers 4 --artifacts fuzz-artifacts
    python -m repro.fuzz --dry-run --seed 7 --cases 5
    python -m repro.fuzz --replay fuzz-artifacts/replay-....json
    repro-fuzz --smoke                      # (installed console script)

Campaign mode exits non-zero when any confirmed violation (or worker
crash) survives — finding a counterexample *is* the failure signal, and
each one is shrunk and written to ``--artifacts`` as a replay JSON.  The
``--out`` document is canonical: byte-identical for any ``--workers``
value (CI's fuzz determinism guard relies on it).

Replay mode re-runs one artifact under FullTrace.  By default it expects
the recorded violation to reproduce (confirming a counterexample); pass
``--expect clean`` for regression fixtures that a later fix silenced.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..capture.format import CaptureError
from .campaign import campaign_cases, run_campaign
from .gen import DEFAULT_PROFILE
from .replay import ReplayArtifact, replay

#: the CI smoke budget: fixed seed, fixed case count, strict.
SMOKE_SEED = 20260730
SMOKE_CASES = 64


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Deterministic scenario fuzzer with counterexample "
                    "shrinking over the paper's register constructions.")
    parser.add_argument("--seed", type=int, default=None, metavar="S",
                        help="campaign seed (every case seed is hash-"
                             "derived from it; default 0)")
    parser.add_argument("--cases", type=int, default=None, metavar="N",
                        help="number of generated cases (default 50)")
    parser.add_argument("--family", choices=("swsr", "kv", "reshard"),
                        default="swsr",
                        help="case family: single register pairs under "
                             "fault timelines (swsr, default), sharded "
                             "KV workloads (kv), or live resharding "
                             "under traffic (reshard)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the fast-path fan-out")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI budget: seed {SMOKE_SEED}, "
                             f"{SMOKE_CASES} cases, strict")
    parser.add_argument("--out", metavar="PATH",
                        help="write the canonical campaign JSON here")
    parser.add_argument("--artifacts", metavar="DIR",
                        help="write shrunk replay artifacts into DIR")
    parser.add_argument("--shrink-budget", type=int, default=200,
                        metavar="N",
                        help="max oracle calls per shrink (default 200; "
                             "0 records failures unshrunk)")
    parser.add_argument("--dry-run", action="store_true",
                        help="list the generated cases without running")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary lines")
    parser.add_argument("--replay", metavar="PATH",
                        help="re-run one replay artifact instead of "
                             "fuzzing")
    parser.add_argument("--expect", choices=("violation", "clean"),
                        default="violation",
                        help="replay expectation (default: the recorded "
                             "violation reproduces)")
    return parser


def _run_replay(args: argparse.Namespace) -> int:
    try:
        artifact = ReplayArtifact.load(args.replay)
    except (OSError, ValueError, KeyError, CaptureError) as exc:
        print(f"bad replay artifact: {exc}", file=sys.stderr)
        return 2
    outcome = replay(artifact)
    if not args.quiet:
        print(f"replaying {args.replay}: case seed "
              f"{artifact.case.seed}, recorded "
              f"violations {artifact.signature}")
        print(outcome.describe())
    if args.expect == "violation":
        return 0 if outcome.reproduced else 1
    return 0 if outcome.outcome.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.replay:
        return _run_replay(args)
    if args.smoke:
        if args.seed is not None or args.cases is not None:
            parser.error("--smoke fixes the seed and case budget; "
                         "drop --seed/--cases (or drop --smoke)")
        args.seed = SMOKE_SEED
        args.cases = SMOKE_CASES
    args.seed = 0 if args.seed is None else args.seed
    args.cases = 50 if args.cases is None else args.cases

    if args.dry_run:
        for cell_id, case in campaign_cases(args.seed, args.cases,
                                            family=args.family):
            if args.family == "reshard":
                print(f"{cell_id}  seed={case.seed}  "
                      f"shards={case.shard_count} vnodes={case.vnodes} "
                      f"clients={case.client_count} keys={case.num_keys} "
                      f"rounds={case.rounds} "
                      f"byz={case.byzantine_count}:"
                      f"{case.byzantine_strategy} "
                      f"plan={len(case.plan_events())} "
                      f"events={len(case.timeline)}")
            elif args.family == "kv":
                print(f"{cell_id}  seed={case.seed}  "
                      f"shards={case.shard_count} n={case.n} t={case.t} "
                      f"clients={case.client_count} keys={case.num_keys} "
                      f"rounds={case.rounds} "
                      f"byz={case.byzantine_count}:"
                      f"{case.byzantine_strategy} "
                      f"events={len(case.timeline)}")
            else:
                print(f"{cell_id}  seed={case.seed}  kind={case.kind} "
                      f"n={case.n} t={case.t} {case.transport} "
                      f"w/r={case.num_writes}/{case.num_reads} "
                      f"byz={case.byzantine_count}:"
                      f"{case.byzantine_strategy} "
                      f"events={len(case.timeline)}")
        if not args.quiet:
            print(f"{args.cases} cases from campaign seed {args.seed}")
        return 0

    result = run_campaign(args.seed, args.cases, workers=args.workers,
                          profile=DEFAULT_PROFILE,
                          artifacts_dir=args.artifacts,
                          shrink_budget=args.shrink_budget,
                          family=args.family)
    if args.out:
        result.write(args.out)
    if not args.quiet:
        ok = len(result.cells) - len(result.failures)
        print(f"{len(result.cells)} cases, {ok} ok, "
              f"{len(result.failures)} violations "
              f"[seed={result.campaign_seed}, workers={args.workers}, "
              f"wall={result.wall_seconds:.2f}s]")
        for failure in result.failures:
            shrunk = failure.shrink or {}
            print(f"  VIOLATION {failure.cell_id} seed={failure.seed} "
                  f"{failure.confirmed_signature} "
                  f"events {shrunk.get('events_before', '?')} -> "
                  f"{shrunk.get('events_after', '?')} "
                  f"({shrunk.get('oracle_calls', 0)} oracle calls)")
            if failure.error:
                print(f"    error: {failure.error}")
            if failure.artifact_name and args.artifacts:
                print(f"    artifact: {args.artifacts}/"
                      f"{failure.artifact_name}")
        if args.out:
            print(f"wrote {args.out}")
    return 0 if result.all_ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
