"""Delta-debugging shrinker: minimal timelines, minimal parameters.

Given a failing :class:`~repro.fuzz.gen.FuzzCase`, the shrinker searches
for the smallest case that still fails *the same way* (same sorted set of
fast-path violation kinds).  Two alternating passes run to a fixpoint
under a deterministic oracle-call budget:

* **event pass** — classic ddmin over the fault timeline: try dropping
  chunks of events (halving granularity), then single events;
* **parameter pass** — per-parameter candidate ladders (fewer operations,
  the smallest resilient topology, no static Byzantine server, default
  reader offset, rounder event arguments), applied greedily.

Everything is a pure function of the input case, so shrinking is exactly
as reproducible as the cases themselves; outcomes are memoized on the
case's canonical JSON to keep the oracle-call count meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .gen import FuzzCase, KVFuzzCase, ReshardFuzzCase
from .harness import CaseOutcome, run_case

Oracle = Callable[[FuzzCase], CaseOutcome]


def default_oracle(case: FuzzCase) -> CaseOutcome:
    """Fast-path oracle (NullTrace, boolean verdict only)."""
    return run_case(case, backend="null")


@dataclass
class ShrinkResult:
    """The minimized case plus the bookkeeping the artifact records."""

    case: FuzzCase
    outcome: CaseOutcome
    signature: Tuple[str, ...]
    oracle_calls: int
    events_before: int
    events_after: int
    steps: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events_after": self.events_after,
            "events_before": self.events_before,
            "oracle_calls": self.oracle_calls,
            "signature": list(self.signature),
            "steps": self.steps,
        }


class _Budget:
    """Counts oracle calls; memoizes outcomes by canonical case JSON."""

    def __init__(self, oracle: Oracle, limit: int):
        self.oracle = oracle
        self.limit = limit
        self.calls = 0
        self._memo: Dict[str, CaseOutcome] = {}

    def exhausted(self) -> bool:
        return self.calls >= self.limit

    def seed(self, case: FuzzCase, outcome: CaseOutcome) -> None:
        """Pre-populate the memo with an already-computed outcome."""
        self._memo[json.dumps(case.to_dict(), sort_keys=True)] = outcome

    def run(self, case: FuzzCase) -> Optional[CaseOutcome]:
        key = json.dumps(case.to_dict(), sort_keys=True)
        if key in self._memo:
            return self._memo[key]
        if self.exhausted():
            return None
        self.calls += 1
        outcome = self.oracle(case)
        self._memo[key] = outcome
        return outcome


def _still_fails(budget: _Budget, case: FuzzCase,
                 signature: Tuple[str, ...]) -> Optional[CaseOutcome]:
    """The candidate's outcome if it reproduces ``signature``, else None.

    A candidate reproducing a *superset* of the original violation kinds
    counts: dropping events must never be rejected because it exposed an
    additional symptom of the same failure.
    """
    outcome = budget.run(case)
    if outcome is None:
        return None
    if set(signature) <= set(outcome.signature):
        return outcome
    return None


def _ddmin_events(case: FuzzCase, signature: Tuple[str, ...],
                  budget: _Budget, steps: List[str]) -> FuzzCase:
    """Minimize ``case.timeline`` by ddmin (chunks, then granularity*2)."""
    events = list(case.timeline)
    chunk = max(1, len(events) // 2)
    while events and chunk >= 1:
        removed_any = False
        start = 0
        while start < len(events):
            candidate_events = events[:start] + events[start + chunk:]
            candidate = case.with_timeline(candidate_events)
            if _still_fails(budget, candidate, signature) is not None:
                steps.append(f"drop events [{start}:{start + chunk}] "
                             f"({len(events)} -> {len(candidate_events)})")
                events = candidate_events
                removed_any = True
                # same start index now names the next chunk
            else:
                start += chunk
            if budget.exhausted():
                return case.with_timeline(events)
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return case.with_timeline(events)


def _max_referenced_server(case: FuzzCase) -> int:
    """Highest server number named by the timeline (0 when none)."""
    from .gen import server_number
    highest = 0
    for event in case.timeline:
        args = event.get("args") or {}
        pids = list(args.get("servers") or ()) + list(args.get("group")
                                                     or ())
        targets = args.get("targets")
        if isinstance(targets, (list, tuple)):   # explicit burst pid list
            pids.extend(targets)
        for pid in pids:
            number = server_number(pid)
            if number is not None:
                highest = max(highest, number)
    return highest


def _kv_parameter_candidates(case: KVFuzzCase
                             ) -> List[Tuple[str, KVFuzzCase]]:
    """Reduction ladder for kv-family cases (fewer rounds/keys/clients).

    Event-argument rounding deliberately leaves burst fractions alone:
    pushing a fraction up livelocks the MWMR scan (the documented
    liveness caveat), which would change the failure signature and just
    waste oracle calls.
    """
    candidates: List[Tuple[str, KVFuzzCase]] = []

    def propose(label: str, **changes: Any) -> None:
        candidate = replace(case, **changes)
        if candidate != case:
            candidates.append((label, candidate))

    for target in (1, case.rounds // 2):
        if 1 <= target < case.rounds:
            propose(f"rounds={target}", rounds=target)
    for target in (1, case.num_keys // 2):
        if 1 <= target < case.num_keys:
            propose(f"num_keys={target}", num_keys=target)
    if case.client_count > 1:
        propose("client_count=1", client_count=1)
    if case.byzantine_count > 0:
        propose("byzantine_count=0", byzantine_count=0)
    if case.shard_count > 1 and not any(
            int(event.get("shard", 0)) > 0 for event in case.timeline):
        propose("shard_count=1", shard_count=1)
    return candidates


def _reshard_parameter_candidates(case: ReshardFuzzCase
                                  ) -> List[Tuple[str, ReshardFuzzCase]]:
    """Reduction ladder for reshard-family cases.

    Shares the kv ladder's shape (fewer rounds/keys/clients, no static
    adversary); ``shard_count`` and ``vnodes`` stay fixed — both feed
    the ring algebra the plan events were validated against, and a
    changed ring just produces differently-placed keys (a different
    case, not a smaller one).  The plan itself shrinks through the
    ordinary ddmin event pass: plan and fault events share the timeline.
    """
    candidates: List[Tuple[str, ReshardFuzzCase]] = []

    def propose(label: str, **changes: Any) -> None:
        candidate = replace(case, **changes)
        if candidate != case:
            candidates.append((label, candidate))

    for target in (1, case.rounds // 2):
        if 1 <= target < case.rounds:
            propose(f"rounds={target}", rounds=target)
    for target in (1, case.num_keys // 2):
        if 1 <= target < case.num_keys:
            propose(f"num_keys={target}", num_keys=target)
    if case.client_count > 1:
        propose("client_count=1", client_count=1)
    if case.byzantine_count > 0:
        propose("byzantine_count=0", byzantine_count=0)
    return candidates


def _parameter_candidates(case: FuzzCase) -> List[Tuple[str, FuzzCase]]:
    """Ordered single-parameter reductions to try (biggest wins first)."""
    if isinstance(case, ReshardFuzzCase):
        return _reshard_parameter_candidates(case)
    if isinstance(case, KVFuzzCase):
        return _kv_parameter_candidates(case)
    candidates: List[Tuple[str, FuzzCase]] = []

    def propose(label: str, **changes: Any) -> None:
        candidate = replace(case, **changes)
        if candidate != case:
            candidates.append((label, candidate))

    for target in (1, case.num_writes // 2):
        if 1 <= target < case.num_writes:
            propose(f"num_writes={target}", num_writes=target)
    for target in (1, case.num_reads // 2):
        if 1 <= target < case.num_reads:
            propose(f"num_reads={target}", num_reads=target)
    # topology reductions must keep every server the timeline names —
    # a smaller cluster would just KeyError, wasting an oracle call.
    min_n = max(8 * case.t + 1, _max_referenced_server(case))
    if case.n > min_n:
        propose(f"n={min_n}", n=min_n)
    if case.t > 1:
        # t cannot drop below the largest rotation set the timeline
        # installs (FaultTimeline.install rejects sets larger than t).
        largest_rotation = max(
            (len(event.get("args", {}).get("servers") or ())
             for event in case.timeline if event["kind"] == "byzantine"),
            default=0)
        target_t = max(1, largest_rotation)
        small_n = max(8 * target_t + 1, _max_referenced_server(case))
        if target_t < case.t and small_n <= case.n:
            propose(f"t={target_t}", t=target_t, n=small_n,
                    byzantine_count=min(case.byzantine_count, target_t))
    if case.byzantine_count > 0:
        propose("byzantine_count=0", byzantine_count=0)
    if case.reader_offset is not None:
        propose("reader_offset=None", reader_offset=None)
    if case.transport != "direct":
        propose("transport=direct", transport="direct")
    # event-argument rounding: fractions to one coarse step, times floored.
    rounded = []
    changed = False
    for event in case.timeline:
        event = dict(event)
        args = dict(event.get("args") or {})
        if "fraction" in args and args["fraction"] != 1.0:
            args["fraction"] = 1.0
            changed = True
        floored = float(int(event["time"]))
        if event["time"] != floored:
            event["time"] = floored
            changed = True
        event["args"] = args
        rounded.append(event)
    if changed:
        candidates.append(("round event args",
                           case.with_timeline(rounded)))
    return candidates


def _shrink_parameters(case: FuzzCase, signature: Tuple[str, ...],
                       budget: _Budget, steps: List[str]) -> FuzzCase:
    progress = True
    while progress and not budget.exhausted():
        progress = False
        for label, candidate in _parameter_candidates(case):
            if _still_fails(budget, candidate, signature) is not None:
                steps.append(label)
                case = candidate
                progress = True
                break
    return case


def shrink_case(case: FuzzCase, oracle: Oracle = default_oracle,
                max_oracle_calls: int = 200,
                known_failure: Optional[CaseOutcome] = None) -> ShrinkResult:
    """Minimize a failing case; raises ``ValueError`` if it doesn't fail.

    ``known_failure`` seeds the memo with the caller's already-computed
    fast-path outcome of ``case``, saving one full simulation.
    """
    budget = _Budget(oracle, max_oracle_calls)
    if known_failure is not None:
        budget.seed(case, known_failure)
    original = budget.run(case)
    if original is None or original.ok:
        raise ValueError("shrink_case needs a failing case")
    signature = original.signature
    steps: List[str] = []
    best = case
    # alternate passes until neither makes progress (or budget runs dry).
    while not budget.exhausted():
        after_events = _ddmin_events(best, signature, budget, steps)
        after_params = _shrink_parameters(after_events, signature, budget,
                                          steps)
        if after_params == best:
            break
        best = after_params
    outcome = budget.run(best) or original
    return ShrinkResult(case=best, outcome=outcome, signature=signature,
                        oracle_calls=budget.calls,
                        events_before=len(case.timeline),
                        events_after=len(best.timeline), steps=steps)
