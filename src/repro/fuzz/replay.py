"""Replay artifacts: a shrunk counterexample as a self-contained file.

An artifact records the *shrunk* case (everything needed to re-run it),
the original case it was minimized from, the shrink bookkeeping, the
confirming FullTrace outcome, and — when the test-only injection hook was
active — the environment it needs to reproduce.  ``python -m repro.fuzz
--replay FILE`` loads one, re-runs the case and reports whether the
recorded violation kinds still reproduce.

New artifacts are written as one profile of the universal capture format
(see :mod:`repro.capture.format`): a ``"fuzz-replay"`` header carrying
the case, sealed by the checksum footer carrying the violations and
shrink bookkeeping.  The original whole-file JSON rendering
(``FORMAT``, v0) is still loaded transparently — :meth:`ReplayArtifact.load`
sniffs the first line — so the committed regression corpus under
``tests/replays/`` keeps replaying unmodified via
``tests/test_fuzz_replay_fixtures.py``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .gen import FuzzCase, case_from_dict
from .harness import INJECT_ENV, CaseOutcome, confirm_case, run_case

#: v0 whole-file JSON artifact tag (still loadable, no longer written).
FORMAT = "repro.fuzz.replay/1"

#: Capture-format header profile new artifacts are written under.
CAPTURE_PROFILE = "fuzz-replay"


@dataclass
class ReplayArtifact:
    """One shrunk, replayable counterexample."""

    case: FuzzCase
    violations: List[Dict[str, Any]]
    original_case: Optional[FuzzCase] = None
    shrink: Optional[Dict[str, Any]] = None
    outcome: Optional[Dict[str, Any]] = None
    campaign: Optional[Dict[str, Any]] = None
    requires_env: Optional[Dict[str, str]] = None

    @property
    def signature(self) -> List[str]:
        return sorted({entry["kind"] for entry in self.violations})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "case": self.case.to_dict(),
            "format": FORMAT,
            "original_case": (self.original_case.to_dict()
                              if self.original_case else None),
            "outcome": self.outcome,
            "requires_env": self.requires_env,
            "shrink": self.shrink,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def write(self, path: str) -> None:
        """Write the artifact as a sealed capture file (v1).

        The case / campaign / environment live in the header, the
        violations and shrink bookkeeping in the checksum footer — so
        ``repro-capture check`` validates fuzz artifacts like any other
        trace.  Fuzz artifacts carry no event records: replay re-*runs*
        the case from its spec rather than re-driving a log.
        """
        from ..capture.format import CaptureSink
        sink = CaptureSink(
            path, profile=CAPTURE_PROFILE, seed=self.case.seed,
            extra_header={"case": self.case.to_dict(),
                          "campaign": self.campaign,
                          "requires_env": self.requires_env})
        sink.close(
            history_digest=(self.outcome or {}).get("history_digest"),
            summary=self.outcome,
            check={"kind": "fuzz", "signature": self.signature},
            extra_footer={
                "violations": self.violations,
                "shrink": self.shrink,
                "original_case": (self.original_case.to_dict()
                                  if self.original_case else None)})

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayArtifact":
        if data.get("format") != FORMAT:
            raise ValueError(f"not a replay artifact "
                             f"(format={data.get('format')!r}, "
                             f"expected {FORMAT!r})")
        return cls(
            case=case_from_dict(data["case"]),
            violations=list(data.get("violations") or []),
            original_case=(case_from_dict(data["original_case"])
                           if data.get("original_case") else None),
            shrink=data.get("shrink"),
            outcome=data.get("outcome"),
            campaign=data.get("campaign"),
            requires_env=data.get("requires_env"))

    @classmethod
    def _from_capture(cls, path: str) -> "ReplayArtifact":
        from ..capture.format import CaptureReader
        reader = CaptureReader(path)
        if reader.header.get("profile") != CAPTURE_PROFILE:
            raise ValueError(
                f"capture profile "
                f"{reader.header.get('profile')!r} is not a fuzz replay "
                f"artifact (expected {CAPTURE_PROFILE!r})")
        footer = reader.read_footer()
        original = footer.get("original_case")
        return cls(
            case=case_from_dict(reader.header["case"]),
            violations=list(footer.get("violations") or []),
            original_case=case_from_dict(original) if original else None,
            shrink=footer.get("shrink"),
            outcome=footer.get("summary"),
            campaign=reader.header.get("campaign"),
            requires_env=reader.header.get("requires_env"))

    @classmethod
    def load(cls, path: str) -> "ReplayArtifact":
        """Load either rendering: the first line decides.

        A capture header (``"record": "header"``) selects the validating
        v1 path; anything else falls back to the legacy whole-file JSON
        shim (v0 artifacts are pretty-printed, so their first line never
        parses as a complete JSON object).
        """
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        try:
            sniffed = json.loads(first)
        except ValueError:
            sniffed = None
        if isinstance(sniffed, dict) and sniffed.get("record") == "header":
            return cls._from_capture(path)
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def current_inject_env() -> Optional[Dict[str, str]]:
    """The injection-hook environment, for recording into artifacts."""
    value = os.environ.get(INJECT_ENV)
    return {INJECT_ENV: value} if value else None


@dataclass
class ReplayOutcome:
    """Result of re-running an artifact's case."""

    artifact: ReplayArtifact
    outcome: CaseOutcome
    reproduced: bool
    missing_env: List[str]

    def describe(self) -> str:
        if self.reproduced:
            return (f"REPRODUCED: {', '.join(self.artifact.signature)} "
                    f"(digest {self.outcome.history_digest})")
        status = "CLEAN" if self.outcome.ok else \
            f"DIFFERENT: {', '.join(self.outcome.signature)}"
        hint = ""
        if self.missing_env:
            hint = (" [note: artifact expects "
                    + ", ".join(f"{key}={self.artifact.requires_env[key]}"
                                for key in self.missing_env) + "]")
        return f"{status}{hint}"


def replay(artifact: ReplayArtifact) -> ReplayOutcome:
    """Re-run the shrunk case exactly as the campaign judged it:

    NullTrace fast path first, then the FullTrace confirmation with the
    digest cross-check (so a recorded ``backend-divergence`` violation
    can reproduce too).  "Reproduced" means every recorded violation
    kind appears again; the caller decides whether that is good news
    (confirming a fresh counterexample) or bad news (a regression
    fixture resurfacing).
    """
    outcome = confirm_case(artifact.case,
                           run_case(artifact.case, backend="null"))
    recorded = set(artifact.signature)
    reproduced = bool(recorded) and recorded <= set(outcome.signature)
    missing = [key for key, value in (artifact.requires_env or {}).items()
               if os.environ.get(key) != value]
    return ReplayOutcome(artifact=artifact, outcome=outcome,
                         reproduced=reproduced, missing_env=missing)
