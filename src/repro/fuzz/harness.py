"""Case execution: fast-path verdicts, full-trace confirmation, checkers.

The campaign runs every case on the NullTrace fast path (PR 2: constant-
cost ``tick``, nothing retained) and computes only the cheap verdict:
*completed and eventually consistent* — read straight off the scenario's
observation stream (the online τ-tracker answers the harness's adversary
cut-off without any history rescan).  Suspicious cases are re-run under
``FullTrace`` — executions are byte-identical across backends, which the
re-run asserts via the history digest — and only then are the retained
histories fed through the offline regularity/atomicity checkers to
extract the concrete violating reads for the replay artifact.

Test-only violation injection
-----------------------------
``REPRO_FUZZ_INJECT=<event-kind>`` makes every case whose timeline
contains an event of that kind report a synthetic
``injected:<event-kind>`` violation.  It exists so the shrinker and the
replay pipeline can be exercised end-to-end (CI acceptance: an injected
violation must shrink to an artifact that reproduces under ``--replay``)
without planting a real bug.  The hook reads the environment at *check*
time, so worker processes inherit it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..checkers.atomicity import find_new_old_inversions
from ..checkers.regularity import check_regularity
from ..checkers.stabilization import stabilization_report
from ..runner.adapters import counters_from
from ..workloads.spec import run_scenario
from .gen import INITIAL, FuzzCase, KVFuzzCase, ReshardFuzzCase

#: environment variable enabling the test-only injection hook.
INJECT_ENV = "REPRO_FUZZ_INJECT"


@dataclass
class CaseOutcome:
    """Everything one execution of a case yields (plain data only)."""

    case: FuzzCase
    backend: str
    completed: bool
    stable: Optional[bool]
    ok: bool
    violations: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    history_digest: str = ""

    @property
    def signature(self) -> Tuple[str, ...]:
        """Sorted distinct violation kinds — the shrinker's 'same failure'."""
        return tuple(sorted({entry["kind"] for entry in self.violations}))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "completed": self.completed,
            "counters": dict(sorted(self.counters.items())),
            "history_digest": self.history_digest,
            "ok": self.ok,
            "stable": self.stable,
            "timings": dict(sorted(self.timings.items())),
            "violations": self.violations,
        }


def _injected_violations(case: FuzzCase) -> List[Dict[str, Any]]:
    kind = os.environ.get(INJECT_ENV)
    if not kind:
        return []
    hits = [event for event in case.timeline if event["kind"] == kind]
    if not hits:
        return []
    return [{"kind": f"injected:{kind}",
             "detail": f"timeline contains {len(hits)} {kind!r} event(s) "
                       f"and {INJECT_ENV} is set"}]


def _violation_details(history, case: FuzzCase, tau: float
                       ) -> List[Dict[str, Any]]:
    """Concrete violating reads after ``tau`` (full-check path only)."""
    details: List[Dict[str, Any]] = []
    for violation in check_regularity(history, after=tau, initial=INITIAL):
        details.append({
            "kind": "regularity",
            "detail": f"read {violation.returned!r} at "
                      f"[{violation.read.invoke:.3f}, "
                      f"{violation.read.response:.3f}] not in allowed set",
        })
    if case.kind == "atomic":
        for inversion in find_new_old_inversions(history, after=tau,
                                                 initial=INITIAL):
            details.append({
                "kind": "new-old-inversion",
                "detail": f"read w#{inversion.first_write_index} then "
                          f"w#{inversion.second_write_index} "
                          f"(invoked {inversion.first.invoke:.3f} / "
                          f"{inversion.second.invoke:.3f})",
            })
    return details


def _run_kv_case(case: KVFuzzCase, backend: str = "null",
                 detail: bool = False) -> CaseOutcome:
    """Execute a kv-family case: per-key post-τ linearizability verdict.

    ``detail=True`` (the FullTrace confirmation pass) additionally lists
    the failing key's concrete post-τ operations, so kv replay artifacts
    are as triagable as SWSR ones.
    """
    try:
        result = run_scenario("kv", trace_backend=backend,
                              **case.scenario_kwargs())
    except Exception as exc:  # noqa: BLE001 - cases must not kill campaigns
        return CaseOutcome(
            case=case, backend=backend, completed=False, stable=None,
            ok=False,
            violations=[{"kind": f"error:{type(exc).__name__}",
                         "detail": str(exc)}])
    violations: List[Dict[str, Any]] = []
    if not result.completed:
        violations.append({
            "kind": "incomplete",
            "detail": "operations did not terminate within "
                      f"max_events={case.max_events}"})
    else:
        for key in sorted(result.per_key_linearizable):
            if not result.per_key_linearizable[key]:
                shard = result.store.shard_for(key)
                entry = (f"key {key!r} (shard {shard}) post-tau "
                         "history does not linearize")
                if detail:
                    tau = result.tau_by_shard[shard]
                    ops = [repr(op) for op in sorted(
                        result.history.ops,
                        key=lambda op: (op.invoke, op.response))
                        if op.register == f"kv/{key}"
                        and op.invoke >= tau]
                    entry += "; ops: " + " | ".join(ops)
                violations.append({"kind": "kv-linearizability",
                                   "detail": entry})
    violations.extend(_injected_violations(case))
    summary = result.summarize()
    counters = counters_from(summary)
    counters["timeline_events"] = len(case.timeline)
    counters["shards"] = case.shard_count
    timings = {"sim_end": summary.sim_end, "tau_no_tr": result.tau_no_tr}
    return CaseOutcome(
        case=case, backend=backend, completed=result.completed,
        stable=summary.stable, ok=not violations, violations=violations,
        counters=counters, timings=timings,
        history_digest=summary.history_digest)


def _run_reshard_case(case: ReshardFuzzCase, backend: str = "null",
                      detail: bool = False) -> CaseOutcome:
    """Execute a reshard-family case.

    Verdict = per-key post-τ linearizability straight across every
    handoff, **plus** per-migration-epoch stabilization: every applied
    rebalance must reach an aggregated epoch τ (``epoch-unstable``
    otherwise — some key's reads never went clean again after the
    ownership change).
    """
    try:
        result = run_scenario("reshard", trace_backend=backend,
                              **case.scenario_kwargs())
    except Exception as exc:  # noqa: BLE001 - cases must not kill campaigns
        return CaseOutcome(
            case=case, backend=backend, completed=False, stable=None,
            ok=False,
            violations=[{"kind": f"error:{type(exc).__name__}",
                         "detail": str(exc)}])
    violations: List[Dict[str, Any]] = []
    if not result.completed:
        violations.append({
            "kind": "incomplete",
            "detail": "operations did not terminate within "
                      f"max_events={case.max_events}"})
    else:
        for key in sorted(result.per_key_linearizable):
            if not result.per_key_linearizable[key]:
                shard = result.store.shard_for(key)
                entry = (f"key {key!r} (shard {shard}) post-tau history "
                         "does not linearize across the handoffs")
                if detail:
                    ops = [repr(op) for op in sorted(
                        result.history.ops,
                        key=lambda op: (op.invoke, op.response))
                        if op.register == f"kv/{key}"]
                    entry += "; ops: " + " | ".join(ops)
                violations.append({"kind": "kv-linearizability",
                                   "detail": entry})
        for entry in result.epoch_taus:
            if entry["tau"] is None:
                violations.append({
                    "kind": "epoch-unstable",
                    "detail": f"migration epoch {entry['label']} "
                              f"(start {entry['start']:.3f}) never "
                              "re-stabilized"})
    violations.extend(_injected_violations(case))
    summary = result.summarize()
    counters = counters_from(summary)
    counters["timeline_events"] = len(case.timeline)
    counters["shards"] = result.store.shard_count
    counters["rebalances"] = len(result.rebalances)
    counters["keys_transferred"] = sum(len(report.transferred)
                                       for report in result.rebalances)
    timings = {"sim_end": summary.sim_end, "tau_no_tr": result.tau_no_tr}
    return CaseOutcome(
        case=case, backend=backend, completed=result.completed,
        stable=summary.stable, ok=not violations, violations=violations,
        counters=counters, timings=timings,
        history_digest=summary.history_digest)


def run_case(case, backend: str = "null",
             detail: bool = False) -> CaseOutcome:
    """Execute ``case`` on the given trace backend and judge it.

    Dispatches on the case family (:class:`FuzzCase` → SWSR scenario,
    :class:`KVFuzzCase` → sharded KV scenario, :class:`ReshardFuzzCase`
    → live-resharding scenario).  ``detail=True`` (the FullTrace
    confirmation pass) additionally lists the concrete violating reads;
    the fast path only needs the boolean verdict.  A raising scenario is
    *contained* as an ``error:<Type>`` violation so shrinking works
    uniformly on crashes too.
    """
    if isinstance(case, ReshardFuzzCase):
        return _run_reshard_case(case, backend, detail=detail)
    if isinstance(case, KVFuzzCase):
        return _run_kv_case(case, backend, detail=detail)
    try:
        result = run_scenario("swsr", trace_backend=backend,
                              **case.scenario_kwargs())
    except Exception as exc:  # noqa: BLE001 - cases must not kill campaigns
        return CaseOutcome(
            case=case, backend=backend, completed=False, stable=None,
            ok=False,
            violations=[{"kind": f"error:{type(exc).__name__}",
                         "detail": str(exc)}])
    timeline = case.fault_timeline()
    # judge stabilization from the last adversary action of any kind:
    # rotations may straddle the workload, and the construction only owes
    # consistency on the suffix after the Byzantine set stops moving.
    tau = max(result.tau_no_tr, timeline.last_event_time)
    mode = "atomic" if case.kind == "atomic" else "regular"
    report = None
    if result.completed and result.history.reads():
        # the scenario's online tracker answers any cut-off without a
        # rescan; the offline pass survives only as a fallback for
        # stream-less results.
        if result.report is not None and tau == result.tau_no_tr:
            report = result.report
        else:
            report = result.stream_report(tau)
        if report is None:
            report = stabilization_report(result.history, mode=mode,
                                          initial=INITIAL, tau_no_tr=tau)
    stable = report.stable if report else None

    violations: List[Dict[str, Any]] = []
    if not result.completed:
        violations.append({
            "kind": "incomplete",
            "detail": "operations did not terminate within "
                      f"max_events={case.max_events}"})
    elif stable is False:
        if detail:
            violations.extend(_violation_details(result.history, case, tau))
        if not violations:
            violations.append({
                "kind": "unstable",
                "detail": f"no suffix after tau={tau} satisfies {mode}"})
    violations.extend(_injected_violations(case))

    summary = result.summarize()
    counters = counters_from(summary)
    # summary.dirty_reads is judged against the scenario's own τ, not
    # this harness's tau (which also covers rotations) — reporting it
    # here would mix two τ bases.
    counters.pop("dirty_reads", None)
    counters["timeline_events"] = len(case.timeline)
    timings = {"sim_end": summary.sim_end, "tau_adversary": tau,
               "tau_no_tr": result.tau_no_tr}
    if report and report.tau_stab is not None:
        timings["tau_stab"] = report.tau_stab
    return CaseOutcome(
        case=case, backend=backend, completed=result.completed,
        stable=stable, ok=not violations, violations=violations,
        counters=counters, timings=timings,
        history_digest=summary.history_digest)


def confirm_case(case,
                 fast: Optional[CaseOutcome] = None) -> CaseOutcome:
    """FullTrace re-run of a suspicious case, with violation details.

    Asserts the backend-independence invariant when the fast outcome is
    available: the history digest must not depend on the trace backend.
    """
    full = run_case(case, backend="full", detail=True)
    if (fast is not None and fast.history_digest and full.history_digest
            and fast.history_digest != full.history_digest):
        full.violations.append({
            "kind": "backend-divergence",
            "detail": f"null-trace digest {fast.history_digest} != "
                      f"full-trace digest {full.history_digest}"})
        full.ok = False
    return full
