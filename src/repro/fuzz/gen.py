"""Seeded scenario generation: one integer in, one reproducible case out.

A :class:`FuzzCase` is a *complete, serializable* description of one
experiment: topology, workload program, static Byzantine placement and a
declarative :class:`~repro.faults.schedule.FaultTimeline`.  Every field is
sampled from a single ``random.Random(seed)`` whose seed is **hash-derived**
(see :mod:`repro.runner.spec`), never ``hash()``-derived, so a case is a
pure function of its seed — byte-identical across processes, worker
counts, Python versions and platforms (guarded by the golden-seed tests in
``tests/test_fuzz_golden_seeds.py``).

Sampling discipline
-------------------
Only Mersenne-Twister primitives with a stable cross-version algorithm are
used (``random``, ``randrange``, ``choice``, ``uniform``); subset picking
is implemented locally instead of ``random.sample`` (whose internal
strategy choice is an implementation detail).  All times are quantized to
one decimal so shrunk counterexamples stay human-readable.

Adversary envelope
------------------
Generated cases must *pass* on a correct implementation, so the sampler
stays inside the paper's guarantees:

* topologies satisfy the resilience bound (``n >= 8t + 1``, asynchronous);
* transient-style events (bursts, link garbage, partitions, crash/recover)
  land before τ_no_tr, matching assumption (b) that writes start after the
  last transient failure;
* mobile Byzantine rotations may straddle the live workload but rotate
  *responsive* strategies and stop before the final reads, leaving a
  suffix for stabilization to be judged on (the documented starvation of
  non-responsive handovers is pinned separately in
  ``tests/test_workload_fault_timelines.py``).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..faults.schedule import FaultTimeline
from ..workloads.scenarios import INITIAL

#: responsive static adversaries (may also be silent: a static mute server
#: is within the n - t wait's budget).
STATIC_STRATEGIES = ("silent", "stale", "random-garbage", "equivocate",
                     "flip-flop", "inversion-attack")

#: rotation strategies must reply (see the run_mobile_byzantine_scenario
#: liveness caveat: two mute servers straddling a handover starve the
#: n - t wait).
ROTATION_STRATEGIES = ("random-garbage", "stale")

#: (n, t) topologies satisfying the asynchronous bound n >= 8t + 1.
TOPOLOGIES = ((9, 1), (10, 1), (11, 1), (13, 1), (17, 2))


def server_name(index: int) -> str:
    """Server pid for a zero-based index — one source of truth for the
    naming convention :class:`~repro.registers.system.Cluster` uses."""
    return f"s{index + 1}"


def server_number(pid: Any) -> Optional[int]:
    """Inverse of :func:`server_name` (the 1-based numeric suffix), or
    ``None`` for pids that are not cluster server names."""
    name = str(pid)
    if name.startswith("s") and name[1:].isdigit():
        return int(name[1:])
    return None


def _quantize(value: float) -> float:
    """One-decimal times: readable cases, exact float round-trips."""
    return round(value, 1)


def _pick_subset(rng: random.Random, items: List[str], size: int) -> List[str]:
    """``size`` distinct items, chosen with stable primitives only."""
    pool = list(items)
    picked = []
    for _ in range(size):
        picked.append(pool.pop(rng.randrange(len(pool))))
    return picked


@dataclass(frozen=True)
class FuzzProfile:
    """Knobs bounding the sampled case space (all JSON-able scalars)."""

    max_transient_events: int = 4
    max_rotations: int = 3
    max_writes: int = 8
    max_reads: int = 8
    max_events: int = 4_000_000
    #: probability of sampling the datalink transport (partition events are
    #: skipped there: packet channels bypass the Network link layer).
    datalink_weight: float = 0.15
    #: probability that the reader offset is small enough to create
    #: read/write concurrency (the inversion-prone regime).
    concurrency_weight: float = 0.35

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "FuzzProfile":
        return cls(**(data or {}))


DEFAULT_PROFILE = FuzzProfile()


@dataclass(frozen=True)
class FuzzCase:
    """One generated experiment, fully described by plain data."""

    seed: int
    kind: str                      # "regular" | "atomic"
    n: int
    t: int
    transport: str                 # "direct" | "datalink"
    num_writes: int
    num_reads: int
    op_gap: float
    reader_offset: Optional[float]
    byzantine_count: int
    byzantine_strategy: str
    timeline: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    max_events: int = 4_000_000

    # -- derived -----------------------------------------------------------
    def fault_timeline(self) -> FaultTimeline:
        return FaultTimeline.from_dict({"events": list(self.timeline)})

    def scenario_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_swsr_scenario`` (minus backend)."""
        return {
            "kind": self.kind, "n": self.n, "t": self.t, "seed": self.seed,
            "transport": self.transport, "num_writes": self.num_writes,
            "num_reads": self.num_reads, "op_gap": self.op_gap,
            "reader_offset": self.reader_offset,
            "byzantine_count": self.byzantine_count,
            "byzantine_strategy": self.byzantine_strategy,
            "initial": INITIAL,
            "fault_timeline": self.fault_timeline(),
            "max_events": self.max_events,
        }

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        # asdict keeps this in lockstep with the dataclass fields (the
        # shrinker memoizes and artifacts round-trip on this rendering);
        # the timeline re-renders as a plain list for JSON friendliness.
        data = asdict(self)
        data["timeline"] = [dict(event) for event in self.timeline]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        fields = dict(data)
        fields["timeline"] = tuple(
            {"time": float(event["time"]), "kind": event["kind"],
             "args": dict(event.get("args") or {})}
            for event in (fields.get("timeline") or ()))
        try:
            return cls(**fields)
        except TypeError as exc:   # missing or unknown fields
            raise ValueError(f"malformed fuzz case: {exc}") from None

    def with_timeline(self, events) -> "FuzzCase":
        """Copy with a replacement event list (shrinker hook)."""
        return replace(self, timeline=tuple(
            event.to_dict() if hasattr(event, "to_dict") else dict(event)
            for event in events))


@dataclass(frozen=True)
class KVFuzzCase:
    """One generated *sharded KV* experiment (the ``kv`` fuzz family).

    Mirrors :class:`FuzzCase` for :func:`~repro.workloads.scenarios
    .run_kv_scenario`: topology, shard/client/key counts, a static
    Byzantine placement (per shard) and per-shard fault-timeline events.
    Timeline events are stored flattened, each carrying its ``shard``
    index, so the ddmin shrinker can drop them one by one exactly like
    SWSR events; :meth:`scenario_kwargs` regroups them per shard.  Event
    times are *relative* — the scenario anchors them to each shard's
    clock after the key-creation phase.
    """

    seed: int
    shard_count: int
    n: int
    t: int
    client_count: int
    num_keys: int
    rounds: int
    byzantine_count: int
    byzantine_strategy: str
    timeline: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    max_events: int = 4_000_000

    # -- derived -----------------------------------------------------------
    def scenario_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_kv_scenario`` (minus backend)."""
        per_shard: Dict[int, List[Dict[str, Any]]] = {}
        for event in self.timeline:
            entry = {key: value for key, value in event.items()
                     if key != "shard"}
            per_shard.setdefault(int(event["shard"]), []).append(entry)
        return {
            "shard_count": self.shard_count, "n": self.n, "t": self.t,
            "seed": self.seed, "client_count": self.client_count,
            "num_keys": self.num_keys, "rounds": self.rounds,
            "byzantine_count": self.byzantine_count,
            "byzantine_strategy": self.byzantine_strategy,
            "fault_timelines": {shard: {"events": events}
                                for shard, events in per_shard.items()},
            "max_events": self.max_events,
        }

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["timeline"] = [dict(event) for event in self.timeline]
        data["family"] = "kv"
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KVFuzzCase":
        fields = {key: value for key, value in data.items()
                  if key != "family"}
        fields["timeline"] = tuple(
            {"time": float(event["time"]), "kind": event["kind"],
             "args": dict(event.get("args") or {}),
             "shard": int(event["shard"])}
            for event in (fields.get("timeline") or ()))
        try:
            return cls(**fields)
        except TypeError as exc:   # missing or unknown fields
            raise ValueError(f"malformed kv fuzz case: {exc}") from None

    def with_timeline(self, events) -> "KVFuzzCase":
        """Copy with a replacement event list (shrinker hook)."""
        return replace(self, timeline=tuple(dict(event)
                                            for event in events))


@dataclass(frozen=True)
class ReshardFuzzCase:
    """One generated *live-resharding* experiment (the ``reshard`` family).

    Mirrors :class:`KVFuzzCase` for :func:`~repro.workloads.scenarios
    .run_reshard_scenario`, with one twist: the flattened ``timeline``
    holds **both** per-shard fault events (each carrying its ``shard``
    index) and store-scoped rebalance events (``reshard_split`` /
    ``reshard_merge`` / ``migrate_vnodes``, no ``shard`` key).
    :meth:`scenario_kwargs` splits them back into ``fault_timelines`` and
    ``reshard_plan`` — and because they share one event vector, the ddmin
    shrinker minimizes rebalance plans exactly like fault timelines
    (a candidate whose plan drops a split that a later merge references
    simply fails validation and is rejected as a different signature).
    """

    seed: int
    shard_count: int
    n: int
    t: int
    client_count: int
    num_keys: int
    rounds: int
    vnodes: int
    byzantine_count: int
    byzantine_strategy: str
    timeline: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    max_events: int = 6_000_000

    # -- derived -----------------------------------------------------------
    def plan_events(self) -> List[Dict[str, Any]]:
        from ..faults.schedule import RESHARD_KINDS
        return [event for event in self.timeline
                if event["kind"] in RESHARD_KINDS]

    def scenario_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_reshard_scenario`` (minus backend)."""
        from ..faults.schedule import RESHARD_KINDS
        per_shard: Dict[int, List[Dict[str, Any]]] = {}
        plan: List[Dict[str, Any]] = []
        for event in self.timeline:
            if event["kind"] in RESHARD_KINDS:
                plan.append({key: value for key, value in event.items()
                             if key != "shard"})
            else:
                entry = {key: value for key, value in event.items()
                         if key != "shard"}
                per_shard.setdefault(int(event["shard"]), []).append(entry)
        return {
            "shard_count": self.shard_count, "n": self.n, "t": self.t,
            "seed": self.seed, "client_count": self.client_count,
            "num_keys": self.num_keys, "rounds": self.rounds,
            "vnodes": self.vnodes,
            "byzantine_count": self.byzantine_count,
            "byzantine_strategy": self.byzantine_strategy,
            "fault_timelines": {shard: {"events": events}
                                for shard, events in per_shard.items()},
            "reshard_plan": {"events": plan},
            "max_events": self.max_events,
        }

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["timeline"] = [dict(event) for event in self.timeline]
        data["family"] = "reshard"
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReshardFuzzCase":
        fields = {key: value for key, value in data.items()
                  if key != "family"}
        events = []
        for event in (fields.get("timeline") or ()):
            entry = {"time": float(event["time"]), "kind": event["kind"],
                     "args": dict(event.get("args") or {})}
            if "shard" in event:
                entry["shard"] = int(event["shard"])
            events.append(entry)
        fields["timeline"] = tuple(events)
        try:
            return cls(**fields)
        except TypeError as exc:   # missing or unknown fields
            raise ValueError(
                f"malformed reshard fuzz case: {exc}") from None

    def with_timeline(self, events) -> "ReshardFuzzCase":
        """Copy with a replacement event list (shrinker hook)."""
        return replace(self, timeline=tuple(dict(event)
                                            for event in events))


def case_from_dict(data: Dict[str, Any]):
    """Load any fuzz-case family from its dict rendering.

    The reshard test must come first: a reshard case also carries
    ``shard_count``, which would otherwise match the kv branch.
    """
    if data.get("family") == "reshard" or "vnodes" in data:
        return ReshardFuzzCase.from_dict(data)
    if data.get("family") == "kv" or "shard_count" in data:
        return KVFuzzCase.from_dict(data)
    return FuzzCase.from_dict(data)


def _sample_transient_events(rng: random.Random, profile: FuzzProfile,
                             server_ids: List[str], transport: str,
                             static_byz: int, kind_reg: str
                             ) -> List[Dict[str, Any]]:
    """Pre-workload transient faults (they all count into τ_no_tr).

    Bursts against *atomic* cases target servers only: corrupting the
    writer's ``wsn`` (or the reader's ``pwsn``) can teleport it up to
    half the bounded sequence ring — indistinguishable from
    system-life-span writes having happened, which voids Lemma 13's
    precondition, so reads may legitimately return the stale ``pv`` for
    the rest of a short history (see ``tests/replays/wsn-jump-atomic
    .json``, a fuzzer-found counterexample kept as documentation).
    Server state, by contrast, is provably repaired by the first
    post-τ write plus the helping mechanism.
    """
    events: List[Dict[str, Any]] = []
    count = rng.randrange(profile.max_transient_events + 1)
    kinds = ["burst", "link-garbage", "crash"]
    if transport == "direct":
        kinds.append("partition")
    for _ in range(count):
        kind = rng.choice(kinds)
        time = _quantize(rng.uniform(0.5, 8.0))
        if kind == "burst":
            fraction = _quantize(rng.uniform(0.2, 1.0))
            targets = rng.choice(["all", "servers", "clients"])
            if kind_reg == "atomic":
                targets = "servers"
            events.append({"time": time, "kind": "burst",
                           "args": {"fraction": fraction,
                                    "targets": targets}})
        elif kind == "link-garbage":
            events.append({"time": time, "kind": "link-garbage",
                           "args": {"per_link": rng.randrange(1, 4)}})
        elif kind == "crash":
            # crashed servers come from the tail so they never overlap the
            # static Byzantine prefix.
            tail = server_ids[static_byz:]
            group = _pick_subset(rng, tail, 1 + rng.randrange(2))
            end = _quantize(time + rng.uniform(0.5, 3.0))
            events.append({"time": time, "kind": "crash",
                           "args": {"servers": sorted(group)}})
            events.append({"time": end, "kind": "recover",
                           "args": {"servers": sorted(group),
                                    "corrupt": rng.random() < 0.8}})
        else:  # partition
            tail = server_ids[static_byz:]
            group = _pick_subset(rng, tail,
                                 1 + rng.randrange(max(1, len(tail) // 3)))
            end = _quantize(time + rng.uniform(0.5, 3.0))
            events.append({"time": time, "kind": "partition",
                           "args": {"group": sorted(group)}})
            events.append({"time": end, "kind": "heal",
                           "args": {"group": sorted(group)}})
    return events


def _sample_rotations(rng: random.Random, profile: FuzzProfile,
                      server_ids: List[str], t: int, start: float,
                      read_span: float) -> List[Dict[str, Any]]:
    """Mobile Byzantine rotations inside the first 60% of the *read*
    schedule (``read_span`` = last read invocation − workload start).

    Sizing the window by reads rather than the whole workload guarantees
    at least the tail reads are invoked after the last rotation —
    stabilization is never judged on an empty read suffix, which would
    be a vacuously 'stable' verdict.
    """
    rotations = rng.randrange(profile.max_rotations + 1)
    if rotations == 0:
        return []
    strategy = rng.choice(list(ROTATION_STRATEGIES))
    size = 1 + rng.randrange(t)
    events = []
    for index in range(rotations):
        time = _quantize(start + rng.uniform(0.0, 0.6 * read_span))
        members = _pick_subset(rng, server_ids, size)
        events.append({"time": time, "kind": "byzantine",
                       "args": {"servers": sorted(members),
                                "strategy": strategy}})
    return events


def generate_case(seed: int,
                  profile: FuzzProfile = DEFAULT_PROFILE) -> FuzzCase:
    """The pure generator: ``(seed, profile) -> FuzzCase``.

    >>> case = generate_case(7)
    >>> case == generate_case(7)                 # pure function of seed
    True
    >>> case.n >= 8 * case.t + 1                 # resilience envelope
    True
    """
    rng = random.Random(seed)
    n, t = TOPOLOGIES[rng.randrange(len(TOPOLOGIES))]
    kind = rng.choice(["regular", "atomic"])
    transport = ("datalink" if rng.random() < profile.datalink_weight
                 else "direct")
    num_writes = 1 + rng.randrange(profile.max_writes)
    num_reads = 1 + rng.randrange(profile.max_reads)
    op_gap = _quantize(rng.uniform(6.0, 14.0))
    if rng.random() < profile.concurrency_weight:
        reader_offset = _quantize(rng.uniform(0.1, 1.5))
    else:
        reader_offset = None
    byzantine_count = rng.randrange(t + 1)
    byzantine_strategy = rng.choice(list(STATIC_STRATEGIES))

    server_ids = [server_name(i) for i in range(n)]
    events = _sample_transient_events(rng, profile, server_ids, transport,
                                      byzantine_count, kind)
    tau = max((event["time"] for event in events), default=0.0)
    start = tau + 1.0
    # last read is scheduled at start + (num_reads-1)*op_gap + offset
    # (see workloads.generators.alternating_schedule).
    offset = reader_offset if reader_offset is not None else op_gap / 2.0
    read_span = (num_reads - 1) * op_gap + offset
    events.extend(_sample_rotations(rng, profile, server_ids, t, start,
                                    read_span))
    # scheduler order is (time, seq); sort for readability, keeping the
    # sampled order among same-time events (sort is stable).
    events.sort(key=lambda event: event["time"])
    return FuzzCase(
        seed=seed, kind=kind, n=n, t=t, transport=transport,
        num_writes=num_writes, num_reads=num_reads, op_gap=op_gap,
        reader_offset=reader_offset, byzantine_count=byzantine_count,
        byzantine_strategy=byzantine_strategy,
        timeline=tuple(events), max_events=profile.max_events)


# ----------------------------------------------------------------------
# the kv family
# ----------------------------------------------------------------------
#: static adversaries safe for the sharded KV stack.  Strategies are
#: per-shard (at most ``t`` servers each), all responsive or within the
#: ``n - t`` wait's silent budget.
KV_STRATEGIES = ("silent", "stale", "random-garbage", "equivocate",
                 "flip-flop")

#: burst fractions stay partial: a burst corrupting *every* server copy
#: of a per-key register livelocks the MWMR scan until the owner
#: rewrites (run_kv_scenario's documented liveness caveat).
KV_MAX_BURST_FRACTION = 0.2


def _sample_kv_shard_events(rng: random.Random, profile: FuzzProfile,
                            shard_count: int, server_ids: List[str],
                            static_byz: int) -> List[Dict[str, Any]]:
    """Pre-workload transient events, each pinned to one shard.

    All relative times land in ``(0.5, 6.0)`` and every crash/partition
    resolves before the workload (the scenario anchors τ per shard to
    the last event).  Groups come from the server-list tail so they
    never overlap the static Byzantine prefix.
    """
    events: List[Dict[str, Any]] = []
    count = rng.randrange(profile.max_transient_events + 1)
    for _ in range(count):
        shard = rng.randrange(shard_count)
        kind = rng.choice(["burst", "partition", "crash"])
        time = _quantize(rng.uniform(0.5, 6.0))
        if kind == "burst":
            fraction = _quantize(rng.uniform(0.05, KV_MAX_BURST_FRACTION))
            events.append({"time": time, "kind": "burst",
                           "args": {"fraction": fraction,
                                    "targets": "servers"},
                           "shard": shard})
        else:
            tail = server_ids[static_byz:]
            group = sorted(_pick_subset(rng, tail, 1))
            end = _quantize(time + rng.uniform(0.5, 2.0))
            if kind == "partition":
                events.append({"time": time, "kind": "partition",
                               "args": {"group": group}, "shard": shard})
                events.append({"time": end, "kind": "heal",
                               "args": {"group": group}, "shard": shard})
            else:
                events.append({"time": time, "kind": "crash",
                               "args": {"servers": group}, "shard": shard})
                events.append({"time": end, "kind": "recover",
                               "args": {"servers": group,
                                        "corrupt": rng.random() < 0.8},
                               "shard": shard})
    return events


def generate_kv_case(seed: int,
                     profile: FuzzProfile = DEFAULT_PROFILE) -> KVFuzzCase:
    """The pure kv-family generator: ``(seed, profile) -> KVFuzzCase``.

    >>> case = generate_kv_case(7)
    >>> case == generate_kv_case(7)
    True
    >>> 1 <= case.shard_count <= 3
    True
    """
    rng = random.Random(seed)
    shard_count = 1 + rng.randrange(3)
    n, t = 9, 1
    client_count = 1 + rng.randrange(3)
    num_keys = 1 + rng.randrange(5)
    rounds = 1 + rng.randrange(3)
    byzantine_count = rng.randrange(t + 1)
    byzantine_strategy = rng.choice(list(KV_STRATEGIES))
    server_ids = [server_name(i) for i in range(n)]
    events = _sample_kv_shard_events(rng, profile, shard_count, server_ids,
                                     byzantine_count)
    events.sort(key=lambda event: (event["shard"], event["time"]))
    return KVFuzzCase(
        seed=seed, shard_count=shard_count, n=n, t=t,
        client_count=client_count, num_keys=num_keys, rounds=rounds,
        byzantine_count=byzantine_count,
        byzantine_strategy=byzantine_strategy,
        timeline=tuple(events), max_events=profile.max_events)


# ----------------------------------------------------------------------
# the reshard family
# ----------------------------------------------------------------------
def _sample_reshard_plan(rng: random.Random, shard_count: int,
                         vnodes: int) -> List[Dict[str, Any]]:
    """A statically valid rebalance plan (1-3 store-scoped events).

    Generated cases must pass on a correct implementation, so the
    sampler replays the ring algebra it is about to request: splits
    allocate indices in order, merges empty their source, slot counts
    track every move — no event ever splits a sub-2-slot shard, merges
    an empty one or migrates more slots than the source owns.  Times are
    sampled *increasing* so the scenario's time-ordering of the plan
    preserves the sampled reference order.
    """
    slots = [vnodes] * shard_count        # per-shard owned-slot counts
    events: List[Dict[str, Any]] = []
    time = 0.0
    for _ in range(1 + rng.randrange(3)):
        time = _quantize(time + rng.uniform(2.0, 20.0))
        splittable = [s for s, count in enumerate(slots) if count >= 2]
        occupied = [s for s, count in enumerate(slots) if count >= 1]
        kinds = []
        if splittable:
            kinds.append("reshard_split")
        if len(occupied) >= 2:
            kinds.extend(["reshard_merge", "migrate_vnodes"])
        if not kinds:
            break
        kind = rng.choice(kinds)
        if kind == "reshard_split":
            shard = rng.choice(splittable)
            moved = slots[shard] // 2
            slots[shard] -= moved
            slots.append(moved)
            events.append({"time": time, "kind": "reshard_split",
                           "args": {"shard": shard}})
        elif kind == "reshard_merge":
            source = rng.choice(occupied)
            into = rng.choice([s for s in occupied if s != source])
            slots[into] += slots[source]
            slots[source] = 0
            events.append({"time": time, "kind": "reshard_merge",
                           "args": {"source": source, "into": into}})
        else:
            source = rng.choice([s for s in occupied if slots[s] >= 1])
            dest = rng.choice([s for s in range(len(slots))
                               if s != source])
            count = 1 + rng.randrange(min(2, slots[source]))
            slots[source] -= count
            slots[dest] += count
            events.append({"time": time, "kind": "migrate_vnodes",
                           "args": {"source": source, "dest": dest,
                                    "count": count}})
    return events


def generate_reshard_case(seed: int, profile: FuzzProfile = DEFAULT_PROFILE
                          ) -> ReshardFuzzCase:
    """The pure reshard-family generator: ``(seed, profile) -> case``.

    >>> case = generate_reshard_case(7)
    >>> case == generate_reshard_case(7)
    True
    >>> len(case.plan_events()) >= 1
    True
    """
    rng = random.Random(seed)
    shard_count = 1 + rng.randrange(3)
    n, t = 9, 1
    client_count = 1 + rng.randrange(3)
    num_keys = 1 + rng.randrange(5)
    rounds = 1 + rng.randrange(3)
    vnodes = rng.choice([2, 4, 8])
    byzantine_count = rng.randrange(t + 1)
    byzantine_strategy = rng.choice(list(KV_STRATEGIES))
    server_ids = [server_name(i) for i in range(n)]
    faults = _sample_kv_shard_events(rng, profile, shard_count, server_ids,
                                     byzantine_count)
    faults.sort(key=lambda event: (event["shard"], event["time"]))
    plan = _sample_reshard_plan(rng, shard_count, vnodes)
    return ReshardFuzzCase(
        seed=seed, shard_count=shard_count, n=n, t=t,
        client_count=client_count, num_keys=num_keys, rounds=rounds,
        vnodes=vnodes, byzantine_count=byzantine_count,
        byzantine_strategy=byzantine_strategy,
        timeline=tuple(faults + plan), max_events=profile.max_events)
