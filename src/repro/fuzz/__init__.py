"""Deterministic scenario fuzzing with counterexample shrinking.

The fuzzer searches the space of fault timelines, topologies and workload
programs for executions that violate the paper's invariants (regularity /
atomicity / stabilization), then delta-debugs any violation down to a
minimal, replayable JSON artifact:

* :mod:`repro.fuzz.gen` — hash-seeded case generators (byte-reproducible);
* :mod:`repro.fuzz.harness` — NullTrace fast-path execution, FullTrace
  confirmation, checker integration;
* :mod:`repro.fuzz.shrink` — ddmin over timeline events + parameter
  ladders;
* :mod:`repro.fuzz.replay` — self-contained replay artifacts
  (``python -m repro.fuzz --replay FILE``);
* :mod:`repro.fuzz.campaign` — parallel fan-out through
  :mod:`repro.runner`.
"""

from .campaign import (FuzzCampaignResult, campaign_cases, campaign_spec,
                       run_campaign)
from .gen import (DEFAULT_PROFILE, FuzzCase, FuzzProfile, KVFuzzCase,
                  ReshardFuzzCase, generate_case, generate_kv_case,
                  generate_reshard_case)
from .harness import INJECT_ENV, CaseOutcome, confirm_case, run_case
from .replay import ReplayArtifact, ReplayOutcome, replay
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "CaseOutcome", "DEFAULT_PROFILE", "FuzzCampaignResult", "FuzzCase",
    "FuzzProfile", "INJECT_ENV", "KVFuzzCase", "ReplayArtifact",
    "ReplayOutcome", "ReshardFuzzCase", "ShrinkResult", "campaign_cases",
    "campaign_spec", "confirm_case", "generate_case", "generate_kv_case",
    "generate_reshard_case", "replay", "run_campaign", "run_case",
    "shrink_case",
]
