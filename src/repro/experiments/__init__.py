"""Scripted experiments reproducing the paper's figures and claims."""

from .figure1 import (Figure1Result, figure1_comparison, figure1_sweep,
                      run_figure1)

__all__ = ["Figure1Result", "figure1_comparison", "figure1_sweep",
           "run_figure1"]
