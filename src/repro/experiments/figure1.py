"""Deterministic reproduction of Figure 1 (new/old inversion).

The paper's Figure 1 shows a regular register where a read concurrent with
``write(1)`` returns the new value while a *later* read returns the old
one.  We realise that exact phenomenon against the Figure-2 algorithm with
an adversarial — but perfectly legal — combination of asynchrony and
Byzantine behaviour:

* ``n = 17, t = 2`` (``n >= 8t + 1`` holds: the algorithm's guarantees are
  *eventual*; during a not-yet-terminated write both outcomes are allowed
  by regularity, which is exactly the figure's point);
* ``write(v1)`` is delivered quickly to 6 correct servers and crawls to the
  other 9 (the write stays pending through both reads);
* the two Byzantine servers run :class:`~repro.faults.byzantine.FlipFlopStrategy`:
  they answer the first read with the newest value and the second with the
  oldest.  Among the ``n - t = 15`` acknowledgements each read collects,
  the first read sees 6+2 = 8 new vs 7 old (returns ``v1``) and the second
  6 new vs 7+2 = 9 old (returns ``v0``) — a new/old inversion.

Running the *same* schedule against the Figure-3 atomic register shows the
reader's ``(pwsn, pv)`` bookkeeping absorbing the attack: no inversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from ..checkers.atomicity import find_new_old_inversions
from ..checkers.history import History
from ..datalink.packets import SSMsg
from ..faults.byzantine import FlipFlopStrategy
from ..registers.messages import Write
from ..registers.system import (Cluster, ClusterConfig, build_swsr_atomic,
                                build_swsr_regular)
from ..sim.network import ScriptedDelay

#: servers receiving write(v1) promptly (the rest crawl).
FAST_SET = {"s3", "s4", "s5", "s6", "s7", "s8"}
#: servers whose read acknowledgements arrive last (excluded from the
#: first n-t = 15 collected).
EXCLUDED_SET = {"s16", "s17"}
BYZANTINE_SET = ("s1", "s2")

_FAST = 0.1
_SLOW_READ = 0.3
_CRAWL = 1000.0


def _is_stalled_write(message: Any) -> bool:
    return (isinstance(message, SSMsg)
            and isinstance(message.payload, Write)
            and _value_of(message.payload.value) == "v1")


def _value_of(value: Any) -> Any:
    """The data value, unwrapping the atomic register's (wsn, v) pair."""
    if isinstance(value, tuple) and len(value) == 2:
        return value[1]
    return value


def _figure1_chooser(src: str, dst: str, message: Any, rng) -> float:
    if _is_stalled_write(message) and dst not in FAST_SET \
            and dst not in BYZANTINE_SET:
        return _CRAWL
    if isinstance(message, SSMsg) and dst in EXCLUDED_SET:
        return _SLOW_READ
    return _FAST


@dataclass
class Figure1Result:
    """Outcome of one Figure-1 schedule run."""

    kind: str                     # "regular" | "atomic"
    first_read: Any
    second_read: Any
    inversions: List
    history: History

    @property
    def inverted(self) -> bool:
        return bool(self.inversions)

    def summarize(self) -> Dict[str, Any]:
        """Picklable reduction for sweep workers (``repro.runner``).

        Same contract as ``ScenarioResult.summarize()``: plain scalars
        only, deterministic, history reduced to a digest.
        """
        from ..workloads.scenarios import history_digest
        return {
            "kind": self.kind,
            "first_read": repr(self.first_read),
            "second_read": repr(self.second_read),
            "inverted": self.inverted,
            "inversions": len(self.inversions),
            "ops": len(self.history),
            "history_digest": history_digest(self.history),
        }


def run_figure1(kind: str = "regular", seed: int = 0) -> Figure1Result:
    """Run the Figure-1 schedule against a regular or atomic register."""
    config = ClusterConfig(n=17, t=2, seed=seed, record_kinds=set())
    cluster = Cluster(config, delay_model=ScriptedDelay(_figure1_chooser))
    if kind == "regular":
        writer, reader = build_swsr_regular(cluster, initial="v_init")
    elif kind == "atomic":
        writer, reader = build_swsr_atomic(cluster, initial="v_init")
    else:
        raise ValueError(f"unknown register kind {kind!r}")
    cluster.make_byzantine(BYZANTINE_SET, lambda server: FlipFlopStrategy())

    handles = []

    def op(time, factory):
        cluster.scheduler.schedule_at(
            time, lambda: handles.append(factory()), label="figure1-op")

    op(1.0, lambda: writer.write("v0"))       # completes quickly
    op(10.0, lambda: writer.write("v1"))      # stalls mid-propagation
    op(12.0, lambda: reader.read())           # concurrent with write(v1)
    op(16.0, lambda: reader.read())           # still concurrent

    # run the reads to completion (the stalled write finishes much later)
    cluster.scheduler.run_until(
        lambda: len(handles) == 4 and handles[2].done and handles[3].done,
        max_events=500_000)
    # let write(v1) terminate so the history is complete
    cluster.scheduler.run_until(lambda: handles[1].done,
                                max_events=500_000)

    history = History.from_handles(handles)
    inversions = find_new_old_inversions(history)
    return Figure1Result(kind=kind,
                         first_read=handles[2].result,
                         second_read=handles[3].result,
                         inversions=inversions,
                         history=history)


def figure1_comparison(seed: int = 0) -> Dict[str, Figure1Result]:
    """The paper's figure and its resolution, side by side."""
    return {kind: run_figure1(kind, seed) for kind in ("regular", "atomic")}


def figure1_sweep(seeds: Sequence[int] = (0,), workers: int = 1):
    """Both register kinds across many seeds, via the parallel sweep runner.

    Returns a :class:`repro.runner.SweepResult`; the regular cells are
    expected to invert, the atomic cells must not (each cell's ``ok``
    verdict encodes that expectation).
    """
    # imported here: repro.runner imports this module at load time.
    from ..runner import SweepSpec, run_sweep
    spec = SweepSpec(name="figure1", scenario="figure1",
                     grid={"kind": ["regular", "atomic"],
                           "seed": [int(seed) for seed in seeds]},
                     seeds=None)
    return run_sweep(spec, workers=workers)
