"""repro — Stabilizing Byzantine server-based storage (PODC 2015).

A complete reproduction of *"Stabilizing Server-Based Storage in Byzantine
Asynchronous Message-Passing Systems"* (Bonomi, Dolev, Potop-Butucaru,
Raynal): the four register constructions of the paper, the ss-broadcast /
data-link substrate they rely on, a deterministic simulator implementing
the paper's system model, transient + Byzantine fault injection,
consistency checkers that *measure* stabilization, and an asyncio service
layer that puts the sharded KV store behind a framed client/server
protocol.

The public surface is defined by :mod:`repro.api` and re-exported here;
import from either spelling::

    from repro.api import Cluster, ClusterConfig, build_swsr_atomic

    cluster = Cluster(ClusterConfig(n=9, t=1, seed=1))
    writer, reader = build_swsr_atomic(cluster)
    handle = writer.write("hello")
    cluster.run_ops([handle])
    handle = reader.read()
    cluster.run_ops([handle])
    print(handle.result)   # -> "hello"

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .api import *          # noqa: F401,F403 - the blessed surface
from .api import __all__ as _api_all

__version__ = "1.1.0"

__all__ = list(_api_all) + ["__version__"]
