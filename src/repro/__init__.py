"""repro — Stabilizing Byzantine server-based storage (PODC 2015).

A complete reproduction of *"Stabilizing Server-Based Storage in Byzantine
Asynchronous Message-Passing Systems"* (Bonomi, Dolev, Potop-Butucaru,
Raynal): the four register constructions of the paper, the ss-broadcast /
data-link substrate they rely on, a deterministic simulator implementing
the paper's system model, transient + Byzantine fault injection, and
consistency checkers that *measure* stabilization.

Quickstart::

    from repro import Cluster, ClusterConfig, build_swsr_atomic

    cluster = Cluster(ClusterConfig(n=9, t=1, seed=1))
    writer, reader = build_swsr_atomic(cluster)
    handle = writer.write("hello")
    cluster.run_ops([handle])
    handle = reader.read()
    cluster.run_ops([handle])
    print(handle.result)   # -> "hello"

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .checkers import (History, Operation, check_atomic_swsr,
                       check_linearizable, check_regularity,
                       find_new_old_inversions, find_tau_stab, is_atomic_swsr,
                       is_regular, stabilization_report)
from .registers import (BOT, Cluster, ClusterConfig, Epoch, EpochLabeling,
                        MWMRRegister, QuorumParams, SWMRRegister, WsnConfig,
                        build_mwmr, build_swmr, build_swsr_atomic,
                        build_swsr_regular)
from .faults import FaultTimeline
from .kvstore import (Pipeline, ShardedKVStore, StabilizingKVStore,
                      build_kv_store, build_sharded_kv_store)
from .runner import (CellResult, SweepResult, SweepSpec, run_sweep,
                     smoke_specs)
from .workloads import (KVScenarioResult, ScenarioResult, ScenarioSummary,
                        run_kv_scenario, run_mobile_byzantine_scenario,
                        run_mwmr_scenario, run_partition_scenario,
                        run_swsr_scenario)

__version__ = "1.0.0"

__all__ = [
    "BOT", "CellResult", "Cluster", "ClusterConfig", "Epoch", "EpochLabeling",
    "FaultTimeline",
    "History", "KVScenarioResult", "MWMRRegister", "Operation", "Pipeline",
    "QuorumParams", "SWMRRegister",
    "ScenarioResult", "ScenarioSummary", "ShardedKVStore",
    "StabilizingKVStore", "SweepResult", "SweepSpec",
    "WsnConfig", "__version__", "build_kv_store", "build_mwmr",
    "build_sharded_kv_store", "build_swmr",
    "build_swsr_atomic", "build_swsr_regular", "check_atomic_swsr",
    "check_linearizable", "check_regularity", "find_new_old_inversions",
    "find_tau_stab", "is_atomic_swsr", "is_regular",
    "run_kv_scenario", "run_mobile_byzantine_scenario", "run_mwmr_scenario",
    "run_partition_scenario",
    "run_swsr_scenario", "run_sweep", "smoke_specs", "stabilization_report",
]
