"""SWSR registers over **synchronous** links — Figure 5 / Appendix A.

Synchronous means each link connecting a client and a correct server is
timely: message transfer delays are bounded by a constant *known to the
processes*.  Clients then wait for acknowledgements from **all n** servers
or a timeout (lines 02.M / 11.M), and the thresholds drop to ``t + 1``
(lines 03.M / 12.M / 14.M), tolerating ``t < n/3`` instead of ``t < n/8``
(Theorem 2).

The actual protocol logic is shared with Figures 2/3 — the roles in
:mod:`~repro.registers.swsr_regular` and :mod:`~repro.registers.swsr_atomic`
switch behaviour on ``params.synchronous``.  This module provides the
correctly parameterised entry points, including the "similar extension" to
an atomic register the paper mentions at the end of Section 4.
"""

from __future__ import annotations

from typing import Any, Optional

from .base import QuorumParams
from .bounded_seq import WsnConfig
from .swsr_atomic import (AtomicReader, AtomicWriter,
                          install_servers as install_atomic_servers)
from .swsr_regular import (RegularReader, RegularWriter,
                           install_servers as install_regular_servers)


def sync_params(n: int, t: int, delay_bound: float,
                enforce_resilience: bool = True) -> QuorumParams:
    """Quorum parameters for the synchronous model (``n >= 3t + 1``)."""
    params = QuorumParams(n=n, t=t, synchronous=True,
                          delay_bound=delay_bound)
    if enforce_resilience:
        params.require_resilience()
    return params


class SyncRegularWriter(RegularWriter):
    """Figure 5 writer: ``write(v)`` with the all-n-or-timeout wait."""

    def __init__(self, pid, scheduler, trace, reg_id,
                 n: int, t: int, delay_bound: float,
                 enforce_resilience: bool = True):
        super().__init__(pid, scheduler, trace, reg_id,
                         sync_params(n, t, delay_bound, enforce_resilience))


class SyncRegularReader(RegularReader):
    """Figure 5 reader: ``read()`` with ``t + 1`` matching thresholds."""

    def __init__(self, pid, scheduler, trace, reg_id,
                 n: int, t: int, delay_bound: float,
                 enforce_resilience: bool = True):
        super().__init__(pid, scheduler, trace, reg_id,
                         sync_params(n, t, delay_bound, enforce_resilience))


class SyncAtomicWriter(AtomicWriter):
    """Synchronous-link practically atomic writer (Section 4, last remark)."""

    def __init__(self, pid, scheduler, trace, reg_id,
                 n: int, t: int, delay_bound: float,
                 config: Optional[WsnConfig] = None,
                 enforce_resilience: bool = True):
        super().__init__(pid, scheduler, trace, reg_id,
                         sync_params(n, t, delay_bound, enforce_resilience),
                         config)


class SyncAtomicReader(AtomicReader):
    """Synchronous-link practically atomic reader."""

    def __init__(self, pid, scheduler, trace, reg_id,
                 n: int, t: int, delay_bound: float,
                 config: Optional[WsnConfig] = None,
                 enforce_resilience: bool = True):
        super().__init__(pid, scheduler, trace, reg_id,
                         sync_params(n, t, delay_bound, enforce_resilience),
                         config)


# Servers are oblivious to the synchrony assumption: reuse as-is.
install_sync_regular_servers = install_regular_servers
install_sync_atomic_servers = install_atomic_servers
