"""Cluster builder: one-stop construction of simulated register systems.

A :class:`Cluster` owns the scheduler, trace, randomness, network and the
``n`` server processes of the paper's client/server architecture, plus the
(n, t) quorum arithmetic.  Register factories then attach clients and
server automatons:

>>> cluster = Cluster(ClusterConfig(n=9, t=1, seed=7))
>>> writer, reader = build_swsr_regular(cluster)
>>> done = writer.write("hello")
>>> cluster.run_ops([done])
>>> read = reader.read()
>>> cluster.run_ops([read])
>>> read.result
'hello'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..datalink.ss_broadcast import (DataLinkClientTransport,
                                     DirectClientTransport)
from ..sim.network import (AsyncDelay, DelayModel, FixedDelay, Network,
                           SyncDelay)
from ..sim.process import OperationHandle
from ..sim.random_source import RandomSource
from ..sim.scheduler import build_scheduler
from ..sim.trace import build_trace
from .base import QuorumParams, RegisterClientProcess, ServerProcess
from .bounded_seq import WsnConfig
from .epochs import EpochLabeling
from .mwmr import DEFAULT_SEQ_BOUND, MWMRProcess, MWMRRegister
from .swmr import SWMRRegister
from .swsr_atomic import AtomicReader, AtomicWriter
from .swsr_atomic import install_servers as install_atomic_servers
from .swsr_regular import RegularReader, RegularWriter
from .swsr_regular import install_servers as install_regular_servers


@dataclass
class ClusterConfig:
    """Everything needed to stand up a simulated storage cluster."""

    n: int = 9
    t: int = 1
    seed: int = 0
    #: synchronous links (Figure 5 / Appendix A) vs asynchronous (default).
    synchronous: bool = False
    #: known delay bound for the synchronous model.
    delay_bound: float = 1.0
    #: (lo, hi) of the asynchronous uniform delay distribution.
    async_delay: Tuple[float, float] = (0.1, 2.0)
    #: "direct" (fast, property-faithful) or "datalink" (footnote-3 packets).
    transport: str = "direct"
    datalink_cap: int = 2
    datalink_retry: float = 0.25
    #: refuse (n, t) outside the paper's resilience bound unless disabled
    #: (the bound-tightness experiments disable it deliberately).
    enforce_resilience: bool = True
    #: trace kinds to record; None records everything (tests), an empty set
    #: records nothing but still counts (benches).
    record_kinds: Optional[set] = None
    #: trace backend: "full" (record events, honouring ``record_kinds``),
    #: "counting" (per-kind counters only) or "null" (retain nothing —
    #: the fast path).  None keeps the historical behaviour: "full",
    #: filtered by ``record_kinds``.
    trace_backend: Optional[str] = None

    def build_trace(self):
        return build_trace(self.trace_backend or "full",
                           record_kinds=self.record_kinds)

    def delay_model(self) -> DelayModel:
        if self.synchronous:
            return SyncDelay(self.delay_bound)
        return AsyncDelay(*self.async_delay)


class Cluster:
    """The ``n`` servers, their network, and client plumbing."""

    def __init__(self, config: ClusterConfig,
                 delay_model: Optional[DelayModel] = None):
        self.config = config
        self.scheduler = build_scheduler()
        self.trace = config.build_trace()
        self.randomness = RandomSource(config.seed)
        self.network = Network(self.scheduler, self.randomness, self.trace,
                               default_delay=delay_model or config.delay_model())
        self.params = QuorumParams(
            n=config.n, t=config.t, synchronous=config.synchronous,
            delay_bound=config.delay_bound if config.synchronous else None)
        if config.enforce_resilience:
            self.params.require_resilience()
        self.servers: List[ServerProcess] = []
        self._server_index: Dict[str, ServerProcess] = {}
        for index in range(config.n):
            server = ServerProcess(f"s{index + 1}", self.scheduler, self.trace)
            self.network.register(server)
            self.servers.append(server)
            self._server_index[server.pid] = server
        self.clients: List[RegisterClientProcess] = []

    # -- accessors -----------------------------------------------------------
    @property
    def server_ids(self) -> List[str]:
        return [server.pid for server in self.servers]

    def server(self, pid: str) -> ServerProcess:
        try:
            return self._server_index[pid]
        except KeyError:
            raise KeyError(f"no server {pid!r}") from None

    # -- clients --------------------------------------------------------------
    def make_client(self, pid: str) -> RegisterClientProcess:
        """Create, register and transport-attach a plain client process."""
        return self.adopt_client(
            RegisterClientProcess(pid, self.scheduler, self.trace))

    def adopt_client(self, process: RegisterClientProcess) -> RegisterClientProcess:
        """Register a pre-built client (writer/reader/MWMR process)."""
        self.network.register(process)
        process.attach_transport(self._make_transport(process))
        self.clients.append(process)
        return process

    def _make_transport(self, process: RegisterClientProcess):
        quorum = self.params.n - self.params.t
        if self.config.transport == "direct":
            return DirectClientTransport(process, self.server_ids, quorum)
        if self.config.transport == "datalink":
            return DataLinkClientTransport(
                process, self._server_index, quorum, self.scheduler,
                self.randomness,
                cap=self.config.datalink_cap,
                retry_interval=self.config.datalink_retry,
                delay_model=FixedDelay(0.05))
        raise ValueError(f"unknown transport {self.config.transport!r}")

    # -- faults ------------------------------------------------------------------
    def make_byzantine(self, server_ids: Iterable[str], strategy_factory) -> None:
        """Install a Byzantine strategy on the given servers.

        ``strategy_factory(server)`` returns a strategy object (see
        ``repro.faults.byzantine``); passing ``None`` restores correctness.
        """
        for server_id in server_ids:
            server = self.server(server_id)
            strategy = strategy_factory(server) if strategy_factory else None
            server.strategy = strategy
            if strategy is not None and hasattr(strategy, "attach"):
                strategy.attach(server)
            if strategy is None:
                server.confirm_enabled = True

    @property
    def byzantine_ids(self) -> List[str]:
        return [server.pid for server in self.servers
                if server.strategy is not None]

    # -- running --------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.scheduler.run(until=until, max_events=max_events)

    def run_ops(self, handles: Sequence[OperationHandle],
                max_events: int = 2_000_000) -> None:
        """Run until every listed operation completed.

        Raises :class:`~repro.sim.errors.SimulationLimitReached` if one of
        them never terminates (the observable symptom of a violated
        resilience assumption).
        """
        self.scheduler.run_until(
            lambda: all(handle.done for handle in handles),
            max_events=max_events)

    @property
    def now(self) -> float:
        return self.scheduler.now


class ClusterGroup:
    """An ordered collection of *independent* clusters.

    Each member owns its own scheduler, trace, randomness and network —
    nothing is shared, so a fault installed on one cluster (a partition, a
    Byzantine strategy, a transient burst) cannot leak into another.  This
    is the substrate of the sharded KV store (``repro.kvstore.sharded``):
    one member per shard, failing independently.

    The group only aggregates and iterates; it never imposes a global
    clock.  Members advance independently (``run_all`` drives them one by
    one, in index order — deterministic because the members themselves
    are), and cross-cluster aggregate counters are plain sums.

    >>> group = ClusterGroup([ClusterConfig(n=9, t=1, seed=s)
    ...                       for s in (1, 2)])
    >>> len(group)
    2
    >>> group[0].config.seed, group[1].config.seed
    (1, 2)
    >>> group.events_processed
    0
    """

    def __init__(self, configs: Sequence[ClusterConfig]):
        if not configs:
            raise ValueError("need at least one cluster config")
        self.clusters: List[Cluster] = [Cluster(config)
                                        for config in configs]

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def __getitem__(self, index: int) -> Cluster:
        return self.clusters[index]

    def append(self, config: ClusterConfig) -> Cluster:
        """Grow the group by one freshly built member — the ``join`` of
        live resharding (``repro.kvstore.rebalance``).  The new cluster
        starts at local time 0 with its own scheduler/trace/network,
        exactly as if it had been in the constructor list; callers that
        need its clock aligned with a sibling advance it explicitly."""
        cluster = Cluster(config)
        self.clusters.append(cluster)
        return cluster

    # -- aggregate counters ------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return sum(cluster.network.messages_sent for cluster in self.clusters)

    @property
    def messages_dropped(self) -> int:
        return sum(cluster.network.messages_dropped
                   for cluster in self.clusters)

    @property
    def events_processed(self) -> int:
        return sum(cluster.scheduler.events_processed
                   for cluster in self.clusters)

    @property
    def now(self) -> float:
        """The latest local clock across members (they are independent
        simulations; there is no shared global time)."""
        return max(cluster.now for cluster in self.clusters)

    # -- running -----------------------------------------------------------
    def run_all(self, until: Optional[float] = None,
                max_events: Optional[int] = None) -> None:
        """Drive every member (index order) to ``until`` / budget."""
        for cluster in self.clusters:
            cluster.run(until=until, max_events=max_events)


# ----------------------------------------------------------------------
# register factories
# ----------------------------------------------------------------------
def build_swsr_regular(cluster: Cluster, reg_id: str = "reg",
                       initial: Any = None, writer_pid: str = "w",
                       reader_pid: str = "r") -> Tuple[RegularWriter,
                                                       RegularReader]:
    """Figure 2 (or Figure 5 when the cluster is synchronous)."""
    install_regular_servers(cluster.servers, reg_id, initial=initial)
    writer = RegularWriter(writer_pid, cluster.scheduler, cluster.trace,
                           reg_id, cluster.params)
    reader = RegularReader(reader_pid, cluster.scheduler, cluster.trace,
                           reg_id, cluster.params)
    cluster.adopt_client(writer)
    cluster.adopt_client(reader)
    return writer, reader


def build_swsr_atomic(cluster: Cluster, reg_id: str = "reg",
                      initial: Any = None, writer_pid: str = "w",
                      reader_pid: str = "r",
                      config: Optional[WsnConfig] = None
                      ) -> Tuple[AtomicWriter, AtomicReader]:
    """Figure 3 (practically stabilizing SWSR atomic register)."""
    config = config or WsnConfig()
    install_atomic_servers(cluster.servers, reg_id, initial=initial,
                           config=config)
    writer = AtomicWriter(writer_pid, cluster.scheduler, cluster.trace,
                          reg_id, cluster.params, config)
    reader = AtomicReader(reader_pid, cluster.scheduler, cluster.trace,
                          reg_id, cluster.params, config, initial=initial)
    cluster.adopt_client(writer)
    cluster.adopt_client(reader)
    return writer, reader


def build_swmr(cluster: Cluster, reader_pids: Sequence[str],
               reg_id: str = "reg", initial: Any = None,
               writer_pid: str = "w",
               config: Optional[WsnConfig] = None) -> SWMRRegister:
    """Section 5.1 (SWMR atomic register from per-reader SWSR copies)."""
    writer = cluster.make_client(writer_pid)
    readers = [cluster.make_client(pid) for pid in reader_pids]
    return SWMRRegister(reg_id, writer, readers, cluster.servers,
                        cluster.params, config=config, initial=initial)


def build_mwmr(cluster: Cluster, m: int, reg_id: str = "mwmr",
               seq_bound: int = DEFAULT_SEQ_BOUND,
               k: Optional[int] = None,
               wsn_config: Optional[WsnConfig] = None) -> MWMRRegister:
    """Figure 4 (MWMR atomic register; processes named ``p1..pm``)."""
    processes = []
    for index in range(m):
        process = MWMRProcess(f"p{index + 1}", cluster.scheduler,
                              cluster.trace)
        cluster.adopt_client(process)
        processes.append(process)
    labeling = EpochLabeling(k=k) if k is not None else None
    return MWMRRegister(reg_id, processes, cluster.servers, cluster.params,
                        labeling=labeling, seq_bound=seq_bound,
                        wsn_config=wsn_config)
