"""Practically stabilizing SWSR **atomic** register — Figure 3 of the paper.

Extension of the regular register: every written value is paired with a
bounded write sequence number ``wsn``; the reader keeps the highest pair
``(pwsn, pv)`` seen so far and trades an older quorum value for it (line
13M3), which eliminates new/old inversions as long as fewer than
*system-life-span* writes happen between two successive reads (Lemma 13).

Line numbering in comments follows Figure 3 (``Nx`` = new line, ``xyMz`` =
modified line ``xy``).

The server side is *identical* to Figure 2 (the stored value simply is a
pair now); we reuse :class:`~repro.registers.swsr_regular.RegularRegisterServer`
with a pair-shaped fuzzer.

Like the regular register, the roles also run in the synchronous model
(``params.synchronous=True``), giving the "similar extension" for
``n >= 3t + 1`` the paper mentions at the end of Section 4.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from ..sim.process import WaitCondition
from ..sim.scheduler import Scheduler
from ..sim.trace import Trace
from .base import (QuorumParams, RegisterClientProcess, ServerAutomaton,
                   ServerProcess, value_with_quorum)
from .bounded_seq import WsnConfig
from .messages import BOT, AckRead, AckWrite, NewHelpVal, Read, Write
from .swsr_regular import RegularRegisterServer, _RoleBase


def make_pair_fuzz(config: WsnConfig):
    """Domain-respecting fuzzer for ``(wsn, value)`` pairs (and ⊥)."""

    def fuzz(rng) -> Any:
        if rng.random() < 0.15:
            return BOT
        wsn = rng.randrange(config.modulus)
        return (wsn, f"corrupt#{rng.randrange(1_000_000)}")

    return fuzz


def is_pair(value: Any) -> bool:
    """Shape check for a ``(wsn, v)`` pair (guards against raw garbage)."""
    return isinstance(value, tuple) and len(value) == 2


class AtomicRegisterServer(RegularRegisterServer):
    """Server automaton of Figure 3 — lines 19-23, values now pairs."""

    def __init__(self, server: ServerProcess, reg_id: str,
                 initial: Any = None, config: Optional[WsnConfig] = None):
        config = config or WsnConfig()
        super().__init__(server, reg_id, initial=initial,
                         value_fuzz=make_pair_fuzz(config))


class AtomicWriterRole(_RoleBase):
    """``operation prac_at_write(v)`` — lines N1, 01M, 02-06 of Figure 3.

    ``wsn`` is writer-local corruptible state.
    """

    def __init__(self, host: RegisterClientProcess, reg_id: str,
                 params: QuorumParams, config: Optional[WsnConfig] = None):
        super().__init__(host, reg_id, params)
        self.config = config or WsnConfig()
        self.wsn = 0
        host.register_corruptible_var(
            f"{reg_id}.wsn",
            getter=lambda: self.wsn,
            setter=lambda v: setattr(self, "wsn", v),
            fuzz=lambda rng: rng.randrange(self.config.modulus))

    def write_gen(self, value: Any) -> Generator[WaitCondition, None, None]:
        self.wsn = self.config.next(self.wsn)                        # line N1
        pair = (self.wsn, value)
        started_at = self.host.scheduler.now
        phase = yield from self.host.ss_broadcast(
            Write(self.reg_id, pair))                                # line 01M
        yield from self._await_acks(phase, started_at)               # line 02
        rows = self._collect(phase, AckWrite, ("helping_val",))
        helping_vals = [row[0] for row in rows]
        self.host.retire_phase(phase)
        agreed_help = value_with_quorum(
            helping_vals, self.params.help_quorum, exclude_bot=True)
        if agreed_help is None:                                      # line 03
            help_phase = yield from self.host.ss_broadcast(
                NewHelpVal(self.reg_id, pair))                       # line 04M
            self.host.retire_phase(help_phase)
        return None                                                  # line 06


class AtomicReaderRole(_RoleBase):
    """``operation prac_at_read()`` — lines N2-N7 and 07-18 of Figure 3.

    ``(pwsn, pv)`` is reader-local corruptible state: the last
    (sequence-number, value) pair returned, used to prevent new/old
    inversions (lines 13M2-13M4).
    """

    def __init__(self, host: RegisterClientProcess, reg_id: str,
                 params: QuorumParams, config: Optional[WsnConfig] = None,
                 initial: Any = None):
        super().__init__(host, reg_id, params)
        self.config = config or WsnConfig()
        # (pwsn, pv) coherent with the servers' clean initial state
        # (0, initial); an arbitrary starting configuration overwrites both.
        self.pwsn = 0
        self.pv: Any = initial
        host.register_corruptible_var(
            f"{reg_id}.pwsn",
            getter=lambda: self.pwsn,
            setter=lambda v: setattr(self, "pwsn", v),
            fuzz=lambda rng: rng.randrange(self.config.modulus))
        host.register_corruptible_var(
            f"{reg_id}.pv",
            getter=lambda: self.pv,
            setter=lambda v: setattr(self, "pv", v),
            fuzz=lambda rng: f"corrupt#{rng.randrange(1_000_000)}")

    # -- helpers -----------------------------------------------------------
    def _quorum_pair(self, rows, column: int,
                     exclude_bot: bool) -> Optional[Tuple[int, Any]]:
        values = [row[column] for row in rows]
        agreed = value_with_quorum(values, self.params.value_quorum,
                                   exclude_bot=exclude_bot)
        if agreed is not None and is_pair(agreed) and \
                self.config.in_domain(agreed[0]):
            return agreed
        return None

    def _sanity_check(self) -> Generator[WaitCondition, None, None]:
        """Lines N2-N7: refresh a corrupted ``(pwsn, pv)`` from the servers."""
        started_at = self.host.scheduler.now
        phase = yield from self.host.ss_broadcast(
            Read(self.reg_id, False))                                # line N2
        yield from self._await_acks(phase, started_at)               # line N3
        rows = self._collect(phase, AckRead, ("last_val", "helping_val"))
        self.host.retire_phase(phase)
        agreed = self._quorum_pair(rows, column=1, exclude_bot=True)
        if agreed is not None:                                       # line N4
            wsn, value = agreed                                      # line N5
            if not self.config.in_domain(self.pwsn) or \
                    self.config.gt(self.pwsn, wsn):                  # line N6
                self.pwsn = wsn
                self.pv = value
        return None                                                  # line N7

    def read_gen(self) -> Generator[WaitCondition, None, Any]:
        yield from self._sanity_check()                              # N2-N7
        new_read = True                                              # line 07
        while True:                                                  # line 08
            started_at = self.host.scheduler.now
            phase = yield from self.host.ss_broadcast(
                Read(self.reg_id, new_read))                         # line 09
            new_read = False                                         # line 10
            yield from self._await_acks(phase, started_at)           # line 11
            rows = self._collect(phase, AckRead, ("last_val", "helping_val"))
            self.host.retire_phase(phase)

            agreed_last = self._quorum_pair(rows, column=0, exclude_bot=False)
            if agreed_last is not None:                              # line 12
                wsn, value = agreed_last                             # line 13M1
                if self.config.gt(wsn, self.pwsn) or \
                        not self.config.in_domain(self.pwsn):        # line 13M2
                    self.pwsn = wsn
                    self.pv = value
                    return value
                return self.pv                                       # line 13M3

            agreed_help = self._quorum_pair(rows, column=1, exclude_bot=True)
            if agreed_help is not None:                              # line 14
                wsn, value = agreed_help                             # line 15M
                self.pwsn = wsn
                self.pv = value
                return value
            # neither predicate held: re-enter the loop body (line 18)


class AtomicWriter(RegisterClientProcess):
    """Stand-alone writer process for the practically atomic register."""

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace,
                 reg_id: str, params: QuorumParams,
                 config: Optional[WsnConfig] = None):
        super().__init__(pid, scheduler, trace)
        self.role = AtomicWriterRole(self, reg_id, params, config)

    def write(self, value: Any):
        handle = self.start_operation("prac_at_write",
                                      self.role.write_gen(value))
        handle.meta.update(kind="write", value=value,
                           register=self.role.reg_id)
        return handle


class AtomicReader(RegisterClientProcess):
    """Stand-alone reader process for the practically atomic register."""

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace,
                 reg_id: str, params: QuorumParams,
                 config: Optional[WsnConfig] = None, initial: Any = None):
        super().__init__(pid, scheduler, trace)
        self.role = AtomicReaderRole(self, reg_id, params, config,
                                     initial=initial)

    def read(self):
        handle = self.start_operation("prac_at_read", self.role.read_gen())
        handle.meta.update(kind="read", register=self.role.reg_id)
        return handle


def install_servers(servers, reg_id: str, initial: Any = None,
                    config: Optional[WsnConfig] = None):
    """Attach an atomic-register automaton for ``reg_id`` to every server.

    ``initial`` is the *value* part; servers start at ``(0, initial)`` so a
    clean (uncorrupted) run has a well-defined pre-write state.
    """
    return [server.add_automaton(
        AtomicRegisterServer(server, reg_id, initial=(0, initial),
                             config=config))
        for server in servers]
