"""Bounded epoch labels — the labeling scheme of Alon et al. [1] (§5.2).

Let ``k > 1`` and ``K = k^2 + 1``, ``X = {1, ..., K}``.  An *epoch* is a
pair ``(s, A)`` with ``s ∈ X`` and ``A ⊆ X`` of size ``k``.  Comparison:

    (si, Ai) ≻ (sj, Aj)  iff  sj ∈ Ai and si ∉ Aj

which is antisymmetric but **partial** — two epochs may be incomparable
(that is the point: it cannot be wrapped around by transient corruption).
``next_epoch`` takes up to ``k`` epochs and produces one greater than all
of them, which is what lets the MWMR construction escape an arbitrary
corrupted configuration (Figure 4, lines 02-03 and 10-11).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence


@dataclass(frozen=True, slots=True)
class Epoch:
    """A bounded label ``(s, A)``; hashable so it can sit in quorum counts."""

    s: int
    A: FrozenSet[int]

    def __repr__(self) -> str:
        members = ",".join(str(x) for x in sorted(self.A))
        return f"Epoch({self.s}|{{{members}}})"


class EpochLabeling:
    """The bounded labeling scheme with parameter ``k``.

    ``k`` must be at least the number of labels ever passed to
    :meth:`next_epoch` at once — for the MWMR construction that is the
    number of processes ``m``.
    """

    def __init__(self, k: int):
        if k < 2:
            raise ValueError("k must be > 1")
        self.k = k
        self.K = k * k + 1

    # -- domain -------------------------------------------------------------
    def is_valid(self, epoch) -> bool:
        """Domain check (corrupted labels are still *some* label)."""
        return (isinstance(epoch, Epoch)
                and isinstance(epoch.s, int)
                and 1 <= epoch.s <= self.K
                and isinstance(epoch.A, frozenset)
                and len(epoch.A) == self.k
                and all(isinstance(x, int) and 1 <= x <= self.K
                        for x in epoch.A))

    def initial(self) -> Epoch:
        """A canonical starting label for clean configurations."""
        return Epoch(1, frozenset(range(2, self.k + 2)))

    def random_epoch(self, rng: random.Random) -> Epoch:
        """An arbitrary valid label (transient-failure fuzzing)."""
        s = rng.randrange(1, self.K + 1)
        members = rng.sample(range(1, self.K + 1), self.k)
        return Epoch(s, frozenset(members))

    # -- order ----------------------------------------------------------------
    def greater(self, left: Epoch, right: Epoch) -> bool:
        """``left ≻ right``  ≝  ``right.s ∈ left.A ∧ left.s ∉ right.A``."""
        return (right.s in left.A) and (left.s not in right.A)

    def geq(self, left: Epoch, right: Epoch) -> bool:
        """``left ⪰ right``  ≝  ``left ≻ right ∨ left = right``."""
        return left == right or self.greater(left, right)

    def max_epoch(self, epochs: Sequence[Epoch]) -> Optional[Epoch]:
        """The epoch ⪰ every other one, or ``None`` if no such epoch exists.

        (The paper's ``max_epoch()`` predicate plus the witness.)
        """
        for candidate in epochs:
            if all(self.geq(candidate, other) for other in epochs):
                return candidate
        return None

    # -- generation -------------------------------------------------------------
    def next_epoch(self, epochs: Iterable[Epoch]) -> Epoch:
        """An epoch ``≻`` every input epoch (at most ``k`` of them).

        * ``s`` is an element of ``X`` outside ``A1 ∪ ... ∪ Ak`` (exists
          because the union has at most ``k^2`` elements and ``|X| = k^2+1``);
        * ``A`` has size exactly ``k`` and contains every input ``s_i``
          (padded with arbitrary — here: smallest unused — elements).

        Choices are made deterministically (smallest candidates) so runs
        are reproducible.
        """
        epoch_list = list(epochs)
        if len(epoch_list) > self.k:
            raise ValueError(
                f"next_epoch takes at most k={self.k} epochs, got {len(epoch_list)}")
        union: set = set()
        for epoch in epoch_list:
            union |= set(epoch.A)
        s = next(x for x in range(1, self.K + 1) if x not in union)
        # A must contain every input s_i (possibly including s itself: the
        # scheme allows s ∈ A, and dropping an s_i equal to s would break
        # domination over that input).
        members = {epoch.s for epoch in epoch_list}
        padding = (x for x in range(1, self.K + 1) if x not in members)
        members_list: List[int] = sorted(members)
        while len(members_list) < self.k:
            members_list.append(next(padding))
        return Epoch(s, frozenset(members_list[:self.k]))
