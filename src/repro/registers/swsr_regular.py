"""Stabilizing SWSR **regular** register — Figure 2 of the paper.

The code is laid out to mirror the pseudo-code line by line (line numbers in
comments refer to Figure 2).  The same roles also implement the synchronous
variant of Figure 5: when :class:`~repro.registers.base.QuorumParams` is
constructed with ``synchronous=True`` the acknowledgement wait becomes
"all ``n`` servers or a timeout" and the thresholds drop from
``(2t+1, 4t+1)`` to ``(t+1, t+1)``, exactly the lines suffixed ``.M`` in
Figure 5 (see :mod:`repro.registers.swsr_sync`).

Roles vs processes
------------------
The protocol logic lives in *role* objects (:class:`RegularWriterRole`,
:class:`RegularReaderRole`) bound to a hosting client process, so the SWMR
and MWMR constructions can host many roles on one process.  Stand-alone
:class:`RegularWriter` / :class:`RegularReader` processes wrap a single
role for the plain SWSR usage.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ..datalink.packets import SSReply
from ..sim.process import AnyOf, Deadline, Predicate, WaitCondition
from ..sim.scheduler import Scheduler
from ..sim.trace import Trace
from .base import (QuorumParams, RegisterClientProcess, ServerAutomaton,
                   ServerProcess, first_k, value_with_quorum)
from .messages import BOT, AckRead, AckWrite, NewHelpVal, Read, Write


def default_value_fuzz(rng) -> Any:
    """Domain-respecting arbitrary replacement for a stored value.

    Transient failures replace a variable with *some* value of its domain
    (standard self-stabilization convention); occasionally ⊥, which is legal
    for helping values.
    """
    roll = rng.random()
    if roll < 0.15:
        return BOT
    return f"corrupt#{rng.randrange(1_000_000)}"


class RegularRegisterServer(ServerAutomaton):
    """Server automaton: lines 19-23 of Figure 2.

    ``last_val`` and ``helping_val`` are the two corruptible local
    variables the paper describes; they are registered with the hosting
    process so the transient-fault injector can overwrite them.
    """

    def __init__(self, server: ServerProcess, reg_id: str,
                 initial: Any = None, value_fuzz=default_value_fuzz):
        super().__init__(server, reg_id)
        self.last_val: Any = initial
        self.helping_val: Any = BOT
        server.register_corruptible_var(
            f"{reg_id}.last_val",
            getter=lambda: self.last_val,
            setter=lambda v: setattr(self, "last_val", v),
            fuzz=value_fuzz)
        server.register_corruptible_var(
            f"{reg_id}.helping_val",
            getter=lambda: self.helping_val,
            setter=lambda v: setattr(self, "helping_val", v),
            fuzz=value_fuzz)

    def on_deliver(self, client: str, payload: Any, phase: int) -> None:
        # replies dispatch straight to the fused per-link closure
        # (``reply``/``send`` inlined: the hottest automaton in the
        # throughput benches)
        server = self.server
        if isinstance(payload, Write):
            self.last_val = payload.value                            # line 19
            reply = SSReply(
                phase, AckWrite(self.reg_id, self.helping_val))      # line 20
        elif isinstance(payload, NewHelpVal):
            self.helping_val = payload.value                         # line 21
            return
        elif isinstance(payload, Read):
            if payload.new_read:
                self.helping_val = BOT                               # line 22
            reply = SSReply(
                phase, AckRead(self.reg_id, self.last_val,
                               self.helping_val))                    # line 23
        else:
            return
        fast = server._fast_out.get(client)
        if fast is not None:
            fast(reply)
        else:
            server.network._send_slow(server.pid, client, reply)


class _RoleBase:
    """Shared machinery of writer/reader roles (ack waits, field extraction)."""

    def __init__(self, host: RegisterClientProcess, reg_id: str,
                 params: QuorumParams):
        self.host = host
        self.reg_id = reg_id
        self.params = params

    def _timeout(self) -> float:
        """Timeout covering a round trip to every correct server (§3.3).

        Only meaningful for the synchronous model, where the delay bound is
        known to the processes.
        """
        bound = self.params.delay_bound
        if bound is None:
            raise ValueError("synchronous mode requires a known delay bound")
        return 2.0 * bound * 1.25

    def _await_acks(self, phase: int,
                    started_at: float) -> Generator[WaitCondition, None, None]:
        """Line 02 / 11 (async) or 02.M / 11.M (sync: all n or timeout)."""
        if self.params.synchronous:
            deadline = Deadline(started_at + self._timeout())
            yield AnyOf(self.host.await_replies(phase, self.params.ack_quorum),
                        deadline)
        else:
            yield self.host.await_replies(phase, self.params.ack_quorum)

    def _collect(self, phase: int, cls, fields: Tuple[str, ...]) -> List[Tuple]:
        """First ``ack_quorum`` replies; non-conforming (Byzantine garbage)

        replies contribute a unique token so they can never help a quorum.
        """
        taken = first_k(self.host.replies(phase), self.params.ack_quorum)
        rows = []
        for sender, payload in taken:
            if isinstance(payload, cls) and payload.reg_id == self.reg_id:
                rows.append(tuple(getattr(payload, f) for f in fields))
            else:
                rows.append(tuple(("garbage", sender, f) for f in fields))
        return rows


class RegularWriterRole(_RoleBase):
    """``operation write(v)`` — lines 01-06 of Figure 2."""

    def write_gen(self, value: Any) -> Generator[WaitCondition, None, None]:
        started_at = self.host.scheduler.now
        phase = yield from self.host.ss_broadcast(
            Write(self.reg_id, value))                               # line 01
        yield from self._await_acks(phase, started_at)               # line 02
        rows = self._collect(phase, AckWrite, ("helping_val",))
        helping_vals = [row[0] for row in rows]
        self.host.retire_phase(phase)
        agreed_help = value_with_quorum(
            helping_vals, self.params.help_quorum, exclude_bot=True)
        if agreed_help is None:                                      # line 03
            help_phase = yield from self.host.ss_broadcast(
                NewHelpVal(self.reg_id, value))                      # line 04
            self.host.retire_phase(help_phase)
        return None                                                  # line 06


class RegularReaderRole(_RoleBase):
    """``operation read()`` — lines 07-18 of Figure 2."""

    def read_gen(self) -> Generator[WaitCondition, None, Any]:
        new_read = True                                              # line 07
        while True:                                                  # line 08
            started_at = self.host.scheduler.now
            phase = yield from self.host.ss_broadcast(
                Read(self.reg_id, new_read))                         # line 09
            new_read = False                                         # line 10
            yield from self._await_acks(phase, started_at)           # line 11
            rows = self._collect(phase, AckRead, ("last_val", "helping_val"))
            self.host.retire_phase(phase)
            last_vals = [row[0] for row in rows]
            value = value_with_quorum(last_vals, self.params.value_quorum)
            if value is not None:                                    # line 12
                return value                                         # line 13
            helping_vals = [row[1] for row in rows]
            help_value = value_with_quorum(
                helping_vals, self.params.value_quorum, exclude_bot=True)
            if help_value is not None:                               # line 14
                return help_value                                    # line 15
            # neither predicate held: re-enter the loop body (line 18)


class RegularWriter(RegisterClientProcess):
    """Stand-alone writer process ``p_w`` hosting one writer role."""

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace,
                 reg_id: str, params: QuorumParams):
        super().__init__(pid, scheduler, trace)
        self.role = RegularWriterRole(self, reg_id, params)

    def write(self, value: Any):
        """Invoke ``REG.write(value)``; returns an operation handle."""
        handle = self.start_operation("write", self.role.write_gen(value))
        handle.meta.update(kind="write", value=value,
                           register=self.role.reg_id)
        return handle


class RegularReader(RegisterClientProcess):
    """Stand-alone reader process ``p_r`` hosting one reader role."""

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace,
                 reg_id: str, params: QuorumParams):
        super().__init__(pid, scheduler, trace)
        self.role = RegularReaderRole(self, reg_id, params)

    def read(self):
        """Invoke ``REG.read()``; returns an operation handle."""
        handle = self.start_operation("read", self.role.read_gen())
        handle.meta.update(kind="read", register=self.role.reg_id)
        return handle


def install_servers(servers: List[ServerProcess], reg_id: str,
                    initial: Any = None) -> List[RegularRegisterServer]:
    """Attach a regular-register automaton for ``reg_id`` to every server."""
    return [server.add_automaton(
        RegularRegisterServer(server, reg_id, initial=initial))
        for server in servers]
