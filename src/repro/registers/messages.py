"""Algorithm-level messages of the register protocols (Figures 2, 3, 5).

Every message carries the ``reg_id`` of the register instance it concerns,
which lets one server process host many register instances (used by the
SWMR construction's per-reader copies and by the KV store).

``BOT`` is the distinguished "no helping value" marker the paper writes
as ⊥.  It is a singleton so corrupted values can never be accidentally
equal to it unless the fuzzer deliberately injects it (which it may:
⊥ is a legal corrupted value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class _Bottom:
    """Singleton ⊥ marker."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):  # keep singleton identity across copy/pickle
        return (_Bottom, ())


BOT = _Bottom()


@dataclass(frozen=True, slots=True)
class Write:
    """WRITE(v) — line 01 of Figure 2 / 01M of Figure 3.

    For the atomic register, ``value`` is the pair ``(wsn, v)``.
    """

    reg_id: str
    value: Any


@dataclass(frozen=True, slots=True)
class AckWrite:
    """ACK_WRITE(helping_val) — line 20."""

    reg_id: str
    helping_val: Any


@dataclass(frozen=True, slots=True)
class NewHelpVal:
    """NEW_HELP_VAL(v) — line 04."""

    reg_id: str
    value: Any


@dataclass(frozen=True, slots=True)
class Read:
    """READ(new_read) — line 09 (and N2 of Figure 3)."""

    reg_id: str
    new_read: bool


@dataclass(frozen=True, slots=True)
class AckRead:
    """ACK_READ(last_val, helping_val) — line 23."""

    reg_id: str
    last_val: Any
    helping_val: Any
