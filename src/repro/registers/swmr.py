"""Stabilizing SWMR atomic register — Section 5.1 of the paper.

*"The technique to obtain a SWMR atomic register from SWSR atomic registers
is a classical one [13, 15].  The writer interacts with each reader,
writing the same value to all readers, the servers maintaining variables
for each reader."*

Concretely: for a base register ``X`` with readers ``r1..rm``, every server
hosts one SWSR atomic automaton per reader (register ids ``X/r1 ... X/rm``),
the writer runs one SWSR writer role per reader and a ``swmr_write(v)``
pushes ``v`` through *all* copies concurrently (completing only when every
copy write finished), and reader ``rj`` reads its own copy ``X/rj``.

The paper asserts atomicity follows because each copy is atomic and every
write goes to all copies; the well-known caveat (reads by *different*
readers overlapping a write may still order differently) is inherited
faithfully and measured in EXPERIMENTS.md (experiment T4a notes).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..sim.process import WaitCondition, join_all
from .base import QuorumParams, RegisterClientProcess, ServerProcess
from .bounded_seq import WsnConfig
from .swsr_atomic import (AtomicReaderRole, AtomicRegisterServer,
                          AtomicWriterRole)


def copy_reg_id(base_reg_id: str, reader_pid: str) -> str:
    """Register id of reader ``reader_pid``'s SWSR copy of ``base_reg_id``."""
    return f"{base_reg_id}/{reader_pid}"


def install_swmr_servers(servers: List[ServerProcess], base_reg_id: str,
                         reader_pids: List[str], initial: Any = None,
                         config: Optional[WsnConfig] = None) -> None:
    """Attach one SWSR atomic automaton per reader to every server."""
    for reader_pid in reader_pids:
        reg_id = copy_reg_id(base_reg_id, reader_pid)
        for server in servers:
            server.add_automaton(
                AtomicRegisterServer(server, reg_id, initial=(0, initial),
                                     config=config))


class SWMRWriterRole:
    """``swmr_write(v)``: write ``v`` to every reader's copy, concurrently."""

    def __init__(self, host: RegisterClientProcess, base_reg_id: str,
                 reader_pids: List[str], params: QuorumParams,
                 config: Optional[WsnConfig] = None):
        self.host = host
        self.base_reg_id = base_reg_id
        self.copies: Dict[str, AtomicWriterRole] = {
            reader_pid: AtomicWriterRole(
                host, copy_reg_id(base_reg_id, reader_pid), params, config)
            for reader_pid in reader_pids
        }

    def write_gen(self, value: Any) -> Generator[WaitCondition, None, None]:
        yield from join_all(
            *(copy.write_gen(value) for copy in self.copies.values()))
        return None


class SWMRReaderRole:
    """``swmr_read()`` for one reader: an SWSR read of its own copy."""

    def __init__(self, host: RegisterClientProcess, base_reg_id: str,
                 params: QuorumParams, config: Optional[WsnConfig] = None,
                 initial: Any = None):
        self.host = host
        self.base_reg_id = base_reg_id
        self.inner = AtomicReaderRole(
            host, copy_reg_id(base_reg_id, host.pid), params, config,
            initial=initial)

    def read_gen(self) -> Generator[WaitCondition, None, Any]:
        value = yield from self.inner.read_gen()
        return value


class SWMRRegister:
    """Facade tying together the writer role, reader roles and servers.

    ``writer`` and each process in ``readers`` must be
    :class:`~repro.registers.base.RegisterClientProcess` instances already
    attached to the cluster's network and transport.
    """

    def __init__(self, base_reg_id: str, writer: RegisterClientProcess,
                 readers: List[RegisterClientProcess],
                 servers: List[ServerProcess], params: QuorumParams,
                 config: Optional[WsnConfig] = None, initial: Any = None):
        self.base_reg_id = base_reg_id
        self.params = params
        self.writer = writer
        self.readers = {reader.pid: reader for reader in readers}
        reader_pids = [reader.pid for reader in readers]
        install_swmr_servers(servers, base_reg_id, reader_pids,
                             initial=initial, config=config)
        self.writer_role = SWMRWriterRole(writer, base_reg_id, reader_pids,
                                          params, config)
        self.reader_roles: Dict[str, SWMRReaderRole] = {
            reader.pid: SWMRReaderRole(reader, base_reg_id, params, config,
                                       initial=initial)
            for reader in readers
        }

    # -- generator access (used by the MWMR construction) ---------------------
    def write_gen(self, value: Any) -> Generator[WaitCondition, None, None]:
        return self.writer_role.write_gen(value)

    def read_gen(self, reader_pid: str) -> Generator[WaitCondition, None, Any]:
        return self.reader_roles[reader_pid].read_gen()

    # -- operation API ---------------------------------------------------------
    def write(self, value: Any):
        """``swmr_write(v)`` as a tracked operation on the writer process."""
        handle = self.writer.start_operation("swmr_write",
                                             self.write_gen(value))
        handle.meta.update(kind="write", value=value,
                           register=self.base_reg_id)
        return handle

    def read(self, reader_pid: str):
        """``swmr_read()`` as a tracked operation on reader ``reader_pid``."""
        reader = self.readers[reader_pid]
        handle = reader.start_operation("swmr_read", self.read_gen(reader_pid))
        handle.meta.update(kind="read", register=self.base_reg_id)
        return handle
