"""The paper's register constructions (Figures 2-5, Sections 3-5)."""

from .base import (QuorumParams, RegisterClientProcess, ServerAutomaton,
                   ServerProcess, first_k, value_with_quorum)
from .bounded_seq import (DEFAULT_MODULUS, WsnConfig, cd_geq, cd_gt,
                          clockwise_distance, next_wsn)
from .epochs import Epoch, EpochLabeling
from .messages import BOT, AckRead, AckWrite, NewHelpVal, Read, Write
from .mwmr import (DEFAULT_SEQ_BOUND, MWMRProcess, MWMRRegister, MWMRRole,
                   is_valid_triple)
from .swmr import SWMRRegister, copy_reg_id, install_swmr_servers
from .swsr_atomic import (AtomicReader, AtomicReaderRole,
                          AtomicRegisterServer, AtomicWriter,
                          AtomicWriterRole)
from .swsr_regular import (RegularReader, RegularReaderRole,
                           RegularRegisterServer, RegularWriter,
                           RegularWriterRole)
from .swsr_sync import (SyncAtomicReader, SyncAtomicWriter,
                        SyncRegularReader, SyncRegularWriter, sync_params)
from .system import (Cluster, ClusterConfig, build_mwmr, build_swmr,
                     build_swsr_atomic, build_swsr_regular)

__all__ = [
    "AckRead", "AckWrite", "AtomicReader", "AtomicReaderRole",
    "AtomicRegisterServer", "AtomicWriter", "AtomicWriterRole", "BOT",
    "Cluster", "ClusterConfig", "DEFAULT_MODULUS", "DEFAULT_SEQ_BOUND",
    "Epoch", "EpochLabeling", "MWMRProcess", "MWMRRegister", "MWMRRole",
    "NewHelpVal", "QuorumParams", "Read", "RegisterClientProcess",
    "RegularReader", "RegularReaderRole", "RegularRegisterServer",
    "RegularWriter", "RegularWriterRole", "SWMRRegister", "ServerAutomaton",
    "ServerProcess", "SyncAtomicReader", "SyncAtomicWriter",
    "SyncRegularReader", "SyncRegularWriter", "Write", "WsnConfig",
    "build_mwmr", "build_swmr", "build_swsr_atomic", "build_swsr_regular",
    "cd_geq", "cd_gt", "clockwise_distance", "copy_reg_id", "first_k",
    "install_swmr_servers", "is_valid_triple", "next_wsn", "sync_params",
    "value_with_quorum",
]
