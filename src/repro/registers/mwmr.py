"""Stabilizing MWMR atomic register — Figure 4 of the paper.

Every process ``p_i`` (``1 <= i <= m``) is both a reader and a writer.  The
construction uses one SWMR atomic register ``REG[i]`` per process (written
by ``p_i``, read by all) holding triples ``(v, epoch, seq)``:

* ``mwmr_write(v)`` (lines 01-08): read all ``REG[1..m]``; if there is no
  greatest epoch, or the greatest epoch's sequence numbers are exhausted,
  start the *next epoch* (bounded labeling of [1]); then write ``v`` with
  the greatest epoch and ``seqmax + 1``.

* ``mwmr_read()`` (lines 09-16): same scan and renewal; return the value of
  the entry with the greatest epoch and the highest sequence number,
  minimal process index breaking ties (line 15).

Entries that do not parse as a valid triple (arbitrary corrupted SWSR
content read before stabilization) are treated as epoch-less: they can
never be the maximum and their presence alone does not force renewal —
renewal triggers exactly on the paper's line-02/10 predicate evaluated over
the valid entries.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from ..sim.process import WaitCondition, join_all
from .base import QuorumParams, RegisterClientProcess, ServerProcess
from .bounded_seq import WsnConfig
from .epochs import Epoch, EpochLabeling
from .swmr import SWMRRegister

#: The paper's sequence-number bound inside one epoch (line 02: ``seq >= 2^64``).
DEFAULT_SEQ_BOUND = 2 ** 64


def is_valid_triple(entry: Any, labeling: EpochLabeling,
                    seq_bound: int) -> bool:
    """Shape/domain check of a ``(v, epoch, seq)`` SWMR register value."""
    return (isinstance(entry, tuple) and len(entry) == 3
            and labeling.is_valid(entry[1])
            and isinstance(entry[2], int) and 0 <= entry[2] <= seq_bound)


class MWMRRole:
    """The ``mwmr_write`` / ``mwmr_read`` automaton of process ``p_i``."""

    def __init__(self, host: RegisterClientProcess, index: int,
                 registers: Sequence[SWMRRegister],
                 labeling: EpochLabeling, seq_bound: int = DEFAULT_SEQ_BOUND):
        self.host = host
        self.index = index
        self.registers = list(registers)
        self.labeling = labeling
        self.seq_bound = seq_bound

    # -- helpers ------------------------------------------------------------
    def _scan_gen(self) -> Generator[WaitCondition, None, List[Any]]:
        """Lines 01 / 09: read all ``REG[1..m]`` (concurrently)."""
        entries = yield from join_all(
            *(register.read_gen(self.host.pid) for register in self.registers))
        return list(entries)

    def _valid(self, entry: Any) -> bool:
        return is_valid_triple(entry, self.labeling, self.seq_bound)

    def _max_epoch(self, entries: List[Any]) -> Optional[Epoch]:
        epochs = [entry[1] for entry in entries if self._valid(entry)]
        if not epochs:
            return None
        return self.labeling.max_epoch(epochs)

    def _needs_new_epoch(self, entries: List[Any],
                         max_epoch: Optional[Epoch]) -> bool:
        """The renewal predicate of lines 02 / 10."""
        if max_epoch is None:
            return True
        return any(self._valid(entry) and entry[1] == max_epoch
                   and entry[2] >= self.seq_bound
                   for entry in entries)

    def _next_epoch(self, entries: List[Any]) -> Epoch:
        seen: dict = {}
        for entry in entries:
            if self._valid(entry):
                seen.setdefault(entry[1], None)
        return self.labeling.next_epoch(list(seen))

    def _winners(self, entries: List[Any],
                 max_epoch: Epoch) -> Tuple[List[int], int]:
        """Lines 05-06 / 13-14: indexes holding the max epoch, and seqmax."""
        member_indexes = [j for j, entry in enumerate(entries)
                          if self._valid(entry) and entry[1] == max_epoch]
        seqmax = max(entries[j][2] for j in member_indexes)
        return member_indexes, seqmax

    # -- operations -------------------------------------------------------------
    def write_gen(self, value: Any) -> Generator[WaitCondition, None, None]:
        entries = yield from self._scan_gen()                        # line 01
        max_epoch = self._max_epoch(entries)
        if self._needs_new_epoch(entries, max_epoch):                # line 02
            new_epoch = self._next_epoch(entries)
            entries[self.index] = (value, new_epoch, 0)              # line 03
            max_epoch = self._max_epoch(entries)
        member_indexes, seqmax = self._winners(entries, max_epoch)   # lines 05-06
        yield from self.registers[self.index].write_gen(
            (value, max_epoch, seqmax + 1))                          # line 07
        return None                                                  # line 08

    def read_gen(self) -> Generator[WaitCondition, None, Any]:
        entries = yield from self._scan_gen()                        # line 09
        max_epoch = self._max_epoch(entries)
        if self._needs_new_epoch(entries, max_epoch):                # line 10
            new_epoch = self._next_epoch(entries)
            own = entries[self.index]
            own_value = own[0] if self._valid(own) else None
            entries[self.index] = (own_value, new_epoch, 0)          # line 11
            yield from self.registers[self.index].write_gen(
                (own_value, new_epoch, 0))
            max_epoch = self._max_epoch(entries)
        member_indexes, seqmax = self._winners(entries, max_epoch)   # lines 13-14
        chosen = min(j for j in member_indexes
                     if entries[j][2] == seqmax)                     # line 15
        return entries[chosen][0]                                    # line 16


class MWMRProcess(RegisterClientProcess):
    """A process of the MWMR system: both a reader and a writer (§5.2)."""

    def __init__(self, pid, scheduler, trace):
        super().__init__(pid, scheduler, trace)
        self.mwmr_role: Optional[MWMRRole] = None

    def mwmr_write(self, value: Any):
        handle = self.start_operation("mwmr_write",
                                      self.mwmr_role.write_gen(value))
        handle.meta.update(kind="write", value=value, register="mwmr")
        return handle

    def mwmr_read(self):
        handle = self.start_operation("mwmr_read", self.mwmr_role.read_gen())
        handle.meta.update(kind="read", register="mwmr")
        return handle


class MWMRRegister:
    """Facade: builds the ``m`` SWMR registers and binds an MWMR role to

    each process.  ``processes`` must be :class:`MWMRProcess` instances.
    """

    def __init__(self, base_reg_id: str, processes: List[MWMRProcess],
                 servers: List[ServerProcess], params: QuorumParams,
                 labeling: Optional[EpochLabeling] = None,
                 seq_bound: int = DEFAULT_SEQ_BOUND,
                 wsn_config: Optional[WsnConfig] = None):
        m = len(processes)
        if m < 1:
            raise ValueError("need at least one process")
        self.labeling = labeling or EpochLabeling(k=max(2, m))
        if self.labeling.k < m:
            raise ValueError(
                f"epoch parameter k={self.labeling.k} must be >= m={m}")
        self.processes = list(processes)
        self.seq_bound = seq_bound
        initial_triple = (None, self.labeling.initial(), 0)
        self.swmr_registers: List[SWMRRegister] = []
        for index, writer in enumerate(processes):
            register = SWMRRegister(
                base_reg_id=f"{base_reg_id}/{index}",
                writer=writer,
                readers=list(processes),
                servers=servers,
                params=params,
                config=wsn_config,
                initial=initial_triple)
            self.swmr_registers.append(register)
        #: one role per process, in process order; ``process.mwmr_role`` is a
        #: convenience binding for the single-register case (a process used
        #: with several MWMR registers — e.g. by the KV store — addresses
        #: roles through this list instead).
        self.roles: List[MWMRRole] = []
        for index, process in enumerate(processes):
            role = MWMRRole(process, index, self.swmr_registers,
                            self.labeling, seq_bound)
            self.roles.append(role)
            process.mwmr_role = role

    def write(self, pid: str, value: Any):
        """``mwmr_write(value)`` issued by process ``pid``."""
        return self._process(pid).mwmr_write(value)

    def read(self, pid: str):
        """``mwmr_read()`` issued by process ``pid``."""
        return self._process(pid).mwmr_read()

    def _process(self, pid: str) -> MWMRProcess:
        for process in self.processes:
            if process.pid == pid:
                return process
        raise KeyError(f"no MWMR process {pid!r}")
