"""Bounded write sequence numbers and the clockwise-distance order (§4).

The practically atomic register counts writes with ``wsn`` incremented
modulo ``2^64 + 1`` (line N1), i.e. values in ``[0, 2^64]``.  Two sequence
numbers are compared by the relation ``>=_cd``: *"given two integers x and
y, x >=_cd y iff the clockwise distance from y to x is smaller than their
anti-clockwise distance; moreover x >_cd y if x >=_cd y and x != y."*

The modulus is configurable: tests and the system-life-span experiment
(Lemma 13's caveat) use tiny moduli so wrap-around is actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's bound: wsn in [0, 2^64], i.e. arithmetic modulo 2^64 + 1.
DEFAULT_MODULUS = 2 ** 64 + 1


def clockwise_distance(start: int, end: int, modulus: int = DEFAULT_MODULUS) -> int:
    """Steps from ``start`` to ``end`` going clockwise (increasing, mod m)."""
    return (end - start) % modulus


def cd_geq(x: int, y: int, modulus: int = DEFAULT_MODULUS) -> bool:
    """``x >=_cd y``: the clockwise distance y -> x beats the anticlockwise."""
    if x == y:
        return True
    return clockwise_distance(y, x, modulus) < clockwise_distance(x, y, modulus)

def cd_gt(x: int, y: int, modulus: int = DEFAULT_MODULUS) -> bool:
    """``x >_cd y``: strictly greater in the clockwise-distance order."""
    return x != y and cd_geq(x, y, modulus)


def next_wsn(wsn: int, modulus: int = DEFAULT_MODULUS) -> int:
    """Line N1: ``wsn <- (wsn + 1) mod (2^64 + 1)`` (modulus configurable)."""
    return (wsn + 1) % modulus


@dataclass(frozen=True, slots=True)
class WsnConfig:
    """Sequence-number configuration shared by a writer/reader pair.

    ``system_life_span`` is the number of writes between two successive
    non-concurrent reads below which no new/old inversion can occur
    (half the sequence space; the paper quotes 2^63 + 1 for the default
    modulus in Lemma 13).
    """

    modulus: int = DEFAULT_MODULUS

    def __post_init__(self):
        if self.modulus < 3:
            raise ValueError("modulus must be at least 3 for >_cd to be usable")

    @property
    def system_life_span(self) -> int:
        return self.modulus // 2 + 1

    def next(self, wsn: int) -> int:
        return next_wsn(wsn, self.modulus)

    def gt(self, x: int, y: int) -> bool:
        return cd_gt(x, y, self.modulus)

    def geq(self, x: int, y: int) -> bool:
        return cd_geq(x, y, self.modulus)

    def in_domain(self, wsn) -> bool:
        return isinstance(wsn, int) and 0 <= wsn < self.modulus
