"""Shared infrastructure of the register constructions.

* :class:`QuorumParams` — the ``n``/``t`` arithmetic of the paper, with the
  resilience checks (``n >= 8t + 1`` asynchronous, ``n >= 3t + 1``
  synchronous).
* :class:`ServerProcess` — hosts one or more server automatons (so SWMR
  per-reader copies and the KV store share server processes), dispatches
  ss-delivered payloads, and supports Byzantine strategy override and
  transient corruption.
* :class:`RegisterClientProcess` — client base: ss-broadcast coroutine
  helper plus phase-correlated reply collection.
* quorum-counting helpers used by the reader/writer predicates
  (lines 03, 12, 14).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..datalink.packets import SSConfirm, SSMsg, SSReply
from ..datalink.ss_broadcast import (BroadcastHandle, ClientTransport,
                                     DirectClientTransport,
                                     DirectServerTransport)
from ..sim.process import Predicate, Process, WaitCondition
from ..sim.scheduler import Scheduler
from ..sim.trace import NOTE, Trace
from .messages import BOT


class _BroadcastComplete(WaitCondition):
    """``ss_broadcast`` termination: enough substrate confirmations.

    Equivalent to ``Predicate(handle.completed)`` with the bookkeeping
    flattened into ``satisfied`` — this condition is re-evaluated on
    every message the client receives, so each saved frame counts.
    """

    __slots__ = ("handle",)

    def __init__(self, handle):
        self.handle = handle

    def satisfied(self) -> bool:
        handle = self.handle
        return len(handle.confirmed) >= handle.needed


class _RepliesCollected(WaitCondition):
    """Replies received from ``count`` different servers (flattened
    ``await_replies`` predicate holding the phase's reply dict directly)."""

    __slots__ = ("collected", "count", "phase")

    def __init__(self, collected: Dict[str, Any], count: int, phase: int):
        self.collected = collected
        self.count = count
        self.phase = phase

    def satisfied(self) -> bool:
        return len(self.collected) >= self.count


@dataclass(frozen=True)
class QuorumParams:
    """The ``(n, t)`` arithmetic of the constructions.

    Asynchronous (Figures 2/3): requires ``n >= 8t + 1``; the writer checks
    for ``4t + 1`` equal helping values (line 03), clients wait for ``n - t``
    acknowledgements, the reader needs ``2t + 1`` equal values (lines 12/14).

    Synchronous (Figure 5): requires ``n >= 3t + 1``; clients wait for all
    ``n`` servers or a timeout, thresholds drop to ``t + 1`` and the writer
    check to ``t + 1`` (lines 02.M/03.M/12.M/14.M).
    """

    n: int
    t: int
    synchronous: bool = False
    #: known upper bound on message transfer delays (synchronous model only);
    #: clients derive their round-trip timeouts from it (Appendix A).
    delay_bound: Optional[float] = None

    def __post_init__(self):
        if self.t < 0 or self.n < 1:
            raise ValueError(f"invalid (n={self.n}, t={self.t})")

    @property
    def satisfies_resilience(self) -> bool:
        if self.synchronous:
            return self.n >= 3 * self.t + 1
        return self.n >= 8 * self.t + 1

    def require_resilience(self) -> None:
        if not self.satisfies_resilience:
            bound = "3t + 1" if self.synchronous else "8t + 1"
            raise ValueError(
                f"n={self.n}, t={self.t} violates n >= {bound}; pass "
                f"enforce_resilience=False to experiment beyond the bound")

    @property
    def ack_quorum(self) -> int:
        """How many acknowledgements a client waits for (line 02 / 11)."""
        return self.n if self.synchronous else self.n - self.t

    @property
    def value_quorum(self) -> int:
        """Equal values needed to return from a read (lines 12 / 14)."""
        return self.t + 1 if self.synchronous else 2 * self.t + 1

    @property
    def help_quorum(self) -> int:
        """Equal helping values sparing a NEW_HELP_VAL broadcast (line 03)."""
        return self.t + 1 if self.synchronous else 4 * self.t + 1

    @property
    def sync_quorum(self) -> int:
        """Correct servers guaranteed to ss-deliver within the invocation."""
        return self.n - 2 * self.t


# ----------------------------------------------------------------------
# quorum counting helpers
# ----------------------------------------------------------------------
def _count_key(value: Any) -> Any:
    """A hashable stand-in for ``value`` in quorum counts.

    Register values are application data and may be unhashable (dicts,
    lists); equality-by-repr is the right notion for "same value" here
    because correct servers echo exactly what the writer broadcast.
    """
    try:
        hash(value)
        return value
    except TypeError:
        return ("__unhashable__", type(value).__name__, repr(value))


def value_with_quorum(values: List[Any], quorum: int,
                      exclude_bot: bool = False) -> Optional[Any]:
    """Return a value occurring at least ``quorum`` times, else ``None``.

    With ``exclude_bot`` the ⊥ marker is not a candidate (the helping-value
    predicates of lines 03/14 require ``w != ⊥``).
    """
    representatives = {}
    counter = Counter()
    for value in values:
        key = _count_key(value)
        representatives.setdefault(key, value)
        counter[key] += 1
    for key, count in counter.most_common():
        if count < quorum:
            break
        value = representatives[key]
        if exclude_bot and value is BOT:
            continue
        return value
    return None


def first_k(replies: Dict[str, Any], k: int) -> List[Tuple[str, Any]]:
    """The first ``k`` replies in arrival order (dict preserves insertion)."""
    items = list(replies.items())
    return items[:k]


# ----------------------------------------------------------------------
# server side
# ----------------------------------------------------------------------
class ServerAutomaton:
    """Base class of per-register server state machines.

    Handlers receive the client id, the ss-delivered payload and the
    substrate phase token, and answer through ``self.server.reply``.
    """

    def __init__(self, server: "ServerProcess", reg_id: str):
        self.server = server
        self.reg_id = reg_id

    def on_deliver(self, client: str, payload: Any, phase: int) -> None:
        raise NotImplementedError


class ServerProcess(Process):
    """A storage server: hosts register automatons, may turn Byzantine.

    ``strategy`` is ``None`` while the server is correct; a Byzantine
    strategy object (``repro.faults.byzantine``) otherwise.  Mobile
    Byzantine failures (footnote 1) are modelled by swapping the strategy
    at runtime.
    """

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace):
        super().__init__(pid, scheduler, trace)
        self.automatons: Dict[str, ServerAutomaton] = {}
        self.strategy = None
        self.confirm_enabled = True
        self.transport = DirectServerTransport(self)
        self.deliveries = 0

    def add_automaton(self, automaton: ServerAutomaton) -> ServerAutomaton:
        self.automatons[automaton.reg_id] = automaton
        return automaton

    def on_message(self, src: str, msg: Any) -> None:
        # Inlined DirectServerTransport.on_network_message — the dominant
        # per-delivery path; semantics identical, two frames cheaper.
        if isinstance(msg, SSMsg) and \
                type(self.transport) is DirectServerTransport:
            if self.confirm_enabled:
                fast = self._fast_out.get(src)
                if fast is not None:
                    fast(SSConfirm(msg.phase))
                else:
                    self.network._send_slow(self.pid, src, SSConfirm(msg.phase))
            # ``ss_deliver`` stays a real call — it is the instrumentable
            # seam of the ss-broadcast abstraction (tests wrap it).
            self.ss_deliver(src, msg.payload, msg.phase)
            return
        if self.transport.on_network_message(src, msg):
            return
        # Anything else is channel garbage (transient failures): tolerated.
        self.trace.emit(self.scheduler.now, NOTE, self.pid,
                        ignored=type(msg).__name__)

    def ss_deliver(self, client: str, payload: Any, phase: int) -> None:
        """Entry point of the ss-broadcast abstraction at this server."""
        self.deliveries += 1
        if self.strategy is not None:
            self.strategy.on_deliver(self, client, payload, phase)
            return
        # inlined dispatch() — the correct-server hot path
        automaton = self.automatons.get(getattr(payload, "reg_id", None))
        if automaton is not None:
            automaton.on_deliver(client, payload, phase)

    def dispatch(self, client: str, payload: Any, phase: int) -> None:
        """Run the correct automaton for ``payload`` (if any)."""
        reg_id = getattr(payload, "reg_id", None)
        automaton = self.automatons.get(reg_id)
        if automaton is not None:
            automaton.on_deliver(client, payload, phase)

    def reply(self, client: str, payload: Any, phase: int) -> None:
        """Send an algorithm-level acknowledgement 'by return' (line 20/23)."""
        self.send(client, SSReply(phase, payload))


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
class RegisterClientProcess(Process):
    """Base class of writer/reader processes.

    Owns the client-side ss-broadcast transport and collects phase-correlated
    replies: at most one reply per (phase, server) is retained — the paper's
    FIFO-matching remark means further replies from the same server answer
    *later* broadcasts, and a correct server sends exactly one.
    """

    def __init__(self, pid: str, scheduler: Scheduler, trace: Trace):
        super().__init__(pid, scheduler, trace)
        self.transport: Optional[ClientTransport] = None
        self._replies: Dict[int, Dict[str, Any]] = {}

    def attach_transport(self, transport: ClientTransport) -> None:
        self.transport = transport

    def on_message(self, src: str, msg: Any) -> None:
        if isinstance(msg, SSReply):
            collected = self._replies.get(msg.phase)
            if collected is not None and src not in collected:
                collected[src] = msg.payload
            return
        transport = self.transport
        # Inlined DirectClientTransport.on_network_message + confirm() —
        # every broadcast collects n confirmations through here.
        if isinstance(msg, SSConfirm) and \
                type(transport) is DirectClientTransport:
            handle = transport._handles.get(msg.phase)
            if handle is not None:
                handle.confirmed.add(src)
            return
        if transport is not None and \
                transport.on_network_message(src, msg):
            return
        self.trace.emit(self.scheduler.now, NOTE, self.pid,
                        ignored=type(msg).__name__)

    # -- coroutine helpers -------------------------------------------------
    def ss_broadcast(self, payload: Any) -> Generator[WaitCondition, None, int]:
        """The blocking ``ss_broadcast(m)`` invocation; returns the phase."""
        handle = self.transport.begin(payload)
        self._replies[handle.phase] = {}
        if type(handle) is BroadcastHandle:
            yield _BroadcastComplete(handle)
        else:
            # transports may return handle variants with their own
            # completion bookkeeping — wait on the method, not the fields
            yield Predicate(handle.completed,
                            label=f"ss_broadcast:{handle.phase}")
        return handle.phase

    def replies(self, phase: int) -> Dict[str, Any]:
        return self._replies.get(phase, {})

    def await_replies(self, phase: int, count: int) -> WaitCondition:
        """Condition: replies received from ``count`` different servers."""
        collected = self._replies.get(phase)
        if collected is None:
            # phase unknown (already retired, or never broadcast): fall
            # back to a live lookup so the condition can never resurrect
            # a dropped phase dict.
            return Predicate(lambda: len(self._replies.get(phase, ())) >= count,
                             label=f"await_replies:{phase}:{count}")
        return _RepliesCollected(collected, count, phase)

    def retire_phase(self, phase: int) -> None:
        """Drop bookkeeping of a completed wait (keeps memory bounded)."""
        self._replies.pop(phase, None)
        if self.transport is not None:
            self.transport.retire(phase)
