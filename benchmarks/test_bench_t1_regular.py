"""Experiment T1 — Theorem 1: stabilizing SWSR regular register, t < n/8.

T1a: liveness + eventual regularity across (n, t) and Byzantine strategies.
T1b: stabilization after transient corruption of every variable + links.
T1c: tightness — beyond the bound, liveness is lost under an adversarial
strategy (quorum arithmetic fails).
"""

import pytest

from repro.analysis.tables import Table, verdict
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario

SETTINGS = [(9, 1), (17, 2), (25, 3)]
STRATEGIES = ["silent", "random-garbage", "stale", "equivocate",
              "inversion-attack"]


def _t1a_specs():
    """One spec per (n, t) setting, sweeping the Byzantine strategy.

    ``seeds=None`` keeps the harness's historical explicit seeds.
    """
    return [
        SweepSpec(name=f"t1a-n{n:02d}", scenario="swsr",
                  base={"kind": "regular", "n": n, "t": t, "seed": 100 + n,
                        "num_writes": 3, "num_reads": 3,
                        "byzantine_count": t},
                  grid={"byzantine_strategy": STRATEGIES}, seeds=None)
        for n, t in SETTINGS
    ]


def test_t1a_claims_matrix(benchmark, report, sweep_workers):
    sweep = benchmark.pedantic(
        lambda: run_sweep(_t1a_specs(), workers=sweep_workers),
        rounds=1, iterations=1)
    table = Table("T1a  Theorem 1 matrix: liveness + eventual regularity "
                  "(async, t Byzantine of n)",
                  ["n", "t", "strategy", "terminates", "regular",
                   "verdict"])
    for cell in sweep.cells:
        table.row(cell.params["n"], cell.params["t"],
                  cell.params["byzantine_strategy"], cell.completed,
                  cell.verdicts.get("stable", False), verdict(cell.ok))
    report(table.render())
    assert sweep.all_ok


def test_t1b_stabilization_after_corruption(benchmark, report):
    def run_one():
        return run_swsr_scenario(
            kind="regular", n=9, t=1, seed=7, num_writes=5, num_reads=5,
            corruption_times=(2.0, 5.0), link_garbage=2, byzantine_count=1)

    result = benchmark.pedantic(run_one, rounds=3, iterations=1)
    table = Table("T1b  stabilization after total corruption "
                  "(all vars fuzzed twice + link garbage, n=9, t=1)",
                  ["tau_no_tr", "tau_1w", "tau_stab", "dirty reads",
                   "stable", "verdict"])
    rep = result.report
    table.row(rep.tau_no_tr, rep.tau_1w, rep.tau_stab,
              f"{rep.dirty_reads}/{rep.total_reads}", rep.stable,
              verdict(rep.stable))
    report(table.render())
    assert rep.stable
    assert rep.tau_stab is not None


def test_t1c_bound_tightness(benchmark, report):
    def beyond():
        return run_swsr_scenario(
            kind="regular", n=9, t=3, seed=8, enforce_resilience=False,
            num_writes=1, num_reads=1, byzantine_count=3,
            byzantine_strategy="equivocate", max_events=120_000)

    result = benchmark.pedantic(beyond, rounds=1, iterations=1)
    table = Table("T1c  beyond the bound: t = 3 of n = 9 (t >= n/8)",
                  ["n", "t", "outcome", "paper expectation", "verdict"])
    outcome = "terminates" if result.completed else \
        "liveness lost (reads starve)"
    table.row(9, 3, outcome, "no guarantee beyond t < n/8",
              verdict(not result.completed, ok="FAILS AS EXPECTED"))
    report(table.render())
    assert not result.completed
