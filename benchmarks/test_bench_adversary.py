"""Experiment F2 — a grid over adversary *shapes* via FaultTimeline.

The declarative fault layer makes the adversary a sweep axis: this bench
fans out partition-during-write and mobile-Byzantine-rotation cells
through the runner (workers from ``REPRO_SWEEP_WORKERS``) and reports the
cost each adversary exacts — dropped messages, corruptions, stabilization
verdicts — alongside the paper-expected outcomes, which must all hold.
"""

from repro.analysis.tables import Table
from repro.runner.engine import run_sweep
from repro.runner.spec import SweepSpec


def _adversary_specs():
    partition = SweepSpec(
        name="f2-partition", scenario="partition",
        base={"n": 9, "t": 1, "num_writes": 6, "num_reads": 6},
        grid={
            "kind": ["regular", "atomic"],
            "partition_duration": [10.0, 30.0],
            "corruption_times": [[], [2.0]],
        },
        seeds=[0],
    )
    mobile = SweepSpec(
        name="f2-mobile", scenario="mobile-byz",
        base={"n": 9, "t": 1, "num_writes": 8, "num_reads": 8},
        grid={
            "kind": ["regular", "atomic"],
            "rotations": [2, 4],
            "rotation_strategy": ["random-garbage", "stale"],
        },
        seeds=[0],
    )
    return [partition, mobile]


def test_f2_adversary_shape_grid(benchmark, report, sweep_workers):
    sweep = benchmark.pedantic(
        lambda: run_sweep(_adversary_specs(), workers=sweep_workers),
        rounds=1, iterations=1)

    table = Table("F2  adversary shapes: partition & mobile Byzantine "
                  f"({len(sweep.cells)} cells, {sweep_workers} workers)",
                  ["cell", "kind", "stable", "dropped", "corruptions",
                   "ok"])
    for cell in sweep.cells:
        table.row(cell.cell_id.split("/")[0] + "/" + cell.cell_id[-2:],
                  cell.params.get("kind", "regular"),
                  cell.verdicts.get("stable"),
                  cell.counters.get("messages_dropped", 0),
                  cell.counters.get("corruptions", 0),
                  cell.ok)
    report(table.render())

    # every adversary shape must terminate and stabilize
    assert sweep.all_ok, [cell.cell_id for cell in sweep.not_ok()]
    # partitions must actually cost messages
    partition_cells = [cell for cell in sweep.cells
                       if cell.scenario == "partition"]
    assert any(cell.counters.get("messages_dropped", 0) > 0
               for cell in partition_cells)
    # rotations must actually corrupt recovering servers
    mobile_cells = [cell for cell in sweep.cells
                    if cell.scenario == "mobile-byz"]
    assert all(cell.counters.get("corruptions", 0) > 0
               for cell in mobile_cells)
