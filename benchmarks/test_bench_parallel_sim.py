"""Experiment PAR — shard-parallel execution of a single simulation.

``repro.parallel`` runs each shard of one scenario in its own worker
process and merges the observation streams afterwards.  Two claims, two
enforcement regimes:

* **Serial equivalence** (asserted *unconditionally*, every run): the
  merged ``history_digest``, checker verdicts and full ``summarize()``
  record of the 4-worker run equal the serial run's, bit for bit.  This
  is the property that makes the parallel engine safe to enable at all;
  it is deterministic, so it never flakes.
* **Wall-clock speedup** (gated on ``REPRO_PERF_GATE``): at 4 shards /
  4 workers on the large cells below, the pool must finish in at most
  half the serial wall time.  Wall-clock ratios are meaningless on a
  single-core or noisy shared runner, so without the env var the bench
  still measures, reports and writes ``BENCH_parallel_sim.json`` — it
  just doesn't fail on the ratio.  (The gate also requires at least 2
  usable cores: a 1-core machine cannot express process parallelism,
  and pretending otherwise would gate on the scheduler's timeslicing.)

Both cells route the serial leg through ``parallel=1`` — the same
plan/executor/merge machinery, inline — so the comparison isolates the
process pool itself, and the digests additionally pin the whole
machinery against the legacy serial path (``parallel=None``).
"""

import json
import os
import time

from repro.analysis.tables import Table
from repro.workloads.scenarios import run_kv_scenario, run_soak_scenario

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_parallel_sim.json")

PERF_GATE = bool(os.environ.get("REPRO_PERF_GATE"))
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
    else (os.cpu_count() or 1)

SHARDS = 4
WORKERS = 4
MIN_SPEEDUP = 2.0

#: large soak cell: 4 independent sub-soaks, ~2.4k ops each.
SOAK_CELL = dict(seed=202608, num_writes=1200, num_reads=1200,
                 fault_bursts=3, rotations=2, shards=SHARDS)
#: large kv cell: 24 keys x (1 create + 6 put+get rounds) over 4 pools.
KV_CELL = dict(seed=202608, shard_count=SHARDS, n=9, t=1, client_count=4,
               num_keys=24, rounds=6, corruption_times=[2.0],
               corruption_fraction=0.2)


def _measure(family, parallel, **cell):
    runner = run_soak_scenario if family == "soak" else run_kv_scenario
    started = time.perf_counter()
    result = runner(parallel=parallel, **cell)
    wall = time.perf_counter() - started
    return result, wall


def test_parallel_sim_speedup_and_equivalence(report):
    rows = []
    artifact = {"bench": "test_parallel_sim_speedup_and_equivalence",
                "shards": SHARDS, "workers": WORKERS, "cores": CORES,
                "perf_gate": PERF_GATE, "cells": {}}
    speedups = {}
    for family, cell in (("kv", KV_CELL), ("soak", SOAK_CELL)):
        serial, serial_wall = _measure(family, 1, **cell)
        pooled, pooled_wall = _measure(family, WORKERS, **cell)
        serial_summary, pooled_summary = (serial.summarize(),
                                          pooled.summarize())

        # -- the unconditional half: serial equivalence --------------------
        assert serial_summary.history_digest == \
            pooled_summary.history_digest, (
                f"{family}: parallel digest diverged from serial")
        assert serial_summary == pooled_summary, (
            f"{family}: parallel summary diverged from serial")
        assert serial_summary.completed
        if family == "kv":
            assert serial.per_key_linearizable == \
                pooled.per_key_linearizable
            assert serial.tau_by_shard == pooled.tau_by_shard
        # the legacy serial path (no parallel machinery at all) pins the
        # inline leg too, so all three executions agree.
        legacy = (run_kv_scenario(**cell) if family == "kv"
                  else run_soak_scenario(**cell))
        assert legacy.summarize() == serial_summary

        speedup = serial_wall / pooled_wall
        speedups[family] = speedup
        rows.append((family, serial_summary.ops, serial_wall, pooled_wall,
                     speedup))
        artifact["cells"][family] = {
            "workload": {key: value for key, value in cell.items()},
            "ops": serial_summary.ops,
            "history_digest": serial_summary.history_digest,
            "digest_equal_serial_vs_parallel": True,
            "summary_equal_serial_vs_parallel": True,
            "serial_wall_sec": round(serial_wall, 3),
            "parallel_wall_sec": round(pooled_wall, 3),
            "wall_speedup": round(speedup, 2),
        }

    table = Table(f"PAR  shard-parallel single-simulation execution "
                  f"({SHARDS} shards, {WORKERS} workers, {CORES} cores)",
                  ["cell", "ops", "serial wall (s)", "parallel wall (s)",
                   "speedup", "digests"])
    for family, ops, serial_wall, pooled_wall, speedup in rows:
        table.row(family, ops, f"{serial_wall:.2f}", f"{pooled_wall:.2f}",
                  f"{speedup:.2f}x", "equal")
    report(table.render())

    artifact["min_speedup_gate"] = MIN_SPEEDUP
    artifact["gate_enforced"] = PERF_GATE and CORES >= 2
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if PERF_GATE and CORES >= 2:
        worst = min(speedups.values())
        assert worst >= MIN_SPEEDUP, (
            f"4-worker run must be >= {MIN_SPEEDUP}x the serial wall "
            f"time (got kv={speedups['kv']:.2f}x, "
            f"soak={speedups['soak']:.2f}x on {CORES} cores)")


def test_interleave_fallback_matches_pool():
    """The same-process round-robin must agree with the pool exactly —
    it is the fallback on platforms without process headroom, so its
    verdicts must be interchangeable."""
    cell = dict(KV_CELL, num_keys=8, rounds=2)
    pooled = run_kv_scenario(parallel=2, **cell)
    inline = run_kv_scenario(parallel="interleave", **cell)
    assert pooled.summarize() == inline.summarize()
    assert pooled.per_key_linearizable == inline.per_key_linearizable
