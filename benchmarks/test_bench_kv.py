"""Experiment KV — sharded, pipelined service-layer throughput.

The paper's constructions are one-register primitives; the KV service
layer composes them into something deployment-shaped, and this bench
characterizes what the composition buys.  The smoke workload (2 logical
clients, 8 keys, 2 put+get rounds — the same shape the ``smoke-kv``
sweep family runs) executes two ways:

* **serial single-pool** — every key on one shared cluster, one
  operation driven to completion at a time (the historical facade
  pattern, ``pipelined=False, shard_count=1``);
* **pipelined + sharded** — keys consistent-hashed over 4 independent
  clusters with the client-side pipeline keeping one operation in
  flight per (shard, client) lane.

The headline metric is the **simulated-time speedup** (serial makespan /
pipelined makespan): it measures what the architecture delivers to a
service — operation concurrency — and, being pure simulated time, it is
fully deterministic, so the ≥ 2x gate can never flake on a noisy
runner.  Wall-clock events/sec rides along for harness-performance
context (recorded, not gated).  Results land in ``BENCH_kv.json`` so CI
tracks the trajectory, and in ``benchmarks/results.txt`` via the shared
report fixture.
"""

import json
import os
import time

from repro.analysis.tables import Table
from repro.workloads.scenarios import run_kv_scenario

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_kv.json")

#: the smoke workload: 8 creates + 2 rounds x (8 puts + 8 gets) = 40 ops.
WORKLOAD = dict(n=9, t=1, seed=202607, client_count=2, num_keys=8,
                rounds=2)

#: the acceptance gate: pipelined+sharded must at least halve the
#: serial single-pool makespan on the smoke workload.
MIN_SPEEDUP = 2.0


def _measure(**kwargs):
    started = time.perf_counter()
    result = run_kv_scenario(**kwargs)
    wall = time.perf_counter() - started
    summary = result.summarize()
    return {
        "ok": bool(result.completed and result.linearizable),
        "ops": summary.ops,
        "makespan": summary.sim_end,
        "events": summary.events_processed,
        "messages": summary.messages_sent,
        "events_per_sec": summary.events_processed / wall,
        "ops_per_sim_time": summary.ops / summary.sim_end,
    }


def test_kv_pipelined_sharded_throughput(report):
    """The tentpole claim: pipelined+sharded ≥ 2x serial single-pool.

    Speedup is a ratio of simulated makespans — deterministic for the
    fixed seed, so the gate holds on any machine or Python version.
    """
    serial = _measure(shard_count=1, pipelined=False, **WORKLOAD)
    ladder = {shards: _measure(shard_count=shards, pipelined=True,
                               **WORKLOAD)
              for shards in (1, 2, 4)}

    table = Table("KV  sharded+pipelined service throughput "
                  f"({WORKLOAD['num_keys']} keys, "
                  f"{WORKLOAD['client_count']} clients, 40 ops)",
                  ["configuration", "makespan (sim)", "ops/sim-time",
                   "events/sec (wall)", "speedup vs serial"])
    table.row("serial, 1 pool", f"{serial['makespan']:.1f}",
              f"{serial['ops_per_sim_time']:.3f}",
              int(serial["events_per_sec"]), "1.00x")
    for shards, measured in ladder.items():
        table.row(f"pipelined, {shards} shard(s)",
                  f"{measured['makespan']:.1f}",
                  f"{measured['ops_per_sim_time']:.3f}",
                  int(measured["events_per_sec"]),
                  f"{serial['makespan'] / measured['makespan']:.2f}x")
    report(table.render())

    pipelined = ladder[4]
    speedup = serial["makespan"] / pipelined["makespan"]
    document = {
        "bench": "test_kv_pipelined_sharded_throughput",
        "workload": {key: value for key, value in WORKLOAD.items()},
        "ops": serial["ops"],
        "serial_single_pool": {
            "makespan_sim": round(serial["makespan"], 3),
            "events": serial["events"],
            "events_per_sec": round(serial["events_per_sec"]),
            "ops_per_sim_time": round(serial["ops_per_sim_time"], 5),
        },
        "pipelined_sharded": {
            "shards": 4,
            "makespan_sim": round(pipelined["makespan"], 3),
            "events": pipelined["events"],
            "events_per_sec": round(pipelined["events_per_sec"]),
            "ops_per_sim_time": round(pipelined["ops_per_sim_time"], 5),
        },
        "speedup_pipelined_sharded_vs_serial": round(speedup, 2),
        "speedup_by_shard_count": {
            str(shards): round(serial["makespan"] / measured["makespan"], 2)
            for shards, measured in ladder.items()},
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # every configuration must terminate and linearize ...
    assert serial["ok"]
    assert all(measured["ok"] for measured in ladder.values())
    # ... with identical operation counts (same workload, same verdicts)
    assert {serial["ops"]} == {measured["ops"]
                               for measured in ladder.values()}
    # the acceptance gate — deterministic, so no PERF_GATE escape hatch
    assert speedup >= MIN_SPEEDUP, (
        f"pipelined+sharded must be >= {MIN_SPEEDUP}x the serial "
        f"single-pool baseline (got {speedup:.2f}x)")


def test_kv_speedup_is_deterministic():
    """The speedup ratio is simulated time over simulated time: re-running
    the same seeds must reproduce it bit-for-bit."""
    first = run_kv_scenario(shard_count=4, pipelined=True, **WORKLOAD)
    second = run_kv_scenario(shard_count=4, pipelined=True, **WORKLOAD)
    assert first.summarize() == second.summarize()
