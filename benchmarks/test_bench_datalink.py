"""Experiment P3 — data-link substrate overhead.

The footnote-3 stabilizing data link pays ``2 * (round-trip-cap + 1)``
acknowledged round trips per message.  This bench measures raw packets per
ss-broadcast as channel capacity grows, and the end-to-end cost of running
the full register stack over the packet-level transport vs the direct one.
"""

import pytest

from repro.analysis.tables import Table
from repro.registers.system import Cluster, ClusterConfig
from repro.workloads.scenarios import run_swsr_scenario


def _packets_per_broadcast(cap: int, broadcasts: int = 3) -> float:
    cluster = Cluster(ClusterConfig(n=9, t=1, seed=700, transport="datalink",
                                    datalink_cap=cap, record_kinds=set()))
    client = cluster.make_client("w")
    for index in range(broadcasts):
        handle = client.start_operation(
            "bc", client.ss_broadcast(f"m{index}"))
        cluster.scheduler.run_until(lambda: handle.done,
                                    max_events=2_000_000)
    return client.transport.total_packets() / broadcasts


def test_p3a_packets_vs_capacity(benchmark, report):
    def sweep():
        return [(cap, _packets_per_broadcast(cap)) for cap in (1, 2, 4)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table("P3a  raw packets per ss-broadcast vs channel capacity "
                  "(n=9 servers)",
                  ["cap", "packets/broadcast", "expected shape"])
    for cap, packets in rows:
        table.row(cap, packets, "grows with cap (2*(2cap+1) round trips)")
    report(table.render())
    assert rows[-1][1] > rows[0][1]


def test_p3b_transport_cost_ratio(benchmark, report):
    def run_both():
        direct = run_swsr_scenario(kind="regular", n=9, t=1, seed=701,
                                   transport="direct", num_writes=2,
                                   num_reads=2, op_gap=30.0)
        datalink = run_swsr_scenario(kind="regular", n=9, t=1, seed=701,
                                     transport="datalink", num_writes=2,
                                     num_reads=2, op_gap=30.0,
                                     max_events=4_000_000)
        return direct, datalink

    direct, datalink = benchmark.pedantic(run_both, rounds=1, iterations=1)
    direct_events = direct.cluster.scheduler.events_processed
    datalink_events = datalink.cluster.scheduler.events_processed
    table = Table("P3b  full register run: direct vs packet-level transport",
                  ["transport", "simulator events", "stable"])
    table.row("direct", direct_events, direct.report.stable)
    table.row("datalink", datalink_events, datalink.report.stable)
    report(table.render())
    assert direct.report.stable and datalink.report.stable
    assert datalink_events > direct_events
