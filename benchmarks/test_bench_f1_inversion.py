"""Experiment F1 — Figure 1: the new/old inversion, shown and eliminated.

Regenerates the paper's Figure 1 phenomenon deterministically (exact
adversarial schedule, see ``repro.experiments.figure1``) on the Figure-2
regular register, and shows the Figure-3 atomic register absorbing the
same attack.  Also sweeps seeds for a frequency statistic.
"""

import pytest

from repro.analysis.tables import Table, verdict
from repro.experiments.figure1 import run_figure1
from repro.runner import SweepSpec, run_sweep


def test_f1_deterministic_inversion(benchmark, report):
    result = benchmark.pedantic(lambda: run_figure1("regular"),
                                rounds=3, iterations=1)
    atomic = run_figure1("atomic")
    table = Table("F1  Figure 1: new/old inversion under the exact schedule",
                  ["register", "read1", "read2", "inverted",
                   "paper expectation", "verdict"])
    table.row("regular (Fig 2)", result.first_read, result.second_read,
              result.inverted, "inversion possible",
              verdict(result.inverted))
    table.row("atomic (Fig 3)", atomic.first_read, atomic.second_read,
              atomic.inverted, "no inversion",
              verdict(not atomic.inverted))
    report(table.render())
    assert result.inverted
    assert not atomic.inverted


def test_f1_frequency_sweep(benchmark, report, sweep_workers):
    """Randomized concurrency: how often do inversions appear per register?

    The regular register *may* invert (nondeterministic); the atomic one
    must never, across every seed.
    """
    seeds = list(range(8))
    spec = SweepSpec(
        name="f1b", scenario="swsr",
        base={"n": 9, "t": 1, "num_writes": 5, "num_reads": 5,
              "reader_offset": 0.2, "byzantine_count": 1,
              "byzantine_strategy": "flip-flop"},
        grid={"kind": ["regular", "atomic"], "seed": seeds},
        seeds=None)

    def hits(sweep, kind):
        return sum(1 for cell in sweep.cells
                   if cell.params["kind"] == kind and cell.completed
                   and cell.counters["new_old_inversions"] > 0)

    sweep = benchmark.pedantic(lambda: run_sweep(spec,
                                                 workers=sweep_workers),
                               rounds=1, iterations=1)
    regular_hits, atomic_hits = hits(sweep, "regular"), hits(sweep, "atomic")
    table = Table("F1b  inversion frequency over randomized runs "
                  f"({len(seeds)} seeds, flip-flop adversary, overlapping ops)",
                  ["register", "runs with inversion", "paper expectation",
                   "verdict"])
    table.row("regular (Fig 2)", f"{regular_hits}/{len(seeds)}",
              "inversions allowed", "observed" if regular_hits else
              "none observed (allowed either way)")
    table.row("atomic (Fig 3)", f"{atomic_hits}/{len(seeds)}",
              "never", verdict(atomic_hits == 0))
    report(table.render())
    assert atomic_hits == 0
