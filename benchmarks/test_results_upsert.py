"""results.txt upsert semantics: partial bench runs must never clobber
sections they did not regenerate (the staleness bug of the old harness,
which deleted the whole file at session start)."""

from conftest import upsert_section


def _read(path):
    return path.read_text(encoding="utf-8")


def test_append_then_replace_in_place(tmp_path):
    path = str(tmp_path / "results.txt")
    upsert_section("T1  first table\na | b\n1 | 2", path=path)
    upsert_section("T2  second table\nx | y\n3 | 4", path=path)
    body = _read(tmp_path / "results.txt")
    assert body == ("T1  first table\na | b\n1 | 2\n\n"
                    "T2  second table\nx | y\n3 | 4\n")

    # regenerating T1 alone replaces it in place, T2 untouched
    upsert_section("T1  first table\na | b\n9 | 9", path=path)
    body = _read(tmp_path / "results.txt")
    assert "9 | 9" in body and "1 | 2" not in body
    assert body.index("T1") < body.index("T2")
    assert "T2  second table\nx | y\n3 | 4" in body


def test_upsert_is_idempotent(tmp_path):
    path = str(tmp_path / "results.txt")
    upsert_section("T1  table\nrow", path=path)
    first = _read(tmp_path / "results.txt")
    upsert_section("T1  table\nrow", path=path)
    assert _read(tmp_path / "results.txt") == first


def test_missing_file_created(tmp_path):
    path = str(tmp_path / "fresh.txt")
    upsert_section("T9  new\nrow", path=path)
    assert _read(tmp_path / "fresh.txt") == "T9  new\nrow\n"
