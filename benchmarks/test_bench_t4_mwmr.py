"""Experiment T4 — Theorem 4: MWMR atomic register from SWMR + epochs.

T4a: histories linearize across m, with and without concurrency/Byzantine.
T4b: epoch renewal — sequence exhaustion and corrupted incomparable epochs.
"""

import pytest

from repro.analysis.tables import Table, verdict
from repro.checkers.atomicity import check_linearizable
from repro.registers.epochs import Epoch
from repro.registers.system import Cluster, ClusterConfig, build_mwmr
from repro.workloads.scenarios import run_mwmr_scenario


def test_t4a_linearizability_matrix(benchmark, report):
    def run_all():
        rows = []
        for m, concurrent, byz in [(2, False, 0), (3, False, 0),
                                   (3, True, 0), (3, False, 1),
                                   (5, False, 0)]:
            result = run_mwmr_scenario(
                m=m, n=9, t=1, seed=400 + m, ops_per_process=2,
                concurrent=concurrent, byzantine_count=byz,
                byzantine_strategy="random-garbage")
            ok = result.completed and check_linearizable(result.history).ok
            rows.append((m, concurrent, byz, result.completed, ok))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table("T4a  Theorem 4: MWMR linearizability (n=9, t=1)",
                  ["m", "concurrent", "byzantine", "terminates",
                   "linearizable", "verdict"])
    for m, concurrent, byz, terminated, ok in rows:
        table.row(m, concurrent, byz, terminated, ok, verdict(ok))
    report(table.render())
    assert all(r[4] for r in rows)


def test_t4b_seq_exhaustion_renewal(benchmark, report):
    """Writer-side renewal (Figure 4 lines 02-03) is transparent: six

    writes against ``seq_bound = 4`` force a renewal mid-stream, and the
    reader still sees the latest value.

    Caveat recorded in EXPERIMENTS.md: if the *last* write parks the
    register exactly at ``seq == bound``, the next **reader** renews (line
    11) and publishes its own stale value — with the paper's ``2^64`` bound
    that state needs ``2^64`` writes, which is exactly why the register is
    only *practically* stabilizing.
    """

    def run_exhaustion():
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=401,
                                        record_kinds=set()))
        register = build_mwmr(cluster, 2, seq_bound=4)
        for index in range(6):
            cluster.run_ops([register.write("p1", f"v{index}")],
                            max_events=4_000_000)
        handle = register.read("p2")
        cluster.run_ops([handle], max_events=4_000_000)
        return handle.result

    result_value = benchmark.pedantic(run_exhaustion, rounds=1, iterations=1)
    table = Table("T4b  epoch renewal on sequence exhaustion "
                  "(seq bound = 4, 6 writes)",
                  ["reads latest", "paper expectation", "verdict"])
    table.row(result_value == "v5", "writer renewal transparent to readers",
              verdict(result_value == "v5"))
    report(table.render())
    assert result_value == "v5"


def test_t4c_corrupted_epoch_antichain(benchmark, report):
    def run_antichain():
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=402,
                                        record_kinds=set()))
        register = build_mwmr(cluster, 3)
        cluster.run_ops([register.write("p1", "before")],
                        max_events=4_000_000)
        # corrupt two registers into an incomparable epoch pair
        a = Epoch(1, frozenset({2, 3, 4}))
        b = Epoch(2, frozenset({1, 3, 4}))
        for server in cluster.servers:
            for automaton_id, automaton in server.automatons.items():
                if automaton_id.startswith("mwmr/0/"):
                    automaton.last_val = (1, ("x", a, 1))
                if automaton_id.startswith("mwmr/1/"):
                    automaton.last_val = (1, ("y", b, 1))
        cluster.run_ops([register.write("p3", "after")],
                        max_events=4_000_000)
        handle = register.read("p2")
        cluster.run_ops([handle], max_events=4_000_000)
        return handle.result

    value = benchmark.pedantic(run_antichain, rounds=1, iterations=1)
    table = Table("T4c  renewal escapes a corrupted epoch antichain",
                  ["read after corruption+write", "paper expectation",
                   "verdict"])
    table.row(value, "the post-corruption write wins",
              verdict(value == "after"))
    report(table.render())
    assert value == "after"
