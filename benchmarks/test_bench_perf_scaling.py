"""Experiment P1 — performance characterization: latency & messages vs n.

The paper reports no numbers (theory only); these benches characterize the
implementation so downstream users can size deployments: simulated
operation latency, messages per operation, and the construction cost
ladder (regular -> atomic -> SWMR -> MWMR) — plus the simulation-core
throughput ladder across trace backends (P1d/P1e), whose events/sec
numbers are persisted to ``BENCH_simcore.json`` so CI can track the perf
trajectory from PR 2 onward.
"""

import json
import os
import time

import pytest

from repro.analysis.tables import Table
from repro.sim.network import AsyncDelay, Network
from repro.sim.process import Process
from repro.sim.random_source import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.trace import build_trace
from repro.workloads.scenarios import run_mwmr_scenario, run_swsr_scenario

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_simcore.json")

#: Hard events/sec thresholds (>=2x storm, >1.2x scenario) only apply when
#: this is set — CI's dedicated perf-smoke job sets it.  The tier-1 test
#: matrix also collects this file, and wall-clock ratios on noisy shared
#: runners must not fail a correctness leg; there the test still measures,
#: reports and writes the artifact, but only sanity-checks the ordering.
PERF_GATE = bool(os.environ.get("REPRO_PERF_GATE"))

#: Absolute NullTrace events/sec floors, armed together with PERF_GATE.
#: The calendar-queue/fused-send kernel rewrite measured 870-930k storm
#: and 250-325k scenario best-of on the reference container depending
#: on its load phase (seed kernel: ~630k / ~207k); the floors sit below
#: the slow-phase measurements to absorb runner noise while still
#: catching any regression back towards the seed numbers.
STORM_FLOOR = int(os.environ.get("REPRO_STORM_FLOOR", "660000"))
SCENARIO_FLOOR = int(os.environ.get("REPRO_SCENARIO_FLOOR", "230000"))


def _op_latencies(history):
    return [op.response - op.invoke for op in history]


def test_p1a_swsr_scaling_with_n(benchmark, report):
    def run_all():
        rows = []
        for n, t in [(9, 1), (17, 2), (25, 3), (33, 4)]:
            result = run_swsr_scenario(kind="regular", n=n, t=t,
                                       seed=500 + n, num_writes=3,
                                       num_reads=3)
            ops = len(result.history)
            rows.append((n, t, result.messages_sent / ops,
                         sum(_op_latencies(result.history)) / ops))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table("P1a  SWSR regular register: cost vs cluster size",
                  ["n", "t", "messages/op", "sim latency/op"])
    for n, t, messages, latency in rows:
        table.row(n, t, messages, latency)
    report(table.render())
    # messages per op must grow roughly linearly in n
    assert rows[-1][2] > rows[0][2]


def test_p1b_construction_ladder(benchmark, report):
    def run_ladder():
        regular = run_swsr_scenario(kind="regular", n=9, t=1, seed=501,
                                    num_writes=3, num_reads=3)
        atomic = run_swsr_scenario(kind="atomic", n=9, t=1, seed=501,
                                   num_writes=3, num_reads=3)
        mwmr = run_mwmr_scenario(m=3, n=9, t=1, seed=501,
                                 ops_per_process=1)
        return regular, atomic, mwmr

    regular, atomic, mwmr = benchmark.pedantic(run_ladder, rounds=1,
                                               iterations=1)
    table = Table("P1b  construction cost ladder (n=9, t=1, messages/op)",
                  ["construction", "ops", "messages", "messages/op"])
    for name, result in [("SWSR regular (Fig 2)", regular),
                         ("SWSR atomic (Fig 3)", atomic),
                         ("MWMR (Fig 4)", mwmr)]:
        ops = len(result.history)
        table.row(name, ops, result.messages_sent,
                  result.messages_sent / max(ops, 1))
    report(table.render())
    # the MWMR construction is strictly costlier per op than plain SWSR
    assert mwmr.messages_sent / max(len(mwmr.history), 1) > \
        regular.messages_sent / max(len(regular.history), 1)


def test_p1c_single_write_latency(benchmark):
    """Raw harness speed: one complete SWSR write+read cycle."""

    def cycle():
        return run_swsr_scenario(kind="regular", n=9, t=1, seed=502,
                                 num_writes=1, num_reads=1)

    result = benchmark(cycle)
    assert result.completed


# ----------------------------------------------------------------------
# P1d/P1e — simulation-core throughput across trace backends
# ----------------------------------------------------------------------
class _EchoProcess(Process):
    """Relays every delivered message until the shared budget drains.

    The relay chain exercises exactly the fused ``send -> schedule ->
    _deliver`` path with no register protocol on top, so its events/sec is
    the simulation core's ceiling.
    """

    def __init__(self, pid, scheduler, trace, peers, budget):
        super().__init__(pid, scheduler, trace)
        self.peers = peers
        self.budget = budget

    def on_message(self, src, message):
        if self.budget[0] > 0:
            self.budget[0] -= 1
            self.send(self.peers[message % len(self.peers)], message + 1)


def _message_storm(backend: str, n_procs: int = 10,
                   messages: int = 30_000):
    """Drive ``messages`` relayed sends; return (events/sec, events)."""
    scheduler = Scheduler()
    trace = build_trace(backend)
    network = Network(scheduler, RandomSource(42), trace,
                      default_delay=AsyncDelay(0.1, 2.0))
    pids = [f"p{index}" for index in range(n_procs)]
    budget = [messages]
    for pid in pids:
        network.register(_EchoProcess(pid, scheduler, trace, pids, budget))
    for index, pid in enumerate(pids):
        network.send(pid, pids[(index + 1) % n_procs], index)
    started = time.perf_counter()
    scheduler.run()
    elapsed = time.perf_counter() - started
    return scheduler.events_processed / elapsed, scheduler.events_processed


def _best_of(runs, fn, *args):
    best = 0.0
    events = 0
    for _ in range(runs):
        rate, events = fn(*args)
        best = max(best, rate)
    return best, events


def test_p1d_simcore_throughput_vs_trace_backend(report):
    """The tentpole claim: the NullTrace fused delivery path must clear

    at least twice the events/sec of the full-trace path (which still
    runs the seed machinery: labelled, cancellable events plus recorded
    SEND/DELIVER detail dicts).  Results land in ``BENCH_simcore.json``
    so the perf trajectory is tracked across PRs.
    """
    rates = {}
    events = 0
    for backend in ("full", "counting", "null"):
        rates[backend], events = _best_of(3, _message_storm, backend)

    # end-to-end scenario throughput rides along for context: protocol
    # work (quorums, coroutines) dilutes the substrate win here.
    scenario_rates = {}
    for backend in ("full", "null"):
        def run_scenario(backend=backend):
            started = time.perf_counter()
            result = run_swsr_scenario(kind="regular", n=25, t=3, seed=7,
                                       num_writes=12, num_reads=12,
                                       trace_backend=backend)
            elapsed = time.perf_counter() - started
            processed = result.cluster.scheduler.events_processed
            return processed / elapsed, processed
        # each scenario run is short (~0.15 s), so a wider best-of is
        # cheap and keeps the gated figure robust on noisy runners
        scenario_rates[backend], _ = _best_of(5, run_scenario)

    table = Table("P1d  simulation-core throughput (events/sec)",
                  ["workload", "backend", "events/sec", "vs full"])
    for backend in ("full", "counting", "null"):
        table.row("message storm", backend, int(rates[backend]),
                  f"{rates[backend] / rates['full']:.2f}x")
    for backend in ("full", "null"):
        table.row("SWSR n=25 scenario", backend,
                  int(scenario_rates[backend]),
                  f"{scenario_rates[backend] / scenario_rates['full']:.2f}x")
    report(table.render())

    document = {
        "bench": "test_p1d_simcore_throughput_vs_trace_backend",
        "storm_events": events,
        "events_per_sec": {key: round(value)
                           for key, value in rates.items()},
        "scenario_events_per_sec": {key: round(value)
                                    for key, value in
                                    scenario_rates.items()},
        "speedup_null_vs_full": round(rates["null"] / rates["full"], 2),
        "scenario_speedup_null_vs_full": round(
            scenario_rates["null"] / scenario_rates["full"], 2),
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # correctness-matrix runs only check the artifact exists; any timing
    # inequality, however generous, could flake a correctness leg.
    assert os.path.exists(ARTIFACT_PATH)
    if PERF_GATE:
        assert rates["null"] >= 2.0 * rates["full"], (
            f"NullTrace fast path must be >= 2x the full-trace path "
            f"(got {rates['null'] / rates['full']:.2f}x)")
        assert scenario_rates["null"] > 1.2 * scenario_rates["full"]
        assert rates["null"] >= STORM_FLOOR, (
            f"storm throughput regressed below the {STORM_FLOOR} "
            f"events/sec floor (got {rates['null']:.0f})")
        assert scenario_rates["null"] >= SCENARIO_FLOOR, (
            f"scenario throughput regressed below the {SCENARIO_FLOOR} "
            f"events/sec floor (got {scenario_rates['null']:.0f})")


def test_p1e_backends_agree_on_execution(report):
    """Perf must not buy divergence: identical histories and counters

    across backends for the same seeded scenario (the cheap in-bench
    version of tests/test_trace_backends.py).
    """
    digests = {}
    messages = {}
    for backend in ("full", "counting", "null"):
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=77,
                                   num_writes=4, num_reads=4,
                                   corruption_times=[2.0],
                                   trace_backend=backend)
        digests[backend] = result.summarize().history_digest
        messages[backend] = result.messages_sent
    assert len(set(digests.values())) == 1
    assert len(set(messages.values())) == 1
