"""Experiment P1 — performance characterization: latency & messages vs n.

The paper reports no numbers (theory only); these benches characterize the
implementation so downstream users can size deployments: simulated
operation latency, messages per operation, and the construction cost
ladder (regular -> atomic -> SWMR -> MWMR).
"""

import pytest

from repro.analysis.tables import Table
from repro.workloads.scenarios import run_mwmr_scenario, run_swsr_scenario


def _op_latencies(history):
    return [op.response - op.invoke for op in history]


def test_p1a_swsr_scaling_with_n(benchmark, report):
    def run_all():
        rows = []
        for n, t in [(9, 1), (17, 2), (25, 3), (33, 4)]:
            result = run_swsr_scenario(kind="regular", n=n, t=t,
                                       seed=500 + n, num_writes=3,
                                       num_reads=3)
            ops = len(result.history)
            rows.append((n, t, result.messages_sent / ops,
                         sum(_op_latencies(result.history)) / ops))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table("P1a  SWSR regular register: cost vs cluster size",
                  ["n", "t", "messages/op", "sim latency/op"])
    for n, t, messages, latency in rows:
        table.row(n, t, messages, latency)
    report(table.render())
    # messages per op must grow roughly linearly in n
    assert rows[-1][2] > rows[0][2]


def test_p1b_construction_ladder(benchmark, report):
    def run_ladder():
        regular = run_swsr_scenario(kind="regular", n=9, t=1, seed=501,
                                    num_writes=3, num_reads=3)
        atomic = run_swsr_scenario(kind="atomic", n=9, t=1, seed=501,
                                   num_writes=3, num_reads=3)
        mwmr = run_mwmr_scenario(m=3, n=9, t=1, seed=501,
                                 ops_per_process=1)
        return regular, atomic, mwmr

    regular, atomic, mwmr = benchmark.pedantic(run_ladder, rounds=1,
                                               iterations=1)
    table = Table("P1b  construction cost ladder (n=9, t=1, messages/op)",
                  ["construction", "ops", "messages", "messages/op"])
    for name, result in [("SWSR regular (Fig 2)", regular),
                         ("SWSR atomic (Fig 3)", atomic),
                         ("MWMR (Fig 4)", mwmr)]:
        ops = len(result.history)
        table.row(name, ops, result.messages_sent,
                  result.messages_sent / max(ops, 1))
    report(table.render())
    # the MWMR construction is strictly costlier per op than plain SWSR
    assert mwmr.messages_sent / max(len(mwmr.history), 1) > \
        regular.messages_sent / max(len(regular.history), 1)


def test_p1c_single_write_latency(benchmark):
    """Raw harness speed: one complete SWSR write+read cycle."""

    def cycle():
        return run_swsr_scenario(kind="regular", n=9, t=1, seed=502,
                                 num_writes=1, num_reads=1)

    result = benchmark(cycle)
    assert result.completed
