"""Shared machinery of the benchmark harness.

Every bench regenerates one experiment from DESIGN.md §5 and reports a
claims table (paper claim vs measured verdict).  Tables are printed (visible
with ``pytest benchmarks/ -s``) *and* appended to ``benchmarks/results.txt``
so a plain ``--benchmark-only`` run still leaves the evidence on disk;
EXPERIMENTS.md embeds them.
"""

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: fan-out width of the sweep-driven benches (CI sets it to the core count).
SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


@pytest.fixture
def sweep_workers():
    return SWEEP_WORKERS


def pytest_sessionstart(session):
    # start each harness run with a fresh results file
    try:
        os.remove(RESULTS_PATH)
    except FileNotFoundError:
        pass


@pytest.fixture
def report():
    """Print a rendered table/series and persist it to results.txt."""

    def _report(text: str) -> None:
        print()
        print(text)
        with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")

    return _report
