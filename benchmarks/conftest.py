"""Shared machinery of the benchmark harness.

Every bench regenerates one experiment from DESIGN.md §5 and reports a
claims table (paper claim vs measured verdict).  Tables are printed
(visible with ``pytest benchmarks/ -s``) *and* upserted into
``benchmarks/results.txt`` so a plain ``--benchmark-only`` run still
leaves the evidence on disk; EXPERIMENTS.md embeds them.

``results.txt`` is a sequence of sections separated by blank lines; the
first line of each section (the table title) is its key.  Re-running any
bench replaces its own sections in place and leaves every other section
untouched, so a partial run — a single bench file, or a tier-1 sweep
that happens to collect benchmarks — can never go stale or clobber
tables it did not regenerate.  (The previous harness deleted the whole
file at session start, so exactly that happened.)
"""

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: fan-out width of the sweep-driven benches (CI sets it to the core count).
SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


@pytest.fixture
def sweep_workers():
    return SWEEP_WORKERS


def _split_sections(body: str) -> list:
    """Split results.txt into title-keyed sections (blank-line separated)."""
    sections = []
    for chunk in body.split("\n\n"):
        if chunk.strip():
            sections.append(chunk.strip("\n"))
    return sections


def upsert_section(text: str, path: str = RESULTS_PATH) -> None:
    """Replace the section sharing ``text``'s title line, else append."""
    text = text.strip("\n")
    title = text.split("\n", 1)[0]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            sections = _split_sections(handle.read())
    except FileNotFoundError:
        sections = []
    for index, section in enumerate(sections):
        if section.split("\n", 1)[0] == title:
            sections[index] = text
            break
    else:
        sections.append(text)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n\n".join(sections) + "\n")


@pytest.fixture
def report():
    """Print a rendered table/series and persist it to results.txt."""

    def _report(text: str) -> None:
        print()
        print(text)
        upsert_section(text)

    return _report
