"""Experiment C — streaming observation pipeline vs offline batch checking.

The streaming refactor's two gates, persisted to ``BENCH_checkers.json``
so CI tracks them across PRs:

* **C1 — check throughput**: replaying a soak-sized history through the
  online checkers must not be slower than the offline batch pass
  (``stabilization_report`` + ``find_new_old_inversions``) over the same
  history.  The offline τ-scan re-checks the whole history per candidate
  cut (O(n²)); the online tracker is a single pass.
* **C2 — bounded-memory soak**: a history-free soak run at least 10× the
  largest smoke-workload op count must complete, stabilize, stay exact
  (no checker window overran) and hold its peak traced memory under a
  hard budget; a 5× deeper run must not grow the peak materially (the
  pipeline's memory is set by its windows, not the run length).

Hard wall-clock gates only apply under ``REPRO_PERF_GATE`` (CI's
perf-smoke job); the correctness matrix still measures, asserts the
deterministic facts (ops, verdicts, equivalence, the absolute memory
budget) and writes the artifact.
"""

import json
import os
import time
import tracemalloc

from repro.analysis.tables import Table
from repro.checkers.atomicity import find_new_old_inversions
from repro.checkers.online import OnlineTauTracker
from repro.checkers.stabilization import stabilization_report
from repro.workloads.scenarios import INITIAL, run_soak_scenario

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_checkers.json")

PERF_GATE = bool(os.environ.get("REPRO_PERF_GATE"))

#: the largest op count any smoke-sweep cell drives (the kv family:
#: 4 creates + 2 rounds × (4 puts + 4 gets) = 20) — the soak gate's
#: "current max smoke-workload ops" baseline.
SMOKE_MAX_OPS = 20

#: hard peak-traced-memory budget for the C2 soak run (MiB).  Measured
#: ~1.5 MiB; the 10× headroom keeps the guard robust across CPython
#: versions while still catching any O(run-length) regression in the
#: pipeline.  Overridable for exploratory runs.
SOAK_BUDGET_MIB = float(os.environ.get("REPRO_SOAK_BUDGET_MIB", "16"))

SOAK_KWARGS = dict(seed=7, n=9, t=1, num_writes=1000, num_reads=1000,
                   op_gap=4.0, fault_bursts=3, fault_period=5.0)


def _traced(fn):
    tracemalloc.start()
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak / 2 ** 20


def test_c1_streaming_check_throughput_vs_offline(report):
    """Online single-pass checking vs the offline batch pass, same history."""
    result = run_soak_scenario(keep_history=True, **SOAK_KWARGS)
    assert result.completed
    history = result.history
    tau = result.tau_no_tr

    started = time.perf_counter()
    offline_report = stabilization_report(history, mode="regular",
                                          initial=INITIAL, tau_no_tr=tau)
    offline_inversions = len(find_new_old_inversions(
        history, after=tau, initial=INITIAL))
    offline_seconds = time.perf_counter() - started

    ops = sorted(history.ops,
                 key=lambda op: (op.response, op.invoke, op.op_id))
    started = time.perf_counter()
    tracker = OnlineTauTracker(mode="regular", initial=INITIAL)
    for op in ops:
        tracker.observe(op)
    online_report = tracker.report(tau)
    online_inversions = tracker.inversions.pairs_after(tau)
    online_seconds = time.perf_counter() - started

    # equivalence is a hard (deterministic) assertion, not a perf gate
    assert (online_report.tau_stab, online_report.dirty_reads,
            online_report.stable) == \
        (offline_report.tau_stab, offline_report.dirty_reads,
         offline_report.stable)
    assert online_inversions == offline_inversions

    speedup = offline_seconds / max(online_seconds, 1e-9)
    table = Table("C1  checking a soak history: streaming vs offline",
                  ["checker", "ops", "seconds", "vs offline"])
    table.row("offline batch pass", len(history), round(offline_seconds, 3),
              "1.00x")
    table.row("online single pass", len(history), round(online_seconds, 3),
              f"{speedup:.1f}x")
    report(table.render())

    document = _load_artifact()
    document["c1_ops"] = len(history)
    document["c1_offline_seconds"] = round(offline_seconds, 4)
    document["c1_online_seconds"] = round(online_seconds, 4)
    document["c1_speedup_online_vs_offline"] = round(speedup, 2)
    _write_artifact(document)

    if PERF_GATE:
        assert online_seconds <= offline_seconds, (
            f"streaming check must not be slower than the offline pass "
            f"(online {online_seconds:.3f}s vs offline "
            f"{offline_seconds:.3f}s)")


def test_c2_soak_runs_10x_smoke_ops_under_memory_budget(report):
    """The history-free soak gate: ≥10× smoke ops, bounded peak memory."""
    result, seconds, peak_mib = _traced(
        lambda: run_soak_scenario(**SOAK_KWARGS))
    summary = result.summarize()
    tracker = result.extra["tracker"]

    deep_kwargs = dict(SOAK_KWARGS, num_writes=5000, num_reads=5000)
    deep, deep_seconds, deep_peak_mib = _traced(
        lambda: run_soak_scenario(**deep_kwargs))
    deep_summary = deep.summarize()

    table = Table("C2  history-free soak under a peak-memory budget",
                  ["run", "ops", "stable", "seconds", "peak MiB",
                   "budget MiB"])
    table.row("soak", summary.ops, summary.stable, round(seconds, 2),
              round(peak_mib, 2), SOAK_BUDGET_MIB)
    table.row("soak 5x deeper", deep_summary.ops, deep_summary.stable,
              round(deep_seconds, 2), round(deep_peak_mib, 2),
              SOAK_BUDGET_MIB)
    report(table.render())

    document = _load_artifact()
    document["c2_soak_ops"] = summary.ops
    document["c2_smoke_max_ops"] = SMOKE_MAX_OPS
    document["c2_ops_ratio_vs_smoke"] = round(summary.ops / SMOKE_MAX_OPS, 1)
    document["c2_peak_mib"] = round(peak_mib, 2)
    document["c2_deep_ops"] = deep_summary.ops
    document["c2_deep_peak_mib"] = round(deep_peak_mib, 2)
    document["c2_budget_mib"] = SOAK_BUDGET_MIB
    document["c2_stable"] = bool(summary.stable)
    document["c2_exact"] = bool(tracker.exact)
    _write_artifact(document)

    # deterministic facts — asserted on every leg, not just perf-smoke
    assert summary.completed and summary.stable
    assert tracker.exact, "a checker window overran on a clean soak run"
    assert result.history is None
    assert summary.ops >= 10 * SMOKE_MAX_OPS
    assert deep_summary.completed and deep_summary.stable
    assert peak_mib < SOAK_BUDGET_MIB, (
        f"soak peak memory {peak_mib:.2f} MiB exceeds the "
        f"{SOAK_BUDGET_MIB} MiB budget")
    assert deep_peak_mib < SOAK_BUDGET_MIB
    if PERF_GATE:
        # 5× the ops must not grow the peak materially: the pipeline's
        # memory is set by its windows, not the run length.
        assert deep_peak_mib <= 2.0 * max(peak_mib, 1.0)


def _load_artifact():
    if os.path.exists(ARTIFACT_PATH):
        with open(ARTIFACT_PATH, "r", encoding="utf-8") as handle:
            document = json.load(handle)
            if document.get("bench") == "test_bench_checkers":
                return document
    return {"bench": "test_bench_checkers"}


def _write_artifact(document):
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
