"""Experiment P2 — stabilization time vs corruption severity.

Measures ``τ_stab − τ_no_tr`` (and dirty-read counts) as the fraction of
corrupted state grows, for both register kinds.  The paper proves τ_stab is
finite; here we see *how* fast the system heals: stabilization essentially
completes with the first write after τ_no_tr, independent of severity.
"""

import pytest

from repro.analysis.tables import Table
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario

FRACTIONS = [0.25, 0.5, 0.75, 1.0]


def _sweep(kind, workers=1):
    spec = SweepSpec(
        name=f"p2-{kind}", scenario="swsr",
        base={"kind": kind, "n": 9, "t": 1, "num_writes": 4, "num_reads": 4,
              "corruption_times": [3.0], "link_garbage": 1,
              "byzantine_count": 1},
        grid={"corruption_fraction": FRACTIONS,
              "seed": [600, 601, 602, 603]},
        seeds=None)
    sweep = run_sweep(spec, workers=workers)
    rows = []
    for fraction in FRACTIONS:
        cells = [cell for cell in sweep.cells
                 if cell.params["corruption_fraction"] == fraction]
        assert all(cell.completed for cell in cells)
        stab_times = [cell.timings["stabilization_time"] for cell in cells
                      if "stabilization_time" in cell.timings]
        dirty = sum(cell.counters.get("dirty_reads", 0) for cell in cells)
        total = sum(cell.counters["reads"] for cell in cells)
        average = sum(stab_times) / len(stab_times) if stab_times else None
        rows.append((fraction, average, dirty, total))
    return rows


def test_p2a_regular_stabilization_vs_severity(benchmark, report,
                                               sweep_workers):
    rows = benchmark.pedantic(lambda: _sweep("regular", sweep_workers),
                              rounds=1,
                              iterations=1)
    table = Table("P2a  regular register: stabilization vs corruption "
                  "severity (4 seeds each)",
                  ["corrupted fraction", "avg tau_stab - tau_no_tr",
                   "dirty reads", "total reads"])
    for fraction, average, dirty, total in rows:
        table.row(fraction, average, dirty, total)
    report(table.render())
    assert all(average is not None for _f, average, *_rest in rows)


def test_p2b_atomic_stabilization_vs_severity(benchmark, report,
                                              sweep_workers):
    rows = benchmark.pedantic(lambda: _sweep("atomic", sweep_workers),
                              rounds=1,
                              iterations=1)
    table = Table("P2b  atomic register: stabilization vs corruption "
                  "severity (4 seeds each)",
                  ["corrupted fraction", "avg tau_stab - tau_no_tr",
                   "dirty reads", "total reads"])
    for fraction, average, dirty, total in rows:
        table.row(fraction, average, dirty, total)
    report(table.render())
    assert all(average is not None for _f, average, *_rest in rows)


def test_p2c_stabilization_bounded_by_first_write(benchmark, report):
    """Claim-shape check: τ_stab lands at/before the first read after the

    first post-corruption write (the proofs' τ_1w milestone)."""

    def measure():
        result = run_swsr_scenario(
            kind="regular", n=9, t=1, seed=610, num_writes=4, num_reads=4,
            corruption_times=(3.0,), corruption_fraction=1.0,
            byzantine_count=1)
        return result.report

    rep = benchmark.pedantic(measure, rounds=2, iterations=1)
    table = Table("P2c  tau_stab vs tau_1w (full corruption)",
                  ["tau_no_tr", "tau_1w", "tau_stab",
                   "stab <= first read after tau_1w"])
    table.row(rep.tau_no_tr, rep.tau_1w, rep.tau_stab, rep.stable)
    report(table.render())
    assert rep.stable
