"""Experiment SERVICE — loopback load through the asyncio service layer.

The service layer (``repro.service``) puts the sharded KV simulation
behind a framed client/server protocol.  This bench drives the standard
lane-partitioned load workload (8 lanes x 4 rounds x 4 keys, put-then-get
batches) through N concurrent loopback connections and reports
requests/sec, p50/p99 request latency and both digests.

Two properties are gated unconditionally because they are deterministic:

* **replay** — same seed, same connection count => identical
  ``history_digest`` (the store-level fingerprint, simulated timings
  included);
* **concurrency independence** — 1 connection vs 8 connections =>
  identical ``response_digest`` (the content-only fold): the connection
  fan-in must not change what any client observes.

The throughput floor only applies under ``REPRO_PERF_GATE`` (CI's
``service-smoke`` job sets it; local runs just record).  Results land in
``BENCH_service.json`` and ``benchmarks/results.txt``.
"""

import json
import os

from repro.analysis.tables import Table
from repro.service import run_loopback_load

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_service.json")

PERF_GATE = bool(os.environ.get("REPRO_PERF_GATE"))

#: the standard load shape: 32 requests, 256 ops, disjoint lane keyspaces.
WORKLOAD = dict(lanes=8, rounds=4, keys_per_lane=4, shards=4, n=9, t=1,
                seed=20260808, store_clients=2)

#: wall-clock floor under REPRO_PERF_GATE.  The dev container does ~900
#: ops/s at 8 connections; 120 leaves ~7x headroom for slow CI runners.
MIN_OPS_PER_SEC = 120.0


def test_service_loopback_load(report):
    """Throughput/latency at 1 vs 8 connections + both digest gates."""
    single = run_loopback_load(clients=1, **WORKLOAD)
    fanned = run_loopback_load(clients=8, **WORKLOAD)
    replay = run_loopback_load(clients=1, **WORKLOAD)

    table = Table(
        f"SERVICE  loopback load ({WORKLOAD['lanes']} lanes x "
        f"{WORKLOAD['rounds']} rounds x {WORKLOAD['keys_per_lane']} keys, "
        f"{single.ops} ops)",
        ["connections", "req/s", "ops/s", "p50 ms", "p99 ms",
         "response_digest"])
    for load in (single, fanned):
        table.row(load.clients, f"{load.requests_per_sec:.1f}",
                  f"{load.ops_per_sec:.1f}", f"{load.p50_ms:.2f}",
                  f"{load.p99_ms:.2f}", load.response_digest)
    report(table.render())

    document = {
        "bench": "test_service_loopback_load",
        "workload": dict(WORKLOAD),
        "requests": single.requests,
        "ops": single.ops,
        "single_connection": single.to_dict(),
        "eight_connections": fanned.to_dict(),
        "history_digest": single.history_digest,
        "response_digest": single.response_digest,
        "perf_gate": PERF_GATE,
        "min_ops_per_sec": MIN_OPS_PER_SEC,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # every batch must return exactly the values its lane wrote
    assert single.mismatches == 0
    assert fanned.mismatches == 0

    # replay determinism: same seed + same fan-in => same store history
    assert single.history_digest == replay.history_digest
    assert single.response_digest == replay.response_digest

    # concurrency independence: fan-in must not change response content
    assert single.response_digest == fanned.response_digest, (
        "1-connection and 8-connection runs observed different response "
        "multisets — the lane partitioning or pipeline lanes regressed")

    if PERF_GATE:
        assert fanned.ops_per_sec >= MIN_OPS_PER_SEC, (
            f"service loopback throughput {fanned.ops_per_sec:.1f} ops/s "
            f"fell below the {MIN_OPS_PER_SEC} ops/s floor")


def test_service_load_scales_down_cleanly():
    """A minimal load shape still satisfies both digest contracts."""
    small = dict(lanes=2, rounds=1, keys_per_lane=2, shards=2, n=9, t=1,
                 seed=7, store_clients=2)
    one = run_loopback_load(clients=1, **small)
    two = run_loopback_load(clients=2, **small)
    assert one.mismatches == two.mismatches == 0
    assert one.response_digest == two.response_digest
    assert one.requests == 2 and one.ops == 8
