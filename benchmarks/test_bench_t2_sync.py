"""Experiment T2 — Theorem 2: synchronous links tolerate t < n/3.

The headline resilience gap: for the same t the synchronous model needs
far fewer servers (timeouts let clients wait for *all* correct servers).
"""

import pytest

from repro.analysis.tables import Table, verdict
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario

SYNC_SETTINGS = [(4, 1), (7, 2), (10, 3)]


def test_t2_sync_claims_matrix(benchmark, report, sweep_workers):
    specs = [
        SweepSpec(name=f"t2-n{n:02d}", scenario="swsr",
                  base={"kind": "regular", "n": n, "t": t, "seed": 200 + n,
                        "synchronous": True, "num_writes": 3, "num_reads": 3,
                        "byzantine_count": t},
                  grid={"byzantine_strategy": ["silent", "random-garbage",
                                               "stale"]},
                  seeds=None)
        for n, t in SYNC_SETTINGS
    ]
    sweep = benchmark.pedantic(lambda: run_sweep(specs,
                                                 workers=sweep_workers),
                               rounds=1, iterations=1)
    table = Table("T2  Theorem 2 matrix: synchronous links, t < n/3",
                  ["n", "t", "strategy", "terminates", "regular", "verdict"])
    for cell in sweep.cells:
        table.row(cell.params["n"], cell.params["t"],
                  cell.params["byzantine_strategy"], cell.completed,
                  cell.verdicts.get("stable", False), verdict(cell.ok))
    report(table.render())
    assert sweep.all_ok


def test_t2_resilience_gap(benchmark, report):
    """Same t = 2: 7 servers suffice synchronously vs 17 asynchronously."""

    def run_both():
        sync = run_swsr_scenario(kind="regular", n=7, t=2, seed=9,
                                 synchronous=True, num_writes=2, num_reads=2,
                                 byzantine_count=2)
        asynchronous = run_swsr_scenario(kind="regular", n=17, t=2, seed=9,
                                         num_writes=2, num_reads=2,
                                         byzantine_count=2)
        return sync, asynchronous

    sync, asynchronous = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = Table("T2b  resilience gap at t = 2 (minimum n per model)",
                  ["model", "n", "bound", "stable", "messages", "verdict"])
    table.row("synchronous", 7, "n >= 3t + 1", sync.report.stable,
              sync.messages_sent, verdict(sync.report.stable))
    table.row("asynchronous", 17, "n >= 8t + 1", asynchronous.report.stable,
              asynchronous.messages_sent,
              verdict(asynchronous.report.stable))
    report(table.render())
    assert sync.report.stable and asynchronous.report.stable


def test_t2_sync_atomic_extension(benchmark, report):
    """Section 4's closing remark: the atomic extension works at t < n/3."""

    def run_one():
        return run_swsr_scenario(kind="atomic", n=7, t=2, seed=10,
                                 synchronous=True, num_writes=4, num_reads=4,
                                 corruption_times=(2.0,), byzantine_count=2)

    result = benchmark.pedantic(run_one, rounds=2, iterations=1)
    table = Table("T2c  synchronous atomic register (n=7, t=2, corruption)",
                  ["terminates", "atomic", "tau_stab", "verdict"])
    table.row(result.completed, result.report.stable,
              result.report.tau_stab,
              verdict(result.completed and result.report.stable))
    report(table.render())
    assert result.completed and result.report.stable
