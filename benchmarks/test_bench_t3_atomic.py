"""Experiment T3 — Theorem 3: practically stabilizing SWSR atomic register.

T3a: eventual atomicity (no inversions) under corruption + adversaries.
T3b: the *practically* caveat (Lemma 13): with a tiny wsn modulus, pushing
more than system-life-span writes between two reads re-enables staleness.
"""

import pytest

from repro.analysis.tables import Table, verdict
from repro.checkers.atomicity import find_new_old_inversions
from repro.registers.bounded_seq import WsnConfig
from repro.registers.system import Cluster, ClusterConfig, build_swsr_atomic
from repro.workloads.scenarios import run_swsr_scenario

ADVERSARIES = ["inversion-attack", "flip-flop", "stale", "random-garbage"]


def test_t3a_no_inversions_matrix(benchmark, report):
    def run_all():
        rows = []
        for strategy in ADVERSARIES:
            result = run_swsr_scenario(
                kind="atomic", n=9, t=1, seed=300, num_writes=5,
                num_reads=5, reader_offset=0.2,
                corruption_times=(2.0,), byzantine_count=1,
                byzantine_strategy=strategy)
            inversions = find_new_old_inversions(result.history,
                                                 after=result.tau_no_tr)
            rows.append((strategy, result.completed,
                         result.report.stable if result.report else False,
                         len(inversions)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table("T3a  Theorem 3: eventual atomicity (n=9, t=1, "
                  "corruption at t=2.0, overlapping ops)",
                  ["adversary", "terminates", "atomic", "inversions",
                   "verdict"])
    for strategy, terminated, stable, inversions in rows:
        table.row(strategy, terminated, stable, inversions,
                  verdict(terminated and stable and inversions == 0))
    report(table.render())
    assert all(r[1] and r[2] and r[3] == 0 for r in rows)


def test_t3b_system_life_span_caveat(benchmark, report):
    """Lemma 13's bound is real: exceed it and the reader serves stale data."""

    def run_wraparound():
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=301))
        writer, reader = build_swsr_atomic(cluster, initial="v_init",
                                           config=WsnConfig(7))
        outcomes = {}
        cluster.run_ops([writer.write("early")])
        cluster.run_ops([reader.read()])
        # within the life span (< 7//2 writes): fine
        cluster.run_ops([writer.write("mid")])
        handle = reader.read()
        cluster.run_ops([handle])
        outcomes["within"] = handle.result
        # exceed the life span: 4 > 7//2 writes between reads
        for index in range(4):
            cluster.run_ops([writer.write(f"burst{index}")])
        handle = reader.read()
        cluster.run_ops([handle])
        outcomes["beyond"] = handle.result
        return outcomes

    outcomes = benchmark.pedantic(run_wraparound, rounds=2, iterations=1)
    table = Table("T3b  system-life-span caveat (wsn modulus = 7, "
                  "life span = 4 writes)",
                  ["writes between reads", "read returned",
                   "paper expectation", "verdict"])
    table.row("1 (within)", outcomes["within"], "latest value",
              verdict(outcomes["within"] == "mid"))
    table.row("4 (beyond)", outcomes["beyond"],
              "staleness possible (practically stabilizing only)",
              verdict(outcomes["beyond"] != "burst3",
                      ok="STALE AS PREDICTED", bad="unexpectedly fresh"))
    report(table.render())
    assert outcomes["within"] == "mid"
    assert outcomes["beyond"] != "burst3"


def test_t3c_default_modulus_equals_paper(benchmark, report):
    """With the paper's 2^64+1 modulus, bursts never hit the caveat."""

    def run_default():
        return run_swsr_scenario(kind="atomic", n=9, t=1, seed=302,
                                 num_writes=8, num_reads=2, op_gap=4.0)

    result = benchmark.pedantic(run_default, rounds=2, iterations=1)
    table = Table("T3c  default modulus 2^64 + 1: no wrap-around in practice",
                  ["writes", "reads", "atomic", "verdict"])
    table.row(8, 2, result.report.stable, verdict(result.report.stable))
    report(table.render())
    assert result.report.stable
