"""Experiment T3 — Theorem 3: practically stabilizing SWSR atomic register.

T3a: eventual atomicity (no inversions) under corruption + adversaries.
T3b: the *practically* caveat (Lemma 13): with a tiny wsn modulus, pushing
more than system-life-span writes between two reads re-enables staleness.
"""

import pytest

from repro.analysis.tables import Table, verdict
from repro.registers.bounded_seq import WsnConfig
from repro.registers.system import Cluster, ClusterConfig, build_swsr_atomic
from repro.runner import SweepSpec, run_sweep
from repro.workloads.scenarios import run_swsr_scenario

ADVERSARIES = ["inversion-attack", "flip-flop", "stale", "random-garbage"]


def test_t3a_no_inversions_matrix(benchmark, report, sweep_workers):
    spec = SweepSpec(
        name="t3a", scenario="swsr",
        base={"kind": "atomic", "n": 9, "t": 1, "seed": 300,
              "num_writes": 5, "num_reads": 5, "reader_offset": 0.2,
              "corruption_times": [2.0], "byzantine_count": 1},
        grid={"byzantine_strategy": ADVERSARIES}, seeds=None)
    sweep = benchmark.pedantic(lambda: run_sweep(spec,
                                                 workers=sweep_workers),
                               rounds=1, iterations=1)
    table = Table("T3a  Theorem 3: eventual atomicity (n=9, t=1, "
                  "corruption at t=2.0, overlapping ops)",
                  ["adversary", "terminates", "atomic", "inversions",
                   "verdict"])
    for cell in sweep.cells:
        table.row(cell.params["byzantine_strategy"], cell.completed,
                  cell.verdicts.get("stable", False),
                  cell.counters.get("new_old_inversions", "-"),
                  verdict(cell.ok))
    report(table.render())
    assert sweep.all_ok


def test_t3b_system_life_span_caveat(benchmark, report):
    """Lemma 13's bound is real: exceed it and the reader serves stale data."""

    def run_wraparound():
        cluster = Cluster(ClusterConfig(n=9, t=1, seed=301))
        writer, reader = build_swsr_atomic(cluster, initial="v_init",
                                           config=WsnConfig(7))
        outcomes = {}
        cluster.run_ops([writer.write("early")])
        cluster.run_ops([reader.read()])
        # within the life span (< 7//2 writes): fine
        cluster.run_ops([writer.write("mid")])
        handle = reader.read()
        cluster.run_ops([handle])
        outcomes["within"] = handle.result
        # exceed the life span: 4 > 7//2 writes between reads
        for index in range(4):
            cluster.run_ops([writer.write(f"burst{index}")])
        handle = reader.read()
        cluster.run_ops([handle])
        outcomes["beyond"] = handle.result
        return outcomes

    outcomes = benchmark.pedantic(run_wraparound, rounds=2, iterations=1)
    table = Table("T3b  system-life-span caveat (wsn modulus = 7, "
                  "life span = 4 writes)",
                  ["writes between reads", "read returned",
                   "paper expectation", "verdict"])
    table.row("1 (within)", outcomes["within"], "latest value",
              verdict(outcomes["within"] == "mid"))
    table.row("4 (beyond)", outcomes["beyond"],
              "staleness possible (practically stabilizing only)",
              verdict(outcomes["beyond"] != "burst3",
                      ok="STALE AS PREDICTED", bad="unexpectedly fresh"))
    report(table.render())
    assert outcomes["within"] == "mid"
    assert outcomes["beyond"] != "burst3"


def test_t3c_default_modulus_equals_paper(benchmark, report):
    """With the paper's 2^64+1 modulus, bursts never hit the caveat."""

    def run_default():
        return run_swsr_scenario(kind="atomic", n=9, t=1, seed=302,
                                 num_writes=8, num_reads=2, op_gap=4.0)

    result = benchmark.pedantic(run_default, rounds=2, iterations=1)
    table = Table("T3c  default modulus 2^64 + 1: no wrap-around in practice",
                  ["writes", "reads", "atomic", "verdict"])
    table.row(8, 2, result.report.stable, verdict(result.report.stable))
    report(table.render())
    assert result.report.stable
