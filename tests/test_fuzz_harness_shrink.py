"""Harness verdicts, injection hook, backend agreement, shrinking."""

import pytest

from repro.fuzz.gen import FuzzCase, FuzzProfile, generate_case
from repro.fuzz.harness import INJECT_ENV, confirm_case, run_case
from repro.fuzz.shrink import shrink_case

#: a case known-good under the default envelope (see fuzz surveys).
GOOD_SEED = 2385743048


def small_case(**overrides):
    base = dict(
        seed=11, kind="regular", n=9, t=1, transport="direct",
        num_writes=2, num_reads=2, op_gap=8.0, reader_offset=None,
        byzantine_count=0, byzantine_strategy="silent",
        timeline=(
            {"time": 2.0, "kind": "burst",
             "args": {"fraction": 0.5, "targets": "servers"}},
            {"time": 3.0, "kind": "link-garbage", "args": {"per_link": 1}},
            {"time": 4.0, "kind": "burst",
             "args": {"fraction": 1.0, "targets": "servers"}},
        ),
        max_events=2_000_000)
    base.update(overrides)
    base["timeline"] = tuple(base["timeline"])
    return FuzzCase(**base)


class TestHarness:
    def test_good_case_is_ok_on_both_backends(self):
        case = generate_case(GOOD_SEED)
        fast = run_case(case, backend="null")
        assert fast.ok and fast.completed and fast.stable
        assert fast.signature == ()
        full = confirm_case(case, fast)
        assert full.ok
        assert full.history_digest == fast.history_digest

    def test_counters_and_timings_are_populated(self):
        outcome = run_case(small_case())
        assert outcome.counters["ops"] == 4
        assert outcome.counters["timeline_events"] == 3
        assert outcome.timings["tau_no_tr"] == 4.0
        assert outcome.timings["tau_adversary"] == 4.0

    def test_crashing_case_is_contained_as_error_violation(self):
        # n < 8t + 1 violates the resilience bound -> ValueError inside
        # the scenario, contained as a violation instead of raising.
        case = small_case(n=5)
        outcome = run_case(case)
        assert not outcome.ok
        assert outcome.signature == ("error:ValueError",)

    def test_injection_hook_flags_matching_timelines(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        outcome = run_case(small_case())
        assert not outcome.ok
        assert "injected:burst" in outcome.signature

    def test_injection_hook_ignores_non_matching_timelines(self,
                                                           monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "partition")
        assert run_case(small_case()).ok

    def test_outcome_dict_is_json_ready(self):
        import json
        outcome = run_case(small_case())
        json.dumps(outcome.to_dict(), sort_keys=True)


class TestShrink:
    def test_rejects_passing_case(self):
        with pytest.raises(ValueError):
            shrink_case(small_case())

    def test_shrinks_injected_case_to_single_event(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        result = shrink_case(small_case())
        assert result.signature == ("injected:burst",)
        assert result.events_before == 3
        assert result.events_after == 1
        assert result.case.timeline[0]["kind"] == "burst"
        # parameter ladders fired too: minimal workload.
        assert result.case.num_writes == 1
        assert result.case.num_reads == 1
        assert not result.outcome.ok

    def test_shrinking_is_deterministic(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        first = shrink_case(small_case())
        second = shrink_case(small_case())
        assert first.case == second.case
        assert first.steps == second.steps
        assert first.oracle_calls == second.oracle_calls

    def test_budget_is_respected(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        result = shrink_case(small_case(), max_oracle_calls=3)
        assert result.oracle_calls <= 3
        # with a tiny budget the case survives, possibly unshrunk
        assert result.events_after >= 1

    def test_shrunk_case_still_fails_under_full_trace(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "burst")
        result = shrink_case(small_case())
        full = confirm_case(result.case)
        assert "injected:burst" in full.signature

    def test_topology_reduction_respects_referenced_servers(self):
        from repro.fuzz.shrink import _parameter_candidates
        case = small_case(n=13, timeline=(
            {"time": 2.0, "kind": "crash", "args": {"servers": ["s13"]}},
            {"time": 3.0, "kind": "recover", "args": {"servers": ["s13"]}},
        ))
        labels = [label for label, _ in _parameter_candidates(case)]
        # shrinking n below 13 would KeyError on s13 — not proposed
        assert not any(label.startswith("n=") for label in labels)
        case = small_case(n=13)
        labels = [label for label, _ in _parameter_candidates(case)]
        assert "n=9" in labels

    def test_t_reduction_respects_rotation_set_sizes(self):
        from repro.fuzz.shrink import _parameter_candidates
        rotation = {"time": 20.0, "kind": "byzantine",
                    "args": {"servers": ["s1", "s2"],
                             "strategy": "random-garbage"}}
        case = small_case(n=17, t=2, timeline=(rotation,))
        labels = [label for label, _ in _parameter_candidates(case)]
        # a 2-server rotation pins t=2: no t-reduction proposed
        assert not any(label.startswith("t=") for label in labels)
        rotation = {"time": 20.0, "kind": "byzantine",
                    "args": {"servers": ["s1"],
                             "strategy": "random-garbage"}}
        case = small_case(n=17, t=2, timeline=(rotation,))
        labels = [label for label, _ in _parameter_candidates(case)]
        assert "t=1" in labels

    def test_real_wsn_jump_counterexample_shrinks(self):
        """The fuzzer-found Lemma 13 edge (see tests/replays) shrinks:

        client-targeted bursts against an atomic case are outside the
        default envelope but remain expressible — and minimizable.
        Loaded from the committed artifact so there is one source of
        truth for the counterexample.
        """
        import os
        from repro.fuzz.replay import ReplayArtifact
        artifact = ReplayArtifact.load(
            os.path.join(os.path.dirname(__file__), "replays",
                         "wsn-jump-atomic.json"))
        case = artifact.case
        fast = run_case(case)
        assert fast.signature == ("unstable",)
        full = confirm_case(case, fast)
        assert full.signature == ("regularity",)
        result = shrink_case(case)
        assert result.events_after <= 2
        assert any(event["kind"] == "burst"
                   for event in result.case.timeline)
