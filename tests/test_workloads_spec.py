"""ScenarioSpec: validation, serialization, shim equivalence."""

import inspect
import warnings

import pytest

from repro.workloads import scenarios
from repro.workloads.engine import ScenarioEngine
from repro.workloads.spec import (FAMILIES, ScenarioSpec, run_scenario,
                                  scenario_families)

#: smallest-footprint parameters per family, for equivalence runs.
QUICK_PARAMS = {
    "swsr": dict(seed=3, num_writes=2, num_reads=2),
    "mwmr": dict(m=2, seed=3, ops_per_process=1),
    "partition": dict(seed=3, num_writes=2, num_reads=2),
    "kv": dict(shard_count=2, num_keys=2, rounds=1, seed=3),
    "reshard": dict(shard_count=2, num_keys=2, rounds=1, seed=3,
                    vnodes=4),
    "mobile-byz": dict(seed=3, rotations=1, num_writes=2, num_reads=2),
    "soak": dict(seed=3, num_writes=6, num_reads=6),
}

SHIMS = {
    "swsr": scenarios.run_swsr_scenario,
    "mwmr": scenarios.run_mwmr_scenario,
    "partition": scenarios.run_partition_scenario,
    "kv": scenarios.run_kv_scenario,
    "reshard": scenarios.run_reshard_scenario,
    "mobile-byz": scenarios.run_mobile_byzantine_scenario,
    "soak": scenarios.run_soak_scenario,
}


class TestValidation:
    def test_families_cover_every_shim(self):
        assert set(FAMILIES) == set(SHIMS)
        assert scenario_families() == tuple(sorted(FAMILIES))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            ScenarioSpec("not-a-family")

    def test_unknown_parameter_rejected_with_vocabulary(self):
        with pytest.raises(TypeError) as excinfo:
            ScenarioSpec("swsr", bogus_knob=1)
        assert "bogus_knob" in str(excinfo.value)
        assert "num_writes" in str(excinfo.value)   # valid vocab listed

    @pytest.mark.parametrize("alias", ["mobile-byzantine",
                                       "mobile_byzantine", "mobile-byz"])
    def test_mobile_byzantine_aliases(self, alias):
        assert ScenarioSpec(alias).family == "mobile-byz"

    def test_positional_and_keyword_params_must_not_overlap(self):
        with pytest.raises(TypeError, match="both"):
            ScenarioSpec("swsr", {"seed": 1}, seed=2)

    def test_non_string_family_rejected(self):
        with pytest.raises(TypeError):
            ScenarioSpec(7)


class TestSpecValue:
    def test_equality_and_round_trip(self):
        spec = ScenarioSpec("swsr", seed=1, num_writes=2)
        assert spec == ScenarioSpec("swsr", {"num_writes": 2, "seed": 1})
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_extra_keys(self):
        with pytest.raises(ValueError, match="unexpected spec keys"):
            ScenarioSpec.from_dict({"family": "swsr", "params": {},
                                    "oops": 1})

    def test_with_params_overlays(self):
        base = ScenarioSpec("swsr", seed=1, num_writes=2)
        tweaked = base.with_params(seed=9)
        assert tweaked.params == {"seed": 9, "num_writes": 2}
        assert base.params == {"seed": 1, "num_writes": 2}  # unchanged

    def test_resolved_overlays_defaults(self):
        spec = ScenarioSpec("swsr", seed=5)
        resolved = spec.resolved()
        assert resolved["seed"] == 5
        assert resolved["n"] == 9                       # family default
        assert set(spec.defaults()) == set(
            inspect.signature(FAMILIES["swsr"]).parameters)


@pytest.mark.parametrize("family", sorted(QUICK_PARAMS))
def test_shim_and_spec_runs_are_equivalent(family):
    """The deprecated entry point and the spec path produce the same run."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_shim = SHIMS[family](**QUICK_PARAMS[family]).summarize()
    via_spec = ScenarioSpec(family, QUICK_PARAMS[family]).run().summarize()
    assert via_shim == via_spec


def test_shims_emit_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="run_swsr_scenario"):
        scenarios.run_swsr_scenario(seed=1, num_writes=1, num_reads=1)


def test_shims_expose_impl_signature():
    for family, shim in SHIMS.items():
        assert shim.__wrapped__ is FAMILIES[family]
        assert "seed" in inspect.signature(shim).parameters


def test_run_scenario_accepts_all_three_shapes():
    params = QUICK_PARAMS["swsr"]
    spec = ScenarioSpec("swsr", params)
    by_name = run_scenario("swsr", **params).summarize()
    by_spec = run_scenario(spec).summarize()
    by_dict = run_scenario(spec.to_dict()).summarize()
    assert by_name == by_spec == by_dict


def test_run_scenario_spec_with_overrides():
    spec = ScenarioSpec("swsr", seed=1, num_writes=2, num_reads=2)
    overridden = run_scenario(spec, seed=3).summarize()
    direct = run_scenario("swsr", seed=3, num_writes=2,
                          num_reads=2).summarize()
    assert overridden == direct


def test_run_scenario_rejects_garbage():
    with pytest.raises(TypeError, match="spec must be"):
        run_scenario(42)


def test_engine_run_spec_front_door():
    params = QUICK_PARAMS["kv"]
    via_engine = ScenarioEngine.run_spec("kv", **params).summarize()
    via_spec = ScenarioSpec("kv", params).run().summarize()
    assert via_engine == via_spec


def test_spec_path_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run_scenario("swsr", seed=1, num_writes=1, num_reads=1)
