"""Unit tests for protocol messages and the ⊥ marker."""

import copy

from repro.registers.messages import (BOT, AckRead, AckWrite, NewHelpVal,
                                      Read, Write, _Bottom)


def test_bot_is_singleton():
    assert _Bottom() is BOT


def test_bot_survives_copy():
    assert copy.copy(BOT) is BOT
    assert copy.deepcopy(BOT) is BOT


def test_bot_repr():
    assert repr(BOT) == "⊥"


def test_bot_distinct_from_none_and_strings():
    assert BOT is not None
    assert BOT != "⊥"


def test_messages_are_hashable_and_frozen():
    write = Write("reg", "v")
    assert hash(write) == hash(Write("reg", "v"))
    ack = AckRead("reg", "a", BOT)
    assert ack == AckRead("reg", "a", BOT)


def test_message_fields():
    assert Write("reg", 5).value == 5
    assert NewHelpVal("reg", 5).value == 5
    assert Read("reg", True).new_read
    assert AckWrite("reg", BOT).helping_val is BOT
    assert AckRead("reg", 1, 2).last_val == 1
