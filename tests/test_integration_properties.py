"""Property-based integration tests: random workloads, faults and seeds.

These drive whole register stacks under hypothesis-chosen schedules and
assert the paper's guarantees on the resulting histories.  Deadlines are
disabled: a single example runs a full simulated cluster.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkers.atomicity import find_new_old_inversions
from repro.checkers.regularity import check_regularity
from repro.workloads.scenarios import run_mwmr_scenario, run_swsr_scenario

RELAXED = settings(max_examples=10, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestRegularRegisterProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_ops=st.integers(min_value=1, max_value=5),
           offset=st.floats(min_value=0.1, max_value=9.0))
    @RELAXED
    def test_always_regular_after_tau(self, seed, num_ops, offset):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=seed,
                                   num_writes=num_ops, num_reads=num_ops,
                                   reader_offset=offset,
                                   byzantine_count=1,
                                   byzantine_strategy="random-garbage")
        assert result.completed
        assert check_regularity(result.history, after=result.tau_no_tr,
                                initial="v_init") == []

    @given(seed=st.integers(min_value=0, max_value=10_000),
           corruption=st.floats(min_value=0.1, max_value=1.0))
    @RELAXED
    def test_stabilizes_for_any_corruption_severity(self, seed, corruption):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=seed,
                                   num_writes=3, num_reads=3,
                                   corruption_times=(2.0,),
                                   corruption_fraction=corruption)
        assert result.completed
        assert result.report.stable


class TestAtomicRegisterProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           offset=st.floats(min_value=0.1, max_value=9.0))
    @RELAXED
    def test_never_inverts_after_tau(self, seed, offset):
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=seed,
                                   num_writes=4, num_reads=4,
                                   reader_offset=offset,
                                   byzantine_count=1,
                                   byzantine_strategy="inversion-attack")
        assert result.completed
        assert find_new_old_inversions(result.history,
                                       after=result.tau_no_tr) == []


class TestTransportInterchangeability:
    @pytest.mark.parametrize("transport", ["direct", "datalink"])
    def test_same_semantics_over_both_transports(self, transport):
        result = run_swsr_scenario(kind="regular", n=9, t=1, seed=77,
                                   transport=transport,
                                   num_writes=2, num_reads=2, op_gap=30.0,
                                   max_events=3_000_000)
        assert result.completed
        assert result.report.stable

    def test_atomic_over_datalink(self):
        result = run_swsr_scenario(kind="atomic", n=9, t=1, seed=78,
                                   transport="datalink",
                                   num_writes=2, num_reads=2, op_gap=40.0,
                                   max_events=4_000_000)
        assert result.completed
        assert result.report.stable
