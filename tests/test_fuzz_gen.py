"""Generator properties: reproducibility, serialization, envelope."""

import random

import pytest

from repro.fuzz.gen import (DEFAULT_PROFILE, ROTATION_STRATEGIES,
                            STATIC_STRATEGIES, TOPOLOGIES, FuzzCase,
                            FuzzProfile, generate_case)

SEEDS = [random.Random(99).randrange(2 ** 32) for _ in range(200)]


class TestReproducibility:
    def test_same_seed_same_case(self):
        for seed in SEEDS[:50]:
            assert generate_case(seed) == generate_case(seed)

    def test_dict_round_trip(self):
        for seed in SEEDS[:50]:
            case = generate_case(seed)
            assert FuzzCase.from_dict(case.to_dict()) == case

    def test_profile_round_trip(self):
        profile = FuzzProfile(max_rotations=1, datalink_weight=0.5)
        assert FuzzProfile.from_dict(profile.to_dict()) == profile
        assert FuzzProfile.from_dict(None) == FuzzProfile()

    def test_profile_changes_cases(self):
        tame = FuzzProfile(max_transient_events=0, max_rotations=0)
        for seed in SEEDS[:50]:
            assert len(generate_case(seed, tame).timeline) == 0


class TestEnvelope:
    """Every generated case stays inside the paper's guarantees."""

    @pytest.fixture(scope="class")
    def cases(self):
        return [generate_case(seed) for seed in SEEDS]

    def test_topologies_satisfy_resilience(self, cases):
        for case in cases:
            assert (case.n, case.t) in TOPOLOGIES
            assert case.n >= 8 * case.t + 1

    def test_workload_nonempty(self, cases):
        for case in cases:
            assert case.num_writes >= 1 and case.num_reads >= 1

    def test_static_byzantine_within_t(self, cases):
        for case in cases:
            assert 0 <= case.byzantine_count <= case.t
            assert case.byzantine_strategy in STATIC_STRATEGIES

    def test_rotations_are_responsive_and_bounded(self, cases):
        for case in cases:
            for event in case.timeline:
                if event["kind"] != "byzantine":
                    continue
                assert len(event["args"]["servers"]) <= case.t
                assert event["args"]["strategy"] in ROTATION_STRATEGIES

    def test_atomic_bursts_target_servers_only(self, cases):
        """Client-state bursts can void Lemma 13 (wsn ring jump) — the

        default envelope keeps them away from atomic cases (see
        tests/replays/wsn-jump-atomic.json).
        """
        for case in cases:
            if case.kind != "atomic":
                continue
            for event in case.timeline:
                if event["kind"] == "burst":
                    assert event["args"]["targets"] == "servers"

    def test_partitions_only_on_direct_transport(self, cases):
        for case in cases:
            if case.transport == "datalink":
                kinds = {event["kind"] for event in case.timeline}
                assert "partition" not in kinds

    def test_transient_events_precede_workload(self, cases):
        """Assumption (b): writes start after the last transient fault."""
        for case in cases:
            timeline = case.fault_timeline()
            start = timeline.tau_no_tr + 1.0
            for event in case.timeline:
                if event["kind"] != "byzantine":
                    assert event["time"] <= timeline.tau_no_tr
                else:
                    assert event["time"] >= start

    def test_rotations_leave_a_read_suffix(self, cases):
        """Every rotation precedes the last scheduled read invocation

        (within 60% of the read span, so stabilization is never judged
        on an empty read suffix — a vacuous verdict).
        """
        for case in cases:
            timeline = case.fault_timeline()
            start = timeline.tau_no_tr + 1.0
            offset = (case.reader_offset if case.reader_offset is not None
                      else case.op_gap / 2.0)
            last_read = start + (case.num_reads - 1) * case.op_gap + offset
            for event in case.timeline:
                if event["kind"] == "byzantine":
                    # 0.05 covers the one-decimal quantization
                    assert event["time"] <= \
                        start + 0.6 * (last_read - start) + 0.05
                    assert event["time"] <= last_read + 1e-9

    def test_times_are_quantized(self, cases):
        for case in cases:
            for event in case.timeline:
                assert round(event["time"], 1) == event["time"]

    def test_scenario_kwargs_are_complete(self, cases):
        from inspect import signature
        from repro.workloads.scenarios import run_swsr_scenario
        params = set(signature(run_swsr_scenario).parameters)
        for case in cases[:20]:
            kwargs = case.scenario_kwargs()
            assert set(kwargs) <= params
