"""Property tests: checkers vs brute-force oracles on generated histories.

Hypothesis-style seeded loops (stdlib only): hundreds of small random
histories — including deliberately inconsistent ones — are judged both by
the production checkers and by independent brute-force oracles built
directly on the definitions:

* *linearizability oracle* — enumerate every permutation of the
  operations that respects real-time precedence and replay register
  semantics over it;
* *regularity oracle* — a read is regular iff the totally-ordered writes
  **plus that single read** linearize (Lamport's per-read
  characterization of regular registers — a genuinely different
  formulation from the checker's allowed-value-set computation);
* *τ_stab oracle* — scan candidate cut-offs directly.

Any disagreement is reported with the offending history rendered, so a
failure is immediately replayable.
"""

import itertools
import random

from repro.checkers.atomicity import (check_linearizable,
                                      find_new_old_inversions,
                                      is_atomic_swsr)
from repro.checkers.history import History, Operation
from repro.checkers.regularity import check_regularity
from repro.checkers.stabilization import find_tau_stab
from repro.workloads.scenarios import INITIAL


# ----------------------------------------------------------------------
# brute-force oracles
# ----------------------------------------------------------------------
def respects_real_time(ops, order):
    """No operation is placed before one that responded before it began."""
    for i, j in itertools.combinations(range(len(order)), 2):
        if ops[order[j]].response < ops[order[i]].invoke:
            return False
    return True


def register_semantics_hold(ops, order, initial):
    value = initial
    for index in order:
        op = ops[index]
        if op.kind == "write":
            value = op.value
        elif op.value != value:
            return False
    return True


def brute_linearizable(ops, initial=INITIAL) -> bool:
    """Exhaustive permutation search (fine for <= 7 operations)."""
    indices = list(range(len(ops)))
    return any(respects_real_time(ops, list(order))
               and register_semantics_hold(ops, list(order), initial)
               for order in itertools.permutations(indices))


def brute_read_is_regular(history, read, initial=INITIAL) -> bool:
    """Lamport: regular <=> the writes plus this one read linearize."""
    return brute_linearizable(history.writes() + [read], initial)


def brute_tau_stab(history, mode, tau_no_tr):
    """Earliest candidate cut-off with a clean suffix, by direct scan."""
    candidates = [tau_no_tr] + [read.invoke for read in history.reads()]
    for cut in sorted(candidates):
        ok = not check_regularity(history, cut, initial=INITIAL)
        if mode == "atomic":
            ok = ok and not find_new_old_inversions(history, after=cut,
                                                    initial=INITIAL)
        if ok:
            return max(cut, tau_no_tr)
    return None


# ----------------------------------------------------------------------
# history generators (seeded, deliberately including broken histories)
# ----------------------------------------------------------------------
def _sequential_intervals(rng, count, start=0.0):
    """Non-overlapping (invoke, response) pairs for one sequential client."""
    intervals, now = [], start
    for _ in range(count):
        invoke = round(now + rng.randrange(0, 3), 1)
        response = round(invoke + 0.5 + rng.randrange(0, 5), 1)
        intervals.append((invoke, response))
        now = response + 0.1
    return intervals


def gen_swsr_history(rng, readers=1):
    """Sequential writer + sequential reader(s), arbitrary read values."""
    history = History()
    writes = rng.randrange(0, 4)
    for index, (invoke, response) in enumerate(
            _sequential_intervals(rng, writes)):
        history.add("write", "w", f"w{index}", invoke, response)
    values = [f"w{i}" for i in range(writes)] + [INITIAL, "junk"]
    for reader in range(readers):
        reads = rng.randrange(1, 4)
        start = rng.randrange(0, 4)
        for invoke, response in _sequential_intervals(rng, reads, start):
            history.add("read", f"r{reader}",
                        values[rng.randrange(len(values))],
                        invoke, response)
    return history


def gen_rewrite_history(rng):
    """SWSR history where one write *rewrites the initial value* —

    the regime where reads of that value are ambiguous between virtual
    write #-1 and the rewrite (feasibility-constrained attribution).
    """
    history = gen_swsr_history(rng)
    writes = history.writes()
    if writes:
        victim = writes[rng.randrange(len(writes))]
        old = victim.value
        victim.value = INITIAL
        for op in history.ops:
            if op.kind == "read" and op.value == old:
                op.value = INITIAL if rng.randrange(2) else "junk"
    return history


def gen_mwmr_history(rng):
    """2-3 clients, each sequential, writes unique across the history."""
    history = History()
    clients = 2 + rng.randrange(2)
    counter = 0
    for client in range(clients):
        ops = rng.randrange(1, 3)
        start = rng.randrange(0, 5)
        for invoke, response in _sequential_intervals(rng, ops, start):
            if rng.randrange(2):
                history.add("write", f"p{client}", f"v{counter}",
                            invoke, response)
                counter += 1
            else:
                value = (f"v{rng.randrange(counter)}" if counter
                         and rng.randrange(4) else INITIAL)
                history.add("read", f"p{client}", value, invoke, response)
    return history


# ----------------------------------------------------------------------
# the properties
# ----------------------------------------------------------------------
class TestRegularityAgainstOracle:
    def test_agrees_on_single_reader_histories(self):
        rng = random.Random(1234)
        for trial in range(300):
            history = gen_swsr_history(rng)
            flagged = {violation.read.op_id for violation
                       in check_regularity(history, initial=INITIAL)}
            for read in history.reads():
                expected_ok = brute_read_is_regular(history, read)
                got_ok = read.op_id not in flagged
                assert got_ok == expected_ok, \
                    f"trial {trial}, read {read!r}:\n{history.format()}"

    def test_agrees_on_two_reader_histories(self):
        rng = random.Random(99)
        for trial in range(150):
            history = gen_swsr_history(rng, readers=2)
            flagged = {violation.read.op_id for violation
                       in check_regularity(history, initial=INITIAL)}
            for read in history.reads():
                assert (read.op_id not in flagged) == \
                    brute_read_is_regular(history, read), \
                    f"trial {trial}:\n{history.format()}"


class TestAtomicityAgainstOracle:
    def test_single_reader_atomicity_iff_linearizable(self):
        """Lamport: regular + no new/old inversion <=> linearizable."""
        rng = random.Random(4321)
        checked = violating = 0
        for trial in range(300):
            history = gen_swsr_history(rng)
            got = is_atomic_swsr(history, initial=INITIAL)
            expected = brute_linearizable(list(history.ops))
            assert got == expected, f"trial {trial}:\n{history.format()}"
            checked += 1
            violating += not expected
        # the generator must exercise both sides of the property
        assert 0 < violating < checked

    def test_rewriting_the_initial_value_is_supported(self):
        """A real write of the initial value supersedes virtual write #-1

        (it must not trip the written-value uniqueness check).
        """
        history = History()
        history.add("write", "w", INITIAL, 1.0, 2.0)
        history.add("read", "r0", INITIAL, 3.0, 4.0)
        assert is_atomic_swsr(history, initial=INITIAL)
        history = History()
        history.add("write", "w", "w0", 1.0, 2.0)
        history.add("write", "w", INITIAL, 3.0, 4.0)
        history.add("read", "r0", INITIAL, 5.0, 6.0)
        assert is_atomic_swsr(history, initial=INITIAL)
        assert brute_linearizable(list(history.ops))

    def test_initial_rewrite_does_not_misattribute_early_reads(self):
        """A pre-write read of the initial value must not be re-attributed

        to a later rewrite of that value (which would fabricate an
        inversion on a perfectly linearizable history).
        """
        history = History()
        history.add("read", "r0", INITIAL, 0.0, 0.5)   # the true initial
        history.add("write", "w", "a", 1.0, 1.5)
        history.add("read", "r0", "a", 2.0, 2.5)
        history.add("write", "w", INITIAL, 3.0, 3.5)   # rewrite
        assert brute_linearizable(list(history.ops))
        assert find_new_old_inversions(history, initial=INITIAL) == []
        assert is_atomic_swsr(history, initial=INITIAL)

    def test_infeasible_initial_attribution_does_not_mask_inversions(self):
        """Once a write completely precedes a read, the read of the

        (rewritten) initial value can only denote the rewrite — the
        virtual write #-1 must not suppress the inversion.
        """
        history = History()
        history.add("write", "w", "a", 1.0, 2.0)
        history.add("write", "w", INITIAL, 5.0, 9.0)     # rewrite
        history.add("read", "r0", INITIAL, 5.5, 6.0)     # w0 precedes it
        history.add("read", "r0", "a", 6.5, 7.0)
        assert not brute_linearizable(list(history.ops))
        inversions = find_new_old_inversions(history, initial=INITIAL)
        assert len(inversions) == 1
        assert not is_atomic_swsr(history, initial=INITIAL)

    def test_future_rewrite_is_not_a_feasible_attribution(self):
        """A stale-initial read must not be attributed to a rewrite that

        starts only after the read responded (that pairing would
        fabricate an inversion out of a pure regularity violation).
        """
        history = History()
        history.add("write", "w", "a", 0.0, 1.0)
        history.add("read", "r0", INITIAL, 10.0, 11.0)   # stale initial
        history.add("read", "r0", "a", 20.0, 21.0)
        history.add("write", "w", INITIAL, 100.0, 101.0)  # future rewrite
        assert find_new_old_inversions(history, initial=INITIAL) == []
        # the stale read is still caught — as the regularity violation
        # it actually is
        violations = check_regularity(history, initial=INITIAL)
        assert [v.read.value for v in violations] == [INITIAL]

    def test_atomicity_iff_linearizable_on_rewrite_histories(self):
        """The equivalence holds on initial-rewrite histories too."""
        rng = random.Random(777)
        violating = 0
        for trial in range(300):
            history = gen_rewrite_history(rng)
            got = is_atomic_swsr(history, initial=INITIAL)
            expected = brute_linearizable(list(history.ops))
            assert got == expected, f"trial {trial}:\n{history.format()}"
            violating += not expected
        assert violating > 0

    def test_checker_search_matches_bruteforce_on_mwmr(self):
        rng = random.Random(2718)
        mismatches = []
        seen_unlinearizable = 0
        for trial in range(250):
            history = gen_mwmr_history(rng)
            if len(history) > 7:
                continue
            got = bool(check_linearizable(history, initial=INITIAL))
            expected = brute_linearizable(list(history.ops))
            seen_unlinearizable += not expected
            if got != expected:
                mismatches.append((trial, history.format()))
        assert not mismatches, mismatches[:3]
        assert seen_unlinearizable > 0

    def test_witness_order_is_a_valid_linearization(self):
        rng = random.Random(31415)
        for _ in range(100):
            history = gen_mwmr_history(rng)
            result = check_linearizable(history, initial=INITIAL)
            if not result.ok or not result.order:
                continue
            ops = result.order
            order = list(range(len(ops)))
            assert respects_real_time(ops, order)
            assert register_semantics_hold(ops, order, INITIAL)


class TestStabilizationAgainstOracle:
    def test_find_tau_stab_matches_direct_scan(self):
        rng = random.Random(1618)
        for trial in range(200):
            history = gen_swsr_history(rng)
            for mode in ("regular", "atomic"):
                got = find_tau_stab(history, mode=mode, initial=INITIAL,
                                    tau_no_tr=0.0)
                expected = brute_tau_stab(history, mode, 0.0)
                assert got == expected, \
                    f"trial {trial} mode {mode}:\n{history.format()}"
