"""Tests of the shard-parallel execution engine (``repro.parallel``).

The load-bearing property is *serial equivalence*: for any supported
configuration, ``parallel="interleave"`` / ``parallel=N`` must produce a
result whose history digest, checker verdicts and ``summarize()`` output
equal the serial run's — including runs the event budget truncates
mid-batch.  These assertions run unconditionally (no perf-gate env var);
the wall-clock speedup itself is gated in
``benchmarks/test_bench_parallel_sim.py``.
"""

import pytest

from repro.kvstore.sharding import HashRing
from repro.faults.schedule import FaultTimeline
from repro.parallel import (ParallelScenarioRunner, ShardExecutor,
                            ShardPlan, execute_shard_plan, kv_shard_plans,
                            normalize_parallel, soak_shard_plans)
from repro.workloads.scenarios import _run_kv_scenario, _run_soak_scenario
from repro.workloads.spec import ScenarioSpec, run_scenario

KV_KWARGS = dict(shard_count=3, n=9, t=1, seed=11, client_count=2,
                 num_keys=6, rounds=2, corruption_times=[2.0],
                 corruption_fraction=0.2, byzantine_count=1)
SOAK_KWARGS = dict(seed=5, num_writes=24, num_reads=24, fault_bursts=2,
                   rotations=1)


def _assert_kv_equal(serial, candidate):
    assert serial.summarize() == candidate.summarize()
    assert serial.per_key_linearizable == candidate.per_key_linearizable
    assert serial.tau_by_shard == candidate.tau_by_shard
    assert serial.completed == candidate.completed
    assert serial.linearizable == candidate.linearizable
    assert len(serial.history) == len(candidate.history)


class TestKVSerialEquivalence:
    def test_interleave_and_pool_match_serial(self):
        serial = _run_kv_scenario(**KV_KWARGS)
        assert serial.completed            # the config exercises a full run
        _assert_kv_equal(serial,
                         _run_kv_scenario(parallel="interleave",
                                          **KV_KWARGS))
        _assert_kv_equal(serial, _run_kv_scenario(parallel=2, **KV_KWARGS))

    def test_budget_truncation_matches_serial(self):
        """The serial run stops mid-batch when a flush exhausts its event
        budget; the merge must reconstruct that exact stopping point
        (fully-drained earlier shards, a partially-drained failing shard,
        enqueued-but-undrained later shards)."""
        kwargs = dict(KV_KWARGS, corruption_fraction=0.6, max_events=800,
                      byzantine_count=0)
        serial = _run_kv_scenario(**kwargs)
        assert not serial.completed
        assert len(serial.history) > kwargs["num_keys"]  # died *after* create
        _assert_kv_equal(serial,
                         _run_kv_scenario(parallel="interleave", **kwargs))
        _assert_kv_equal(serial, _run_kv_scenario(parallel=2, **kwargs))

    def test_create_truncation_matches_serial(self):
        kwargs = dict(KV_KWARGS, max_events=300, byzantine_count=0)
        serial = _run_kv_scenario(**kwargs)
        assert not serial.completed
        assert len(serial.history) < kwargs["num_keys"]  # died in create
        _assert_kv_equal(serial,
                         _run_kv_scenario(parallel="interleave", **kwargs))

    def test_per_shard_timelines_match_serial(self):
        timeline = FaultTimeline().burst(1.0, fraction=0.2,
                                         targets="servers")
        kwargs = dict(shard_count=2, num_keys=4, rounds=1, seed=6,
                      fault_timelines={1: timeline.to_dict()})
        serial = _run_kv_scenario(**kwargs)
        parallel = _run_kv_scenario(parallel=2, **kwargs)
        _assert_kv_equal(serial, parallel)
        assert parallel.tau_by_shard[1] > parallel.tau_by_shard[0]

    def test_merged_result_supports_summary_surface(self):
        result = _run_kv_scenario(parallel="interleave", **KV_KWARGS)
        assert result.store.shard_count == KV_KWARGS["shard_count"]
        assert result.messages_sent > 0
        assert result.store.shard_for("k0") == \
            HashRing(KV_KWARGS["shard_count"]).shard_for("k0")

    def test_requires_pipelined(self):
        with pytest.raises(ValueError, match="pipelined"):
            _run_kv_scenario(parallel=2, pipelined=False, **KV_KWARGS)


class TestSoakSerialEquivalence:
    def test_single_shard_matches_legacy_path(self):
        """``shards=1`` through plan/executor/merge must be field-for-
        field the legacy in-process soak — same seed, same verdicts."""
        legacy = _run_soak_scenario(**SOAK_KWARGS)
        assert legacy.completed
        for parallel in ("interleave", 1):
            merged = _run_soak_scenario(parallel=parallel, **SOAK_KWARGS)
            assert legacy.summarize() == merged.summarize()
            assert legacy.inversions_after(legacy.tau_no_tr) == \
                merged.inversions_after(merged.tau_no_tr)
            assert legacy.extra["tracker"].exact == \
                merged.extra["tracker"].exact
            assert legacy.stream_report(legacy.tau_no_tr) == \
                merged.stream_report(merged.tau_no_tr)

    def test_multi_shard_pool_matches_interleave(self):
        pooled = _run_soak_scenario(shards=3, parallel=2, **SOAK_KWARGS)
        inline = _run_soak_scenario(shards=3, parallel="interleave",
                                    **SOAK_KWARGS)
        assert pooled.summarize() == inline.summarize()
        assert pooled.completed and pooled.summarize().stable
        # three sub-soaks: triple the single-shard operation count
        single = _run_soak_scenario(**SOAK_KWARGS)
        assert pooled.summarize().ops == 3 * single.summarize().ops

    def test_multi_shard_seeds_are_derived(self):
        plans = soak_shard_plans(3, 7, {"kind": "regular"})
        assert len({plan.seed for plan in plans}) == 3
        assert all(plan.seed != 7 for plan in plans)
        solo = soak_shard_plans(1, 7, {"kind": "regular"})
        assert solo[0].seed == 7       # shards=1 keeps the scenario seed


class TestPlansAndDispatch:
    def test_kv_plans_cover_every_operation_on_its_ring_shard(self):
        plans, keys, ring = kv_shard_plans(
            shard_count=3, n=9, t=1, seed=0, client_count=2, num_keys=6,
            rounds=2, byzantine_count=0,
            byzantine_strategy="random-garbage", corruption_times=(),
            corruption_fraction=0.2, fault_timelines=None,
            trace_backend="null", enforce_resilience=True,
            max_events=1000)
        assert keys == [f"k{index}" for index in range(6)]
        total = 0
        for plan in plans:
            for batch in plan.op_batches:
                for kind, client, key, value in batch:
                    assert ring.shard_for(key) == plan.shard_index
                    total += 1
        assert total == 6 * (1 + 2 * 2)    # create + rounds x (put + get)

    def test_plans_are_picklable(self):
        import pickle
        plans, _, _ = kv_shard_plans(
            shard_count=2, n=9, t=1, seed=0, client_count=2, num_keys=2,
            rounds=1, byzantine_count=0,
            byzantine_strategy="random-garbage",
            corruption_times=(2.0,), corruption_fraction=0.2,
            fault_timelines={0: FaultTimeline().burst(
                1.0, fraction=0.2, targets="servers")},
            trace_backend="null", enforce_resilience=True,
            max_events=1000)
        restored = pickle.loads(pickle.dumps(plans))
        assert restored == plans

    def test_out_of_range_timeline_shard_rejected_at_plan_time(self):
        timeline = FaultTimeline().burst(1.0, fraction=0.2,
                                         targets="servers")
        with pytest.raises(ValueError, match="reference shards"):
            _run_kv_scenario(parallel=2, shard_count=2, num_keys=2,
                             rounds=1, seed=6,
                             fault_timelines={5: timeline.to_dict()})

    def test_executor_stage_stepping_matches_one_shot_run(self):
        plans, _, _ = kv_shard_plans(
            shard_count=2, n=9, t=1, seed=4, client_count=2, num_keys=4,
            rounds=1, byzantine_count=0,
            byzantine_strategy="random-garbage",
            corruption_times=(2.0,), corruption_fraction=0.2,
            fault_timelines=None, trace_backend="null",
            enforce_resilience=True, max_events=100_000)
        one_shot = execute_shard_plan(plans[0])
        stepped = ShardExecutor(plans[0])
        sweeps = 0
        while stepped.advance():
            sweeps += 1
        assert sweeps == len(one_shot.stages) - 1
        outcome = stepped.outcome
        assert outcome.status == one_shot.status
        assert outcome.post_counters == one_shot.post_counters
        assert [op.value for ops in outcome.records.values()
                for op in ops] == \
            [op.value for ops in one_shot.records.values() for op in ops]

    def test_normalize_parallel(self):
        assert normalize_parallel(None) == 1
        assert normalize_parallel(1) == 1
        assert normalize_parallel(4) == 4
        assert normalize_parallel("interleave") == "interleave"
        for bad in (0, -2, "threads", 2.5, True):
            with pytest.raises(ValueError):
                normalize_parallel(bad)

    def test_runner_runs_plans_in_order(self):
        plans = soak_shard_plans(2, 3, dict(
            kind="regular", n=9, t=1, transport="direct", num_writes=4,
            num_reads=4, op_gap=4.0, reader_offset=None, fault_bursts=1,
            fault_period=5.0, corruption_fraction=0.3, rotations=0,
            rotation_gap=None, rotation_size=None,
            rotation_strategy="random-garbage", byzantine_count=0,
            byzantine_strategy="random-garbage", initial="v_init",
            enforce_resilience=True, max_events=1_000_000,
            trace_backend="null", keep_history=False, write_window=64,
            read_window=64, max_records=64, candidate_cap=4096,
            chunk_ops=256))
        outcomes = ParallelScenarioRunner(plans, parallel=1).run()
        assert [outcome.shard_index for outcome in outcomes] == [0, 1]
        assert all(outcome.completed for outcome in outcomes)
        assert all(outcome.records["run"] for outcome in outcomes)


class TestSpecIntegration:
    def test_parallel_params_are_spec_valid(self):
        spec = ScenarioSpec("kv", seed=1, shard_count=2, num_keys=2,
                            rounds=1, parallel="interleave")
        result = spec.run()
        assert result.completed and result.linearizable
        soak = ScenarioSpec("soak", seed=1, num_writes=8, num_reads=8,
                            fault_bursts=1, shards=2, parallel=2)
        merged = soak.run()
        assert merged.completed

    def test_run_scenario_threads_parallel_through(self):
        serial = run_scenario("kv", seed=2, shard_count=2, num_keys=3,
                              rounds=1)
        parallel = run_scenario("kv", seed=2, shard_count=2, num_keys=3,
                                rounds=1, parallel="interleave")
        assert serial.summarize() == parallel.summarize()

    def test_invalid_parallel_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("kv", seed=1, shard_count=2, num_keys=2,
                         rounds=1, parallel="threads")
        with pytest.raises(ValueError):
            run_scenario("soak", seed=1, num_writes=4, num_reads=4,
                         shards=0)
