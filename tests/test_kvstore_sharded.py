"""Tests of the sharded KV service layer: ring, shards, pipeline."""

import pytest

from repro.faults.schedule import FaultTimeline
from repro.kvstore import (HashRing, Pipeline, build_kv_store,
                           build_sharded_kv_store, derive_shard_seed,
                           partition_ops, shard_router)
from repro.registers.system import ClusterConfig, ClusterGroup
from repro.sim.errors import OperationError, SimulationLimitReached


class TestHashRing:
    def test_placement_is_deterministic(self):
        first, second = HashRing(4), HashRing(4)
        for index in range(100):
            key = f"key{index}"
            assert first.shard_for(key) == second.shard_for(key)

    def test_every_shard_owns_keys(self):
        ring = HashRing(4)
        owners = {ring.shard_for(f"key{index}") for index in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_consistent_hashing_moves_few_keys_on_reshard(self):
        """Growing S -> S+1 must move roughly 1/(S+1) of the keys, not
        reshuffle everything (the property naive modulo hashing lacks)."""
        small, grown = HashRing(4), HashRing(5)
        keys = [f"key{index}" for index in range(600)]
        moved = sum(1 for key in keys
                    if small.shard_for(key) != grown.shard_for(key))
        assert moved < len(keys) * 0.4      # ~1/5 expected, far below 40%

    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_live_grow_moves_about_one_over_s_plus_one(self):
        """``add_shard`` on a *live* ring must match the from-scratch
        consistency property: ~1/(S+1) of the keys move, every one of
        them *to* the new shard."""
        ring = HashRing(4)
        keys = [f"key{index}" for index in range(600)]
        before = {key: ring.shard_for(key) for key in keys}
        new = ring.add_shard()
        moved = [key for key in keys if ring.shard_for(key) != before[key]]
        assert 0 < len(moved) < len(keys) * 0.4   # ~1/5 expected
        assert all(ring.shard_for(key) == new for key in moved)

    def test_split_moves_only_the_split_shards_keys(self):
        ring = HashRing(4)
        keys = [f"key{index}" for index in range(600)]
        before = {key: ring.shard_for(key) for key in keys}
        victim = 1
        new = ring.split_shard(victim)
        for key in keys:
            after = ring.shard_for(key)
            if after != before[key]:
                assert before[key] == victim and after == new
        # roughly half the victim's keys should have moved
        victims = [key for key in keys if before[key] == victim]
        moved = [key for key in victims if ring.shard_for(key) != victim]
        assert 0 < len(moved) < len(victims)

    def test_split_then_merge_round_trips_points_table(self):
        """``split_shard`` followed by ``merge_shards(new, into=old)``
        must restore the identical placement table — the ring algebra's
        invertibility, which makes shrink/replay of reshard plans
        meaningful."""
        ring = HashRing(3, vnodes=8)
        table = ring.points_table()
        new = ring.split_shard(2)
        assert ring.points_table() != table
        ring.merge_shards(new, into=2)
        assert ring.points_table() == table
        keys = [f"key{index}" for index in range(200)]
        fresh = HashRing(3, vnodes=8)
        assert [ring.shard_for(key) for key in keys] == \
            [fresh.shard_for(key) for key in keys]

    def test_mutations_validate_their_arguments(self):
        ring = HashRing(2, vnodes=1)
        with pytest.raises(ValueError):
            ring.split_shard(0)            # one slot cannot split
        with pytest.raises(ValueError):
            ring.merge_shards(1, into=1)   # self-merge
        with pytest.raises(ValueError):
            ring.migrate_vnodes(0, 0, 1)   # self-migrate
        with pytest.raises(ValueError):
            ring.migrate_vnodes(0, 1, 5)   # more slots than owned
        with pytest.raises(ValueError):
            ring.split_shard(7)            # out of range
        ring.merge_shards(0, into=1)
        with pytest.raises(ValueError):
            ring.merge_shards(0, into=1)   # already retired

    def test_placement_is_stable_across_hashseed_processes(self):
        """Ring placement (including after mutations) must not depend on
        PYTHONHASHSEED — the ring is SHA-256-based, never ``hash()``."""
        import os
        import subprocess
        import sys
        script = (
            "from repro.kvstore import HashRing\n"
            "ring = HashRing(3, vnodes=8)\n"
            "new = ring.split_shard(0)\n"
            "ring.migrate_vnodes(1, new, 2)\n"
            "print([ring.shard_for(f'key{i}') for i in range(64)])\n")
        outputs = set()
        for hashseed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"),
                              env.get("PYTHONPATH")]))
            result = subprocess.run([sys.executable, "-c", script],
                                    capture_output=True, text=True,
                                    env=env, check=True)
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestShardSeeds:
    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = [derive_shard_seed(0, shard) for shard in range(8)]
        assert seeds == [derive_shard_seed(0, shard) for shard in range(8)]
        assert len(set(seeds)) == len(seeds)

    def test_store_uses_derived_seeds(self):
        store = build_sharded_kv_store(shard_count=3, seed=5)
        assert [cluster.config.seed for cluster in store.group] == \
            [derive_shard_seed(5, shard) for shard in range(3)]


class TestPartitioning:
    def test_partition_ops_groups_and_preserves_order(self):
        items = ["a0", "b0", "a1", "c0", "a2", "b1"]
        parts = partition_ops(items, lambda item: ord(item[0]) - ord("a"))
        assert parts == {0: ["a0", "a1", "a2"], 1: ["b0", "b1"], 2: ["c0"]}

    def test_partition_ops_empty(self):
        assert partition_ops([], lambda item: 0) == {}

    def test_shard_router_uses_ring_for_sharded_store(self):
        store = build_sharded_kv_store(shard_count=4, seed=3)
        route = shard_router(store)
        for index in range(32):
            key = f"key{index}"
            assert route(key) == store.shard_for(key)

    def test_shard_router_maps_single_pool_to_shard_zero(self):
        store = build_kv_store(seed=3)
        route = shard_router(store)
        assert [route(f"key{index}") for index in range(8)] == [0] * 8

    def test_run_ops_and_pipeline_agree_on_placement(self):
        """The serial ``run_ops`` grouping and the pipeline's routing are
        the same partition — both go through the shared helpers."""
        store = build_sharded_kv_store(shard_count=3, seed=7)
        handles = []
        for index in range(12):            # one at a time: clients are
            handle = store.put("c1", f"key{index}", index)   # sequential
            store.run_ops([handle])
            handles.append(handle)
        by_shard = partition_ops(
            handles, lambda handle: handle.meta.get("shard", 0))
        route = shard_router(store)
        for shard, members in by_shard.items():
            assert all(route(handle.meta["register"][3:]) == shard
                       for handle in members)
        assert all(handle.done for handle in handles)


class TestClusterGroup:
    def test_members_are_independent(self):
        group = ClusterGroup([ClusterConfig(n=9, t=1, seed=s)
                              for s in (1, 2)])
        assert group[0].scheduler is not group[1].scheduler
        assert group[0].network is not group[1].network

    def test_aggregates_sum_members(self):
        group = ClusterGroup([ClusterConfig(n=9, t=1, seed=s)
                              for s in (1, 2)])
        assert group.messages_sent == 0
        assert group.events_processed == 0
        assert len(group) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterGroup([])


class TestShardedKVStore:
    def test_put_get_roundtrip_across_shards(self):
        store = build_sharded_kv_store(shard_count=4, seed=1)
        for index in range(8):
            store.put_sync("c1", f"k{index}", index)
        for index in range(8):
            assert store.get_sync("c2", f"k{index}") == index
        assert store.keys == sorted(f"k{index}" for index in range(8))

    def test_key_lives_on_exactly_one_shard(self):
        store = build_sharded_kv_store(shard_count=4, seed=2)
        store.put_sync("c1", "solo", "value")
        hosting = [index for index, shard_store in enumerate(store.stores)
                   if "solo" in shard_store.keys]
        assert hosting == [store.shard_for("solo")]

    def test_handles_tag_their_shard(self):
        store = build_sharded_kv_store(shard_count=4, seed=3)
        handle = store.put("c1", "k", 1)
        assert handle.meta["shard"] == store.shard_for("k")
        store.run_ops([handle])
        assert handle.done

    def test_shard_fault_isolation(self):
        """A burst + Byzantine server on one shard must leave every other
        shard's clusters untouched."""
        store = build_sharded_kv_store(shard_count=3, seed=4)
        for index in range(6):
            store.put_sync("c1", f"k{index}", index)
        victim = 1
        anchor = store.group[victim].now
        timeline = (FaultTimeline()
                    .burst(anchor + 1.0, fraction=0.2, targets="servers")
                    .byzantine(anchor + 2.0,
                               [store.group[victim].server_ids[0]]))
        store.install_timeline(victim, timeline)
        store.group[victim].run(until=anchor + 3.0)
        assert store.group[victim].byzantine_ids
        for shard, cluster in enumerate(store.group):
            if shard != victim:
                assert cluster.byzantine_ids == []
        # the store still serves every key, including the victim's
        for index in range(6):
            store.put_sync("c2", f"k{index}", index + 100)
            assert store.get_sync("c1", f"k{index}") == index + 100

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            build_sharded_kv_store(shard_count=0)


class TestInstallTimelineAnchoring:
    @staticmethod
    def _advanced_store():
        store = build_sharded_kv_store(shard_count=2, seed=13)
        store.put_sync("c1", "warm", 1)     # advance shard clocks
        return store

    def test_anchor_now_rebases_relative_timeline_mid_run(self):
        store = self._advanced_store()
        shard = store.shard_for("warm")
        now = store.group[shard].now
        assert now > 0
        timeline = FaultTimeline().burst(2.0, fraction=0.2,
                                         targets="servers")
        installed = store.install_timeline(shard, timeline, anchor="now")
        assert installed.tau_no_tr == now + 2.0
        before = store.injector_for(shard).corruptions
        store.group[shard].run(until=now + 3.0)
        assert store.injector_for(shard).corruptions > before

    def test_negative_anchor_into_the_past_is_rejected_atomically(self):
        """A negative offset that lands any event before the shard's
        clock must fail loudly — and leave nothing partially installed."""
        store = self._advanced_store()
        shard = store.shard_for("warm")
        now = store.group[shard].now
        timeline = (FaultTimeline()
                    .burst(now + 5.0, fraction=0.2, targets="servers")
                    .burst(1.0, fraction=0.2, targets="servers"))
        pending = store.group[shard].scheduler.pending_count()
        with pytest.raises(ValueError, match="past"):
            store.install_timeline(shard, timeline, anchor=-(now + 0.5))
        # no partial install: the in-range first event was not scheduled
        assert store.group[shard].scheduler.pending_count() == pending

    def test_reanchor_after_shifted_composes_offsets(self):
        store = build_sharded_kv_store(shard_count=2, seed=14)
        timeline = FaultTimeline().burst(1.0, fraction=0.2,
                                         targets="servers")
        installed = store.install_timeline(0, timeline.shifted(3.0),
                                           anchor=2.0)
        assert [event.time for event in installed.events] == [6.0]
        assert installed.tau_no_tr == 6.0

    def test_unanchored_past_event_rejected(self):
        store = self._advanced_store()
        shard = store.shard_for("warm")
        stale = FaultTimeline().burst(0.5, fraction=0.2,
                                      targets="servers")
        with pytest.raises(ValueError, match="anchor"):
            store.install_timeline(shard, stale)

    def test_bad_anchor_value_rejected(self):
        store = build_sharded_kv_store(shard_count=2, seed=15)
        timeline = FaultTimeline().burst(1.0, fraction=0.2,
                                         targets="servers")
        with pytest.raises(ValueError, match="anchor"):
            store.install_timeline(0, timeline, anchor="later")


class TestPipeline:
    def test_pipelined_results_match_serial(self):
        serial = build_sharded_kv_store(shard_count=2, seed=6)
        for index in range(6):
            serial.put_sync("c1", f"k{index}", index)

        pipelined = build_sharded_kv_store(shard_count=2, seed=6)
        pipe = Pipeline(pipelined)
        for index in range(6):
            pipe.put("c1", f"k{index}", index)
        pipe.flush()
        for index in range(6):
            assert pipelined.get_sync("c2", f"k{index}") == \
                serial.get_sync("c2", f"k{index}") == index

    def test_lane_preserves_per_client_program_order(self):
        """Two puts by one client to the same key are sequential (the
        paper's processes are sequential), so the later one wins."""
        store = build_sharded_kv_store(shard_count=2, seed=7)
        pipe = Pipeline(store)
        pipe.put("c1", "k", "first")
        pipe.put("c1", "k", "second")
        pipe.flush()
        assert store.get_sync("c2", "k") == "second"

    def test_many_in_flight_per_client(self):
        """One logical client keeps one operation in flight per shard —
        the pipelined makespan beats draining lanes one at a time."""
        store = build_sharded_kv_store(shard_count=4, seed=8,
                                      client_count=1)
        pipe = Pipeline(store)
        keys = [f"k{index}" for index in range(8)]
        shards = {store.shard_for(key) for key in keys}
        assert len(shards) > 1
        for index, key in enumerate(keys):
            pipe.put("c1", key, index)
        assert pipe.pending == 8
        pipe.flush()
        assert pipe.pending == 0
        makespan = max(cluster.now for cluster in store.group)
        total = sum(cluster.now for cluster in store.group)
        assert makespan < total  # shards progressed concurrently

    def test_flush_returns_completed_handles_in_enqueue_order(self):
        store = build_sharded_kv_store(shard_count=2, seed=9)
        pipe = Pipeline(store)
        first = pipe.put("c1", "a", 1)
        second = pipe.get("c2", "a")
        drained = pipe.flush()
        assert drained == [first, second]
        assert all(entry.done for entry in drained)

    def test_result_before_flush_raises(self):
        store = build_sharded_kv_store(shard_count=2, seed=10)
        pipe = Pipeline(store)
        # a second op on the same lane is queued, not yet issued
        pipe.put("c1", "k", 1)
        later = pipe.put("c1", "k", 2)
        with pytest.raises(OperationError):
            _ = later.result

    def test_works_on_single_pool_store(self):
        store = build_kv_store(seed=11)
        pipe = Pipeline(store)
        pipe.put("c1", "k", 42)
        pipe.flush()
        reads = [pipe.get("c2", "k")]
        pipe.flush()
        assert reads[0].result == 42

    def test_deterministic_across_runs(self):
        def run():
            store = build_sharded_kv_store(shard_count=3, seed=12)
            pipe = Pipeline(store)
            for index in range(9):
                pipe.put(f"c{index % 2 + 1}", f"k{index}", index)
            pipe.flush()
            return ([cluster.now for cluster in store.group],
                    store.messages_sent)

        assert run() == run()

    def test_flush_is_exception_safe_and_resumable(self):
        """A budget-exhausted flush must hand back what completed
        (``exc.drained``), keep the rest queued, and let a retrying
        caller see every handle exactly once — the contract that lets
        the service layer drop its forced ``issued.clear()`` reset."""
        store = build_sharded_kv_store(shard_count=2, seed=13)
        pipe = Pipeline(store)
        handles = [pipe.put("c1", f"k{index}", index) for index in range(6)]
        with pytest.raises(SimulationLimitReached) as excinfo:
            pipe.flush(max_events=40)       # far too small to drain all
        partial = excinfo.value.drained
        assert all(handle.done for handle in partial)
        assert all(not handle.done for handle in pipe.issued)
        assert len(partial) + len(pipe.issued) == len(handles)
        # the retry picks up exactly the unfinished remainder ...
        remainder = pipe.flush()
        assert remainder and all(handle.done for handle in remainder)
        seen = partial + remainder
        assert sorted(seen, key=id) == sorted(handles, key=id)
        assert not (set(map(id, partial)) & set(map(id, remainder)))
        # ... and the writes all landed.
        reads = [pipe.get("c2", f"k{index}") for index in range(6)]
        pipe.flush()
        assert [read.result for read in reads] == list(range(6))
