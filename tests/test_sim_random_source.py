"""Unit tests for named deterministic random streams."""

from repro.sim.random_source import RandomSource, derive_seed


def test_same_name_returns_same_stream_object():
    src = RandomSource(1)
    assert src.stream("a") is src.stream("a")


def test_streams_are_deterministic_across_instances():
    first = RandomSource(42).stream("link").random()
    second = RandomSource(42).stream("link").random()
    assert first == second


def test_different_names_give_independent_streams():
    src = RandomSource(42)
    a = [src.stream("a").random() for _ in range(3)]
    b = [RandomSource(42).stream("b").random() for _ in range(3)]
    assert a != b


def test_different_seeds_give_different_streams():
    a = RandomSource(1).stream("x").random()
    b = RandomSource(2).stream("x").random()
    assert a != b


def test_creation_order_does_not_matter():
    src1 = RandomSource(7)
    src1.stream("first")
    value1 = src1.stream("second").random()
    src2 = RandomSource(7)
    value2 = src2.stream("second").random()  # created first this time
    assert value1 == value2


def test_derive_seed_is_stable():
    assert derive_seed(5, "hello") == derive_seed(5, "hello")
    assert derive_seed(5, "hello") != derive_seed(5, "world")
    assert derive_seed(5, "hello") != derive_seed(6, "hello")


def test_spawn_creates_independent_child():
    parent = RandomSource(3)
    child = parent.spawn("worker")
    assert child.stream("x").random() != parent.stream("x").random()


def test_spawn_is_deterministic():
    a = RandomSource(3).spawn("worker").stream("x").random()
    b = RandomSource(3).spawn("worker").stream("x").random()
    assert a == b
