"""Trace backends must be observers, never participants.

The tentpole property of the pluggable-backend refactor: running the same
seeded scenario under :class:`NullTrace`, :class:`CountingTrace` and
:class:`FullTrace` yields identical executions — same operation history,
same final read values, same message and event counts.  The backends (and
the fused vs. labelled delivery paths they select) may only change what
is *retained*, never what *happens*.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.trace import (CountingTrace, DELIVER, FullTrace, NullTrace,
                             SEND, build_trace)
from repro.workloads.scenarios import (run_mobile_byzantine_scenario,
                                       run_partition_scenario,
                                       run_swsr_scenario)

BACKENDS = ("full", "counting", "null")

RELAXED = settings(max_examples=8, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def _fingerprint(result):
    """Everything about a run that must not depend on the backend."""
    summary = result.summarize()
    final_reads = tuple(op.value for op in result.history.reads())
    return (summary.history_digest, summary.ops, summary.messages_sent,
            summary.events_processed, summary.sim_end, summary.corruptions,
            summary.stable, final_reads)


class TestBackendsAreObservers:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           kind=st.sampled_from(["regular", "atomic"]),
           byzantine=st.integers(min_value=0, max_value=1))
    @RELAXED
    def test_identical_execution_across_backends(self, seed, kind,
                                                 byzantine):
        fingerprints = set()
        for backend in BACKENDS:
            result = run_swsr_scenario(
                kind=kind, n=9, t=1, seed=seed, num_writes=3, num_reads=3,
                corruption_times=(2.0,), link_garbage=1,
                byzantine_count=byzantine, trace_backend=backend)
            assert result.completed
            fingerprints.add(_fingerprint(result))
        assert len(fingerprints) == 1

    def test_backends_agree_under_partition_and_mobile_byz(self):
        for runner, kwargs in [
            (run_partition_scenario, dict(seed=5, corruption_times=(2.0,))),
            (run_mobile_byzantine_scenario, dict(seed=5, rotations=3)),
        ]:
            fingerprints = {
                _fingerprint(runner(trace_backend=backend, **kwargs))
                for backend in BACKENDS
            }
            assert len(fingerprints) == 1


class TestBackendBehaviour:
    def test_build_trace_resolves_names(self):
        assert isinstance(build_trace("full"), FullTrace)
        assert isinstance(build_trace("counting"), CountingTrace)
        assert isinstance(build_trace("null"), NullTrace)
        with pytest.raises(ValueError):
            build_trace("verbose")

    def test_null_trace_retains_nothing(self):
        trace = NullTrace()
        trace.emit(1.0, SEND, "w", dst="s1")
        trace.tick(3.0, DELIVER)
        assert len(trace) == 0
        assert trace.count(SEND) == 0
        assert list(trace) == []
        assert trace.last_time() == 3.0
        assert not trace.wants(SEND)
        assert not trace.counting

    def test_counting_trace_counts_without_recording(self):
        trace = CountingTrace()
        trace.emit(1.0, SEND, "w", dst="s1")
        trace.tick(2.0, SEND)
        trace.tick(2.5, DELIVER)
        assert trace.count(SEND) == 2
        assert trace.count(DELIVER) == 1
        assert len(trace) == 0
        assert trace.last_time() == 2.5
        assert not trace.wants(SEND)

    def test_full_trace_filtered_last_time_tracks_emissions(self):
        # the satellite fix: last_time() reflects the last *emitted*
        # event even when record_kinds drops it from the log.
        trace = FullTrace(record_kinds={DELIVER})
        trace.emit(4.0, SEND, "w", dst="s1")
        assert len(trace) == 0
        assert trace.last_time() == 4.0
        trace.tick(9.0, SEND)
        assert trace.last_time() == 9.0
        assert trace.count(SEND) == 2
