"""Tests for quorum arithmetic and counting helpers."""

import pytest

from repro.registers.base import QuorumParams, first_k, value_with_quorum
from repro.registers.messages import BOT


class TestQuorumParams:
    def test_async_resilience_bound(self):
        assert QuorumParams(n=9, t=1).satisfies_resilience
        assert not QuorumParams(n=8, t=1).satisfies_resilience
        assert QuorumParams(n=17, t=2).satisfies_resilience
        assert not QuorumParams(n=16, t=2).satisfies_resilience

    def test_sync_resilience_bound(self):
        assert QuorumParams(n=4, t=1, synchronous=True).satisfies_resilience
        assert not QuorumParams(n=3, t=1, synchronous=True).satisfies_resilience
        assert QuorumParams(n=7, t=2, synchronous=True).satisfies_resilience

    def test_require_resilience_raises(self):
        with pytest.raises(ValueError):
            QuorumParams(n=8, t=1).require_resilience()
        QuorumParams(n=9, t=1).require_resilience()  # no error

    def test_async_quorum_sizes(self):
        params = QuorumParams(n=9, t=1)
        assert params.ack_quorum == 8        # n - t
        assert params.value_quorum == 3      # 2t + 1
        assert params.help_quorum == 5       # 4t + 1
        assert params.sync_quorum == 7       # n - 2t

    def test_sync_quorum_sizes(self):
        params = QuorumParams(n=4, t=1, synchronous=True)
        assert params.ack_quorum == 4        # all n
        assert params.value_quorum == 2      # t + 1
        assert params.help_quorum == 2       # t + 1

    def test_zero_byzantine(self):
        params = QuorumParams(n=3, t=0)
        assert params.satisfies_resilience
        assert params.value_quorum == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuorumParams(n=0, t=0)
        with pytest.raises(ValueError):
            QuorumParams(n=5, t=-1)


class TestValueWithQuorum:
    def test_finds_quorum_value(self):
        assert value_with_quorum(["a", "a", "a", "b"], 3) == "a"

    def test_no_quorum_returns_none(self):
        assert value_with_quorum(["a", "a", "b", "b"], 3) is None

    def test_picks_most_common_when_several_qualify(self):
        values = ["x"] * 5 + ["y"] * 3
        assert value_with_quorum(values, 3) == "x"

    def test_exclude_bot_skips_bottom(self):
        values = [BOT] * 5 + ["w"] * 3
        assert value_with_quorum(values, 3, exclude_bot=True) == "w"
        assert value_with_quorum(values, 3, exclude_bot=False) is BOT

    def test_exclude_bot_no_other_quorum(self):
        values = [BOT] * 5 + ["w"] * 2
        assert value_with_quorum(values, 3, exclude_bot=True) is None

    def test_empty_input(self):
        assert value_with_quorum([], 1) is None

    def test_unhashable_safe_values_pairs(self):
        values = [(1, "v")] * 3 + [(2, "w")]
        assert value_with_quorum(values, 3) == (1, "v")

    def test_unhashable_application_values(self):
        """Register values may be dicts/lists (e.g. the KV store)."""
        values = [{"role": "admin"}] * 3 + [{"role": "guest"}]
        assert value_with_quorum(values, 3) == {"role": "admin"}
        values = [[1, 2]] * 2 + [[3]]
        assert value_with_quorum(values, 3) is None

    def test_mixed_hashable_and_unhashable(self):
        values = ["x", {"a": 1}, {"a": 1}, {"a": 1}]
        assert value_with_quorum(values, 3) == {"a": 1}


class TestFirstK:
    def test_takes_first_in_insertion_order(self):
        replies = {"s1": "a", "s2": "b", "s3": "c"}
        assert first_k(replies, 2) == [("s1", "a"), ("s2", "b")]

    def test_fewer_than_k(self):
        replies = {"s1": "a"}
        assert first_k(replies, 5) == [("s1", "a")]
